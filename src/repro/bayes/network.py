"""Small discrete Bayesian networks.

The paper motivates FeBiM with Bayesian networks (Fig. 2 shows a network
with two evidence nodes and two events; the cited applications include
medical diagnosis).  This module implements a general discrete Bayesian
network over a DAG with:

* conditional probability tables (CPTs) per node,
* exact posterior inference by enumeration (adequate for the small
  diagnostic networks FeBiM targets),
* ancestral sampling for generating synthetic observations, and
* :func:`naive_bayes_network` — the naive-Bayes-shaped network (one class
  node, conditionally independent evidence nodes) that maps directly onto
  the crossbar layout of Sec. 3.2.

The graph bookkeeping uses :mod:`networkx` for cycle/topology checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import RngLike, ensure_rng


@dataclass
class DiscreteNode:
    """A discrete random variable with a CPT over its parents.

    Attributes
    ----------
    name:
        Unique node name.
    states:
        Names of the node's discrete states (cardinality >= 2 not
        enforced; single-state nodes are degenerate but legal).
    parents:
        Parent node names, in the order indexing the CPT.
    cpt:
        Array of shape ``(card(parent_1), ..., card(parent_k), card(self))``
        with each final-axis slice summing to 1.  For a root node the shape
        is simply ``(card(self),)``.
    """

    name: str
    states: List[str]
    parents: List[str] = field(default_factory=list)
    cpt: np.ndarray = None

    def __post_init__(self) -> None:
        if not self.states:
            raise ValueError(f"node {self.name!r} needs at least one state")
        if self.cpt is None:
            raise ValueError(f"node {self.name!r} needs a CPT")
        self.cpt = np.asarray(self.cpt, dtype=float)
        if self.cpt.shape[-1] != len(self.states):
            raise ValueError(
                f"node {self.name!r}: CPT last axis {self.cpt.shape[-1]} != "
                f"{len(self.states)} states"
            )
        if np.any(self.cpt < 0):
            raise ValueError(f"node {self.name!r}: CPT has negative entries")
        sums = self.cpt.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=1e-8):
            raise ValueError(
                f"node {self.name!r}: CPT slices must sum to 1, got sums {sums}"
            )

    @property
    def cardinality(self) -> int:
        return len(self.states)

    def state_index(self, state: str) -> int:
        try:
            return self.states.index(state)
        except ValueError:
            raise KeyError(
                f"node {self.name!r} has no state {state!r}; states: {self.states}"
            ) from None


class BayesianNetwork:
    """A discrete Bayesian network over a DAG of :class:`DiscreteNode`.

    Nodes must be added parents-first or all at once via the constructor;
    the DAG property is validated with networkx.
    """

    def __init__(self, nodes: Optional[Sequence[DiscreteNode]] = None):
        self._nodes: Dict[str, DiscreteNode] = {}
        self._graph = nx.DiGraph()
        for node in nodes or []:
            self.add_node(node)

    # ------------------------------------------------------------ structure
    def add_node(self, node: DiscreteNode) -> None:
        """Add a node whose parents are already present."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        for parent in node.parents:
            if parent not in self._nodes:
                raise ValueError(
                    f"node {node.name!r} references unknown parent {parent!r} "
                    "(add parents first)"
                )
        expected = tuple(self._nodes[p].cardinality for p in node.parents) + (
            node.cardinality,
        )
        if node.cpt.shape != expected:
            raise ValueError(
                f"node {node.name!r}: CPT shape {node.cpt.shape} != expected {expected}"
            )
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        for parent in node.parents:
            self._graph.add_edge(parent, node.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            # Roll back so the network stays consistent.
            self._graph.remove_node(node.name)
            del self._nodes[node.name]
            raise ValueError(f"adding node {node.name!r} would create a cycle")

    @property
    def node_names(self) -> List[str]:
        return list(nx.topological_sort(self._graph))

    def node(self, name: str) -> DiscreteNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------ inference
    def _indexify(self, assignment: Mapping[str, object]) -> Dict[str, int]:
        """Normalise a {node: state-name-or-index} mapping to indices."""
        out = {}
        for name, state in assignment.items():
            node = self.node(name)
            if isinstance(state, str):
                out[name] = node.state_index(state)
            else:
                idx = int(state)
                if not 0 <= idx < node.cardinality:
                    raise ValueError(
                        f"state index {idx} out of range for node {name!r}"
                    )
                out[name] = idx
        return out

    def joint_probability(self, assignment: Mapping[str, object]) -> float:
        """P(full assignment) — requires every node assigned."""
        idx = self._indexify(assignment)
        missing = set(self._nodes) - set(idx)
        if missing:
            raise ValueError(f"assignment missing nodes: {sorted(missing)}")
        prob = 1.0
        for name, node in self._nodes.items():
            coords = tuple(idx[p] for p in node.parents) + (idx[name],)
            prob *= float(node.cpt[coords])
        return prob

    def posterior(
        self, query: str, evidence: Optional[Mapping[str, object]] = None
    ) -> np.ndarray:
        """P(query | evidence) by exact enumeration over hidden nodes.

        Returns a probability vector over the query node's states.  Raises
        if the evidence has probability zero.
        """
        evidence_idx = self._indexify(evidence or {})
        if query in evidence_idx:
            out = np.zeros(self.node(query).cardinality)
            out[evidence_idx[query]] = 1.0
            return out

        order = self.node_names
        hidden = [n for n in order if n != query and n not in evidence_idx]
        qnode = self.node(query)
        scores = np.zeros(qnode.cardinality)

        hidden_cards = [self.node(h).cardinality for h in hidden]
        assignment = dict(evidence_idx)
        for q_idx in range(qnode.cardinality):
            assignment[query] = q_idx
            total = 0.0
            for combo in np.ndindex(*hidden_cards) if hidden else [()]:
                for h_name, h_idx in zip(hidden, combo):
                    assignment[h_name] = int(h_idx)
                total += self.joint_probability(assignment)
            scores[q_idx] = total
        norm = scores.sum()
        if norm <= 0:
            raise ValueError("evidence has zero probability under the model")
        return scores / norm

    def map_state(
        self, query: str, evidence: Optional[Mapping[str, object]] = None
    ) -> Tuple[str, float]:
        """Most probable state of ``query`` given ``evidence`` (Eq. 4)."""
        post = self.posterior(query, evidence)
        idx = int(np.argmax(post))
        return self.node(query).states[idx], float(post[idx])

    # ------------------------------------------------------------- sampling
    def sample(self, n_samples: int, seed: RngLike = None) -> List[Dict[str, str]]:
        """Ancestral sampling: ``n_samples`` full assignments (state names)."""
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        rng = ensure_rng(seed)
        order = self.node_names
        samples = []
        for _ in range(n_samples):
            assignment: Dict[str, int] = {}
            for name in order:
                node = self._nodes[name]
                coords = tuple(assignment[p] for p in node.parents)
                probs = node.cpt[coords]
                assignment[name] = int(rng.choice(node.cardinality, p=probs))
            samples.append(
                {name: self._nodes[name].states[idx] for name, idx in assignment.items()}
            )
        return samples


def naive_bayes_network(
    class_prior: np.ndarray,
    likelihoods: Sequence[np.ndarray],
    class_name: str = "event",
    evidence_names: Optional[Sequence[str]] = None,
) -> BayesianNetwork:
    """Build the naive-Bayes-shaped network FeBiM maps onto its crossbar.

    Parameters
    ----------
    class_prior:
        Prior over the ``k`` events, length ``k``.
    likelihoods:
        One table per evidence node, each ``(k, m_i)`` with rows summing
        to 1 — ``P(B_i | A)``.
    """
    class_prior = np.asarray(class_prior, dtype=float)
    k = class_prior.shape[0]
    if evidence_names is None:
        evidence_names = [f"evidence_{i + 1}" for i in range(len(likelihoods))]
    if len(evidence_names) != len(likelihoods):
        raise ValueError("evidence_names and likelihoods length mismatch")

    net = BayesianNetwork()
    net.add_node(
        DiscreteNode(
            name=class_name,
            states=[f"A{j + 1}" for j in range(k)],
            cpt=class_prior / class_prior.sum(),
        )
    )
    for name, table in zip(evidence_names, likelihoods):
        table = np.asarray(table, dtype=float)
        if table.ndim != 2 or table.shape[0] != k:
            raise ValueError(
                f"likelihood table for {name!r} must have shape (k={k}, m), "
                f"got {table.shape}"
            )
        table = table / table.sum(axis=1, keepdims=True)
        net.add_node(
            DiscreteNode(
                name=name,
                states=[f"b{v + 1}" for v in range(table.shape[1])],
                parents=[class_name],
                cpt=table,
            )
        )
    return net
