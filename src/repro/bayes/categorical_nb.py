"""Categorical (discrete-evidence) naive Bayes.

This is the model form that is *literally* programmed into the FeBiM
crossbar: every feature takes one of ``m`` discrete levels and the model
stores a likelihood table ``P(B_i = b | A_j)`` per feature.  The engine
derives such a model either by discretising a fitted Gaussian NB (bin
masses under each class Gaussian) or by direct frequency counting here.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class CategoricalNaiveBayes:
    """Naive Bayes over integer-coded categorical features.

    Parameters
    ----------
    n_levels:
        Number of levels per feature (shared across features, matching the
        crossbar's equal-sized likelihood blocks).
    alpha:
        Additive (Laplace) smoothing count.  ``alpha > 0`` guarantees
        strictly positive likelihoods, which the logarithmic mapping
        requires.

    Attributes (after :meth:`fit`)
    ------------------------------
    classes_:         sorted class labels
    class_prior_:     prior per class
    likelihoods_:     list (per feature) of arrays ``(n_classes, n_levels)``
                      whose rows sum to 1
    """

    def __init__(self, n_levels: int, alpha: float = 1.0):
        if n_levels < 1:
            raise ValueError(f"n_levels must be >= 1, got {n_levels}")
        if alpha <= 0:
            raise ValueError(
                f"alpha must be > 0 (log mapping needs positive likelihoods), got {alpha}"
            )
        self.n_levels = int(n_levels)
        self.alpha = float(alpha)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CategoricalNaiveBayes":
        """Count level frequencies per class with Laplace smoothing."""
        X = np.asarray(X, dtype=int)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
        if np.any(X < 0) or np.any(X >= self.n_levels):
            raise ValueError(f"feature levels must lie in 0..{self.n_levels - 1}")

        self.classes_, counts = np.unique(y, return_counts=True)
        self.class_prior_ = counts / counts.sum()
        n_classes = len(self.classes_)
        n_features = X.shape[1]

        self.likelihoods_: List[np.ndarray] = []
        for f in range(n_features):
            table = np.full((n_classes, self.n_levels), self.alpha)
            for idx, cls in enumerate(self.classes_):
                levels, lv_counts = np.unique(X[y == cls, f], return_counts=True)
                table[idx, levels] += lv_counts
            table /= table.sum(axis=1, keepdims=True)
            self.likelihoods_.append(table)
        return self

    @classmethod
    def from_tables(
        cls,
        likelihoods: List[np.ndarray],
        class_prior: np.ndarray,
        classes: Optional[np.ndarray] = None,
    ) -> "CategoricalNaiveBayes":
        """Build a model directly from likelihood tables.

        Used by the pipeline to wrap bin-mass tables computed from a
        Gaussian NB fit (see :meth:`GaussianNaiveBayes.bin_likelihoods`).
        """
        if not likelihoods:
            raise ValueError("need at least one likelihood table")
        class_prior = np.asarray(class_prior, dtype=float)
        n_classes = class_prior.shape[0]
        n_levels = np.asarray(likelihoods[0]).shape[1]
        model = cls(n_levels=n_levels, alpha=1.0)
        model.class_prior_ = class_prior / class_prior.sum()
        model.classes_ = (
            np.arange(n_classes) if classes is None else np.asarray(classes)
        )
        tables = []
        for f, table in enumerate(likelihoods):
            table = np.asarray(table, dtype=float)
            if table.shape != (n_classes, n_levels):
                raise ValueError(
                    f"table {f} has shape {table.shape}, expected {(n_classes, n_levels)}"
                )
            if np.any(table < 0):
                raise ValueError(f"table {f} contains negative entries")
            sums = table.sum(axis=1, keepdims=True)
            if np.any(sums <= 0):
                raise ValueError(f"table {f} has an all-zero row")
            tables.append(table / sums)
        model.likelihoods_ = tables
        return model

    # ------------------------------------------------------------- inference
    def _check_fitted(self) -> None:
        if not hasattr(self, "likelihoods_"):
            raise RuntimeError("model is not fitted; call fit() first")

    def joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        """log P(A) + sum_i log P(B_i|A), shape ``(n_samples, n_classes)``."""
        self._check_fitted()
        X = np.asarray(X, dtype=int)
        n_features = len(self.likelihoods_)
        if X.ndim != 2 or X.shape[1] != n_features:
            raise ValueError(f"X must have shape (n, {n_features}), got {X.shape}")
        if np.any(X < 0) or np.any(X >= self.n_levels):
            raise ValueError(f"feature levels must lie in 0..{self.n_levels - 1}")
        # Guard against zero entries in externally supplied tables.
        jll = np.tile(np.log(self.class_prior_), (X.shape[0], 1))
        with np.errstate(divide="ignore"):
            for f, table in enumerate(self.likelihoods_):
                jll += np.log(table[:, X[:, f]]).T
        return jll

    def predict(self, X: np.ndarray) -> np.ndarray:
        """MAP class labels."""
        self._check_fitted()
        return self.classes_[np.argmax(self.joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior probabilities, rows summing to 1."""
        jll = self.joint_log_likelihood(X)
        m = jll.max(axis=1, keepdims=True)
        p = np.exp(jll - m)
        return p / p.sum(axis=1, keepdims=True)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
