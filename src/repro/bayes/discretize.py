"""Evidence discretisation (Sec. 3.3, step 1).

FeBiM quantises each continuous evidence value to ``m = 2^Qf`` discrete
levels; each level corresponds to one bitline in the feature's likelihood
block.  We bin uniformly between the per-feature min/max observed during
training and clamp test-time values into the edge bins, which mirrors the
hardware (an out-of-range evidence value still activates exactly one BL).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int


class FeatureDiscretizer:
    """Uniform per-feature binning into a fixed number of levels.

    Parameters
    ----------
    n_levels:
        Number of discrete evidence levels ``m`` (the paper uses powers of
        two, ``m = 2^Qf``, but any ``m >= 1`` is accepted).

    Attributes (after :meth:`fit`)
    ------------------------------
    mins_, maxs_:
        Per-feature training range.
    edges_:
        Bin edges, shape ``(n_features, n_levels + 1)``.
    """

    def __init__(self, n_levels: int):
        self.n_levels = check_positive_int(n_levels, "n_levels")

    @classmethod
    def from_bits(cls, q_f: int) -> "FeatureDiscretizer":
        """Construct with ``m = 2^q_f`` levels (feature precision in bits)."""
        q_f = check_positive_int(q_f, "q_f")
        return cls(2**q_f)

    def fit(self, X: np.ndarray) -> "FeatureDiscretizer":
        """Learn per-feature ranges from the training data."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError(f"X must be a non-empty 2-D array, got shape {X.shape}")
        self.mins_ = X.min(axis=0)
        self.maxs_ = X.max(axis=0)
        spans = self.maxs_ - self.mins_
        # A constant feature gets a degenerate but usable single-value range.
        spans = np.where(spans > 0, spans, 1.0)
        self._spans = spans
        steps = spans / self.n_levels
        offsets = np.arange(self.n_levels + 1)[None, :]
        self.edges_ = self.mins_[:, None] + steps[:, None] * offsets
        return self

    def _check_fitted(self) -> None:
        if not hasattr(self, "edges_"):
            raise RuntimeError("discretizer is not fitted; call fit() first")

    @property
    def n_features_(self) -> int:
        self._check_fitted()
        return self.edges_.shape[0]

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map values to integer levels in ``0..n_levels-1`` (clamped)."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_}), got {X.shape}"
            )
        rel = (X - self.mins_[None, :]) / self._spans[None, :]
        levels = np.floor(rel * self.n_levels).astype(int)
        return np.clip(levels, 0, self.n_levels - 1)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its levels."""
        return self.fit(X).transform(X)

    def bin_centers(self, feature: int) -> np.ndarray:
        """Centre value of each bin for one feature, length ``n_levels``."""
        self._check_fitted()
        edges = self.edges_[feature]
        return 0.5 * (edges[:-1] + edges[1:])

    def inverse_transform(self, levels: np.ndarray) -> np.ndarray:
        """Map integer levels back to bin-centre feature values."""
        self._check_fitted()
        levels = np.asarray(levels, dtype=int)
        if levels.ndim != 2 or levels.shape[1] != self.n_features_:
            raise ValueError(
                f"levels must have shape (n, {self.n_features_}), got {levels.shape}"
            )
        if np.any(levels < 0) or np.any(levels >= self.n_levels):
            raise ValueError("levels out of range")
        centers = np.stack(
            [self.bin_centers(f) for f in range(self.n_features_)], axis=0
        )
        return np.take_along_axis(centers, levels.T, axis=1).T
