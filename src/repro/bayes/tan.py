"""Tree-augmented naive Bayes (TAN) and its crossbar mapping.

The paper's conclusion points at "a broad range of Bayesian inference
applications" beyond the plain naive classifier.  TAN (Friedman et al.,
1997) is the canonical first step: each feature may additionally depend
on one other feature, with the dependency tree chosen as the maximum
spanning tree of class-conditional mutual information (Chow-Liu).

FeBiM maps TAN with a block-widening trick: a feature whose likelihood
is ``P(B_i | parent(B_i), A)`` gets a block of ``m_parent * m_i``
columns — one per *joint* (parent value, own value) evidence pair — and
an inference activates the column matching the observed joint value.
Everything downstream (Eq. 5 accumulation, WTA) is unchanged, because
the wordline still sums exactly one activated cell per block.  Arbitrary
per-feature block widths are exactly what
:class:`~repro.crossbar.layout.BayesianArrayLayout` supports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int


def conditional_mutual_information(
    xi: np.ndarray, xj: np.ndarray, y: np.ndarray, mi_levels: int, mj_levels: int
) -> float:
    """I(X_i; X_j | Y) from integer-coded samples (natural log)."""
    xi = np.asarray(xi, dtype=int)
    xj = np.asarray(xj, dtype=int)
    y = np.asarray(y)
    classes = np.unique(y)
    n = len(y)
    total = 0.0
    for cls in classes:
        sel = y == cls
        n_c = int(sel.sum())
        if n_c == 0:
            continue
        joint = np.zeros((mi_levels, mj_levels))
        np.add.at(joint, (xi[sel], xj[sel]), 1.0)
        joint /= n_c
        pi = joint.sum(axis=1, keepdims=True)
        pj = joint.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(joint > 0, joint / (pi * pj), 1.0)
            contrib = np.where(joint > 0, joint * np.log(ratio), 0.0)
        total += (n_c / n) * float(contrib.sum())
    return max(total, 0.0)


class TreeAugmentedNaiveBayes:
    """TAN over integer-coded features (Chow-Liu structure learning).

    Parameters
    ----------
    n_levels:
        Levels per feature (uniform, as produced by the discretiser).
    alpha:
        Laplace smoothing for the (joint) frequency counts.

    Attributes (after :meth:`fit`)
    ------------------------------
    parents_:
        ``parents_[i]`` is feature i's tree parent or ``None`` for the
        root.
    tables_:
        For the root: ``(k, m)`` with P(B_root | A).  For others:
        ``(k, m_parent * m)`` with P(B_i | parent value, A) laid out
        parent-major (column ``p * m + v``), each ``m``-wide slice
        normalised per (class, parent value).
    """

    def __init__(self, n_levels: int, alpha: float = 1.0):
        self.n_levels = check_positive_int(n_levels, "n_levels")
        if alpha <= 0:
            raise ValueError("alpha must be > 0")
        self.alpha = float(alpha)

    # ------------------------------------------------------------ structure
    def _chow_liu_tree(self, X: np.ndarray, y: np.ndarray) -> List[Optional[int]]:
        n_features = X.shape[1]
        if n_features == 1:
            return [None]
        graph = nx.Graph()
        graph.add_nodes_from(range(n_features))
        for i in range(n_features):
            for j in range(i + 1, n_features):
                weight = conditional_mutual_information(
                    X[:, i], X[:, j], y, self.n_levels, self.n_levels
                )
                graph.add_edge(i, j, weight=weight)
        tree = nx.maximum_spanning_tree(graph)
        parents: List[Optional[int]] = [None] * n_features
        for parent, child in nx.bfs_edges(tree, source=0):
            parents[child] = parent
        return parents

    # ---------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "TreeAugmentedNaiveBayes":
        X = np.asarray(X, dtype=int)
        y = np.asarray(y)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be 2-D with matching y")
        if np.any(X < 0) or np.any(X >= self.n_levels):
            raise ValueError(f"levels must lie in 0..{self.n_levels - 1}")

        self.classes_, counts = np.unique(y, return_counts=True)
        self.class_prior_ = counts / counts.sum()
        k = len(self.classes_)
        m = self.n_levels
        self.parents_ = self._chow_liu_tree(X, y)

        self.tables_: List[np.ndarray] = []
        for f, parent in enumerate(self.parents_):
            if parent is None:
                table = np.full((k, m), self.alpha)
                for idx, cls in enumerate(self.classes_):
                    vals, c = np.unique(X[y == cls, f], return_counts=True)
                    table[idx, vals] += c
                table /= table.sum(axis=1, keepdims=True)
            else:
                table = np.full((k, m * m), self.alpha)
                for idx, cls in enumerate(self.classes_):
                    sel = y == cls
                    joint_idx = X[sel, parent] * m + X[sel, f]
                    vals, c = np.unique(joint_idx, return_counts=True)
                    table[idx, vals] += c
                # Normalise each m-wide slice: P(B_f | parent=p, A).
                reshaped = table.reshape(k, m, m)
                reshaped /= reshaped.sum(axis=2, keepdims=True)
                table = reshaped.reshape(k, m * m)
            self.tables_.append(table)
        return self

    def _check_fitted(self) -> None:
        if not hasattr(self, "tables_"):
            raise RuntimeError("model is not fitted; call fit() first")

    # ------------------------------------------------------------ inference
    def evidence_columns(self, X: np.ndarray) -> np.ndarray:
        """Per-feature activated column within each block.

        Root features address their own value; augmented features the
        joint ``parent_value * m + own_value`` column — this is exactly
        the evidence vector the crossbar layout consumes.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=int)
        if X.ndim != 2 or X.shape[1] != len(self.parents_):
            raise ValueError(
                f"X must have shape (n, {len(self.parents_)}), got {X.shape}"
            )
        cols = np.empty_like(X)
        for f, parent in enumerate(self.parents_):
            if parent is None:
                cols[:, f] = X[:, f]
            else:
                cols[:, f] = X[:, parent] * self.n_levels + X[:, f]
        return cols

    def block_widths(self) -> List[int]:
        """Crossbar block width per feature (m or m^2)."""
        self._check_fitted()
        return [t.shape[1] for t in self.tables_]

    def joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        """log P(A) + sum_f log P(B_f | parent, A)."""
        cols = self.evidence_columns(X)
        jll = np.tile(np.log(self.class_prior_), (X.shape[0], 1))
        for f, table in enumerate(self.tables_):
            jll += np.log(table[:, cols[:, f]]).T
        return jll

    def predict(self, X: np.ndarray) -> np.ndarray:
        """MAP class labels."""
        self._check_fitted()
        return self.classes_[np.argmax(self.joint_log_likelihood(X), axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    # --------------------------------------------------------------- engine
    def to_engine(
        self,
        q_l: int = 2,
        clip_decades: float = 1.0,
        seed: RngLike = None,
        **engine_kwargs,
    ) -> Tuple["object", "TreeAugmentedNaiveBayes"]:
        """Quantise and program this TAN onto a FeBiM engine.

        Returns ``(engine, self)``; feed the engine
        :meth:`evidence_columns` output as its evidence levels.
        """
        from repro.core.engine import FeBiMEngine
        from repro.core.quantization import quantize_model

        self._check_fitted()
        model = quantize_model(
            self.tables_,
            self.class_prior_,
            n_levels=2**q_l,
            clip_decades=clip_decades,
            classes=self.classes_,
        )
        engine = FeBiMEngine(model, seed=seed, **engine_kwargs)
        return engine, self
