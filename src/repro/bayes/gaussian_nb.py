"""Gaussian naive Bayes classifier (GNBC), implemented from scratch.

This is the model of Sec. 4.2: conditional independence of features given
the class (Eq. 3) and a Gaussian distribution per feature per class.  Fit
estimates each class's per-feature mean and variance plus the class
priors; prediction evaluates log-posteriors (Eq. 5) and takes the argmax
(Eq. 4).

The paper builds its models with scikit-learn; this implementation matches
sklearn's ``GaussianNB`` semantics (including the relative variance
smoothing ``var_smoothing * max feature variance``) so the float64
software baselines of Figs. 7/8 are directly comparable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_LOG_2PI = float(np.log(2.0 * np.pi))


class GaussianNaiveBayes:
    """Gaussian naive Bayes with per-class feature means/variances.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance
        for numerical stability (same semantics/default as scikit-learn).
    priors:
        Optional fixed class priors; estimated from class frequencies when
        omitted.

    Attributes (after :meth:`fit`)
    ------------------------------
    classes_:        sorted unique class labels
    class_prior_:    prior probability per class
    theta_:          per-class feature means, shape (n_classes, n_features)
    var_:            per-class feature variances, same shape
    """

    def __init__(self, var_smoothing: float = 1e-9, priors: Optional[np.ndarray] = None):
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be >= 0, got {var_smoothing}")
        self.var_smoothing = float(var_smoothing)
        self.priors = None if priors is None else np.asarray(priors, dtype=float)

    # ------------------------------------------------------------------ fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        """Estimate per-class means, variances and priors from data."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(
                f"y shape {y.shape} incompatible with X shape {X.shape}"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        self.classes_, counts = np.unique(y, return_counts=True)
        n_classes = len(self.classes_)
        n_features = X.shape[1]

        if self.priors is not None:
            if self.priors.shape != (n_classes,):
                raise ValueError(
                    f"priors must have length {n_classes}, got {self.priors.shape}"
                )
            if np.any(self.priors < 0) or not np.isclose(self.priors.sum(), 1.0):
                raise ValueError("priors must be non-negative and sum to 1")
            self.class_prior_ = self.priors.copy()
        else:
            self.class_prior_ = counts / counts.sum()

        self.theta_ = np.empty((n_classes, n_features))
        self.var_ = np.empty((n_classes, n_features))
        for idx, cls in enumerate(self.classes_):
            Xc = X[y == cls]
            self.theta_[idx] = Xc.mean(axis=0)
            self.var_[idx] = Xc.var(axis=0)

        # Relative smoothing keeps zero-variance features usable and matches
        # scikit-learn's epsilon_ = var_smoothing * max over feature variances.
        self.epsilon_ = self.var_smoothing * float(X.var(axis=0).max()) if X.shape[1] else 0.0
        if self.epsilon_ == 0.0:
            self.epsilon_ = self.var_smoothing
        self.var_ += self.epsilon_
        if np.any(self.var_ <= 0):
            raise ValueError(
                "zero variance encountered; increase var_smoothing or add data"
            )
        return self

    # ------------------------------------------------------------- inference
    def _check_fitted(self) -> None:
        if not hasattr(self, "theta_"):
            raise RuntimeError("model is not fitted; call fit() first")

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.theta_.shape[1]:
            raise ValueError(
                f"X must have shape (n, {self.theta_.shape[1]}), got {X.shape}"
            )
        return X

    def joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        """Unnormalised log-posterior log P(A) + sum_i log P(B_i|A) (Eq. 5).

        Returns shape ``(n_samples, n_classes)``.
        """
        self._check_fitted()
        X = self._check_X(X)
        # (n, 1, f) - (1, c, f) -> (n, c, f)
        diff = X[:, None, :] - self.theta_[None, :, :]
        log_like = -0.5 * (
            _LOG_2PI + np.log(self.var_)[None, :, :] + diff**2 / self.var_[None, :, :]
        )
        return np.log(self.class_prior_)[None, :] + log_like.sum(axis=2)

    def predict_log_proba(self, X: np.ndarray) -> np.ndarray:
        """Normalised log-posteriors, shape ``(n_samples, n_classes)``."""
        jll = self.joint_log_likelihood(X)
        # log-sum-exp normalisation
        m = jll.max(axis=1, keepdims=True)
        log_norm = m + np.log(np.exp(jll - m).sum(axis=1, keepdims=True))
        return jll - log_norm

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior probabilities, rows summing to 1."""
        return np.exp(self.predict_log_proba(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """MAP class labels (Eq. 4)."""
        jll = self.joint_log_likelihood(X)
        return self.classes_[np.argmax(jll, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    # ------------------------------------------------------------- utilities
    def feature_likelihood(self, feature: int, values: np.ndarray) -> np.ndarray:
        """Gaussian pdf of ``values`` for one feature under every class.

        Returns shape ``(n_classes, len(values))``; used to visualise the
        Fig. 2(a) likelihood curves.
        """
        self._check_fitted()
        values = np.asarray(values, dtype=float).ravel()
        mu = self.theta_[:, feature][:, None]
        var = self.var_[:, feature][:, None]
        return np.exp(-0.5 * (values[None, :] - mu) ** 2 / var) / np.sqrt(
            2.0 * np.pi * var
        )

    def bin_likelihoods(self, feature: int, edges: np.ndarray) -> np.ndarray:
        """Probability mass of each bin under each class's Gaussian.

        Parameters
        ----------
        feature:
            Feature index.
        edges:
            Bin edges of length ``m + 1`` (monotonically increasing).

        Returns
        -------
        ndarray of shape ``(n_classes, m)`` whose rows each sum to ~1 (the
        outermost bins absorb the tails, matching the discretiser's
        clamping of out-of-range evidence).
        """
        from scipy.stats import norm

        self._check_fitted()
        edges = np.asarray(edges, dtype=float).ravel()
        if edges.ndim != 1 or len(edges) < 2 or np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be an increasing array of length >= 2")
        mu = self.theta_[:, feature][:, None]
        sd = np.sqrt(self.var_[:, feature])[:, None]
        cdf = norm.cdf(edges[None, :], loc=mu, scale=sd)
        # Clamp the tails into the edge bins: evidence outside the training
        # range activates the first/last bitline (Sec. 3.3 discretisation).
        cdf[:, 0] = 0.0
        cdf[:, -1] = 1.0
        mass = np.diff(cdf, axis=1)
        return np.maximum(mass, 0.0)
