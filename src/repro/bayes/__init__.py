"""Bayesian model substrate.

Implements from scratch the probabilistic models FeBiM maps onto hardware:

* :class:`GaussianNaiveBayes` — the paper's GNBC (Sec. 4.2), trained in
  float64 as the software baseline and as the source of likelihoods for
  the crossbar.
* :class:`CategoricalNaiveBayes` — naive Bayes over already-discrete
  evidence, the form that is literally programmed into the array.
* :class:`FeatureDiscretizer` — uniform evidence binning to ``m = 2^Qf``
  levels (Sec. 3.3, step 1).
* :mod:`repro.bayes.network` — small discrete Bayesian networks (the
  Fig. 2 workflow example generalised), with exact enumeration inference
  and ancestral sampling.
"""

from repro.bayes.gaussian_nb import GaussianNaiveBayes
from repro.bayes.categorical_nb import CategoricalNaiveBayes
from repro.bayes.discretize import FeatureDiscretizer
from repro.bayes.network import (
    BayesianNetwork,
    DiscreteNode,
    naive_bayes_network,
)
from repro.bayes.tan import TreeAugmentedNaiveBayes
from repro.bayes.metrics import (
    brier_score,
    currents_to_posterior,
    expected_calibration_error,
    negative_log_likelihood,
    predictive_entropy,
)

__all__ = [
    "TreeAugmentedNaiveBayes",
    "brier_score",
    "currents_to_posterior",
    "expected_calibration_error",
    "negative_log_likelihood",
    "predictive_entropy",
    "GaussianNaiveBayes",
    "CategoricalNaiveBayes",
    "FeatureDiscretizer",
    "BayesianNetwork",
    "DiscreteNode",
    "naive_bayes_network",
]
