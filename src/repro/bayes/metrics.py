"""Posterior-quality metrics: the 'uncertainty estimation' the paper
motivates (Sec. 1: Bayesian inference provides "interpretable
predictions and reliable uncertainty estimation").

Beyond argmax accuracy, a deployed Bayesian engine is judged on its
posterior *probabilities*.  These metrics let the repo quantify what the
quantised/in-memory posterior retains:

* predictive entropy — the model's per-sample uncertainty;
* Brier score — squared error of the probability vector;
* expected calibration error (ECE) — confidence vs accuracy;
* negative log-likelihood.

Crossbar wordline currents convert back to a posterior with
:func:`currents_to_posterior` (invert the affine level map, then
softmax in the quantised log domain).
"""

from __future__ import annotations

import numpy as np

from repro.devices.fefet import MultiLevelCellSpec
from repro.utils.validation import check_positive_int


def _check_proba(proba: np.ndarray) -> np.ndarray:
    proba = np.asarray(proba, dtype=float)
    if proba.ndim != 2:
        raise ValueError(f"probabilities must be 2-D, got shape {proba.shape}")
    if np.any(proba < -1e-12) or np.any(proba > 1 + 1e-12):
        raise ValueError("probabilities must lie in [0, 1]")
    sums = proba.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=1e-6):
        raise ValueError("probability rows must sum to 1")
    return np.clip(proba, 0.0, 1.0)


def predictive_entropy(proba: np.ndarray) -> np.ndarray:
    """Shannon entropy (nats) of each posterior row."""
    proba = _check_proba(proba)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(proba > 0, proba * np.log(proba), 0.0)
    return -terms.sum(axis=1)


def brier_score(proba: np.ndarray, y_true: np.ndarray) -> float:
    """Mean squared error of the posterior vs the one-hot truth."""
    proba = _check_proba(proba)
    y_true = np.asarray(y_true, dtype=int)
    if y_true.shape != (proba.shape[0],):
        raise ValueError("y_true length must match probability rows")
    if np.any(y_true < 0) or np.any(y_true >= proba.shape[1]):
        raise ValueError("y_true labels out of range")
    onehot = np.zeros_like(proba)
    onehot[np.arange(len(y_true)), y_true] = 1.0
    return float(np.mean(np.sum((proba - onehot) ** 2, axis=1)))


def negative_log_likelihood(proba: np.ndarray, y_true: np.ndarray) -> float:
    """Mean -log P(true class), with a 1e-12 floor."""
    proba = _check_proba(proba)
    y_true = np.asarray(y_true, dtype=int)
    picked = proba[np.arange(len(y_true)), y_true]
    return float(-np.mean(np.log(np.maximum(picked, 1e-12))))


def expected_calibration_error(
    proba: np.ndarray, y_true: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: |confidence - accuracy| averaged over confidence bins."""
    check_positive_int(n_bins, "n_bins")
    proba = _check_proba(proba)
    y_true = np.asarray(y_true, dtype=int)
    confidence = proba.max(axis=1)
    predicted = proba.argmax(axis=1)
    correct = (predicted == y_true).astype(float)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    ece = 0.0
    n = len(y_true)
    for b in range(n_bins):
        lo, hi = edges[b], edges[b + 1]
        sel = (confidence > lo) & (confidence <= hi) if b else (
            (confidence >= lo) & (confidence <= hi)
        )
        if not sel.any():
            continue
        gap = abs(confidence[sel].mean() - correct[sel].mean())
        ece += (sel.sum() / n) * gap
    return float(ece)


def currents_to_posterior(
    wordline_currents: np.ndarray,
    n_active: int,
    spec: MultiLevelCellSpec,
    quant_step: float,
) -> np.ndarray:
    """Recover a posterior from measured wordline currents.

    Inverts the affine mapping of Sec. 3.3: the wordline current is
    ``n_active * i_min + score * level_separation`` where ``score`` is
    the summed quantised log-probability level; converting scores back
    to the quantised log domain (``score * quant_step``) and
    soft-maxing yields the posterior the analog array encodes.

    Parameters
    ----------
    wordline_currents:
        Shape ``(n_samples, n_classes)`` or ``(n_classes,)`` (amperes).
    n_active:
        Activated cells per wordline.
    spec:
        The cell spec (defines the affine map).
    quant_step:
        The quantiser's log-domain step
        (:attr:`UniformQuantizer.step`).
    """
    currents = np.atleast_2d(np.asarray(wordline_currents, dtype=float))
    check_positive_int(n_active, "n_active")
    sep = spec.level_separation()
    if sep <= 0:
        raise ValueError("spec must have more than one level")
    scores = (currents - n_active * spec.i_min) / sep
    log_post = scores * quant_step
    log_post -= log_post.max(axis=1, keepdims=True)
    post = np.exp(log_post)
    return post / post.sum(axis=1, keepdims=True)
