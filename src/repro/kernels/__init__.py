"""The raw-speed kernel layer: interchangeable read inner loops.

Everything between a batch of activation masks and a batch of winners
— masked select, reduce, mirror gains, argmax — lives here as three
interchangeable kernels behind one registry:

========== ==========================================================
kernel     what it computes
========== ==========================================================
reference  the backend's own elementwise read (``np.where`` select +
           reduce), bit-identical to the historical path; the default
gemm       one BLAS matmul over precomputed affine tables — exact on
           the int64 backends, rounding-different on FeFET (opt-in)
fused      read+decide in one pass: row-blocked GEMM into pooled
           scratch with a running argmax; the per-row current matrix
           never materialises
========== ==========================================================

Supporting cast: :class:`ScratchPool` recycles kernel temporaries
across micro-batches, :class:`KernelAutotuner` races the kernels per
shape class at first use and remembers the winner (the engine's
``kernel="auto"``), and :mod:`repro.kernels.tables` holds the affine
read form backends expose through the ``fused-read`` capability.

This package deliberately imports nothing from the crossbar, backend
or engine layers — it is pure array math, and the layers above plug
into it (see ARCHITECTURE.md, "writing a new kernel").
"""

from repro.kernels.autotune import KernelAutotuner
from repro.kernels.read import (
    KERNEL_CHOICES,
    FusedKernel,
    GemmKernel,
    KernelContext,
    ReadKernel,
    ReferenceKernel,
    get_kernel,
    kernel_names,
    reference_cell_currents,
    reference_wordline_currents,
    register_kernel,
)
from repro.kernels.scratch import ScratchPool, default_pool
from repro.kernels.tables import (
    AffineReadTables,
    ExactReadTables,
    FloatReadTables,
)

__all__ = [
    "AffineReadTables",
    "ExactReadTables",
    "FloatReadTables",
    "FusedKernel",
    "GemmKernel",
    "KERNEL_CHOICES",
    "KernelAutotuner",
    "KernelContext",
    "ReadKernel",
    "ReferenceKernel",
    "ScratchPool",
    "default_pool",
    "get_kernel",
    "kernel_names",
    "reference_cell_currents",
    "reference_wordline_currents",
    "register_kernel",
]
