"""Reusable scratch buffers for the read kernels.

The batched read path runs at a steady state — the
:class:`~repro.serving.scheduler.MicroBatchScheduler` coalesces
requests into micro-batches of a few recurring shapes and pushes one
``infer_batch`` after another through the same engine.  Allocating the
kernel temporaries (cast mask operands, per-row-block current buffers,
stacked request levels) fresh on every batch makes the allocator a
fixed tax on every read cycle; :class:`ScratchPool` amortises it by
recycling buffers keyed on ``(shape, dtype)``.

Correctness rules the kernels follow:

* a buffer is *owned* by whoever took it until it is given back — the
  pool pops under a lock, so two threads can never be handed the same
  buffer (the conformance for the "interleaved shapes from concurrent
  schedulers" scenario);
* buffers hold **garbage** on :meth:`ScratchPool.take` — every kernel
  fully overwrites before reading;
* anything *returned to a caller* is freshly allocated, never pooled —
  results must not be clobbered by the next batch.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np


class ScratchPool:
    """A thread-safe free-list of reusable numpy buffers.

    Parameters
    ----------
    max_per_key:
        Buffers retained per ``(shape, dtype)`` key; extras given back
        beyond the cap are dropped to the allocator (bounds the pool's
        footprint when shapes churn).
    """

    def __init__(self, max_per_key: int = 4):
        if max_per_key < 1:
            raise ValueError(f"max_per_key must be >= 1, got {max_per_key}")
        self._max_per_key = int(max_per_key)
        self._lock = threading.Lock()
        self._free: dict = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def take(self, shape, dtype=np.float64) -> np.ndarray:
        """A buffer of ``shape``/``dtype`` with undefined contents.

        Reuses a previously given-back buffer when one of the exact
        shape and dtype is free; otherwise allocates.
        """
        key = self._key(shape, dtype)
        with self._lock:
            stack = self._free.get(key)
            if stack:
                self.hits += 1
                return stack.pop()
            self.misses += 1
        return np.empty(shape, dtype=dtype)

    def give(self, array: np.ndarray) -> None:
        """Return a buffer to the pool (caller must drop its reference)."""
        if not isinstance(array, np.ndarray) or array.base is not None:
            # Views are never pooled: handing a view out later would
            # alias whoever still owns the base buffer.
            return
        key = self._key(array.shape, array.dtype)
        with self._lock:
            stack = self._free.setdefault(key, [])
            if len(stack) < self._max_per_key:
                stack.append(array)

    @contextmanager
    def borrow(self, shape, dtype=np.float64):
        """``with pool.borrow(shape) as buf:`` — auto-returned scratch."""
        array = self.take(shape, dtype)
        try:
            yield array
        finally:
            self.give(array)

    def clear(self) -> None:
        """Drop every pooled buffer (keeps the hit/miss counters)."""
        with self._lock:
            self._free.clear()

    def stats(self) -> dict:
        """Hit/miss counters and the current per-key population."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "pooled": sum(len(s) for s in self._free.values()),
                "keys": len(self._free),
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ScratchPool({s['pooled']} pooled over {s['keys']} keys, "
            f"{s['hits']} hits / {s['misses']} misses)"
        )


_DEFAULT_POOL = ScratchPool()


def default_pool() -> ScratchPool:
    """The process-wide pool the engines and kernels share by default."""
    return _DEFAULT_POOL
