"""The read kernels: reference, GEMM, and fused read+decide.

The inner loop of every inference is *mask -> wordline currents ->
argmax*.  This module holds the three interchangeable implementations
of that loop behind one tiny interface, plus the registry the engine
and the autotuner select from:

``reference``
    Bit-identical to the historical elementwise path — select per cell
    between the cached ``(I_on, I_off)`` matrices with ``np.where`` and
    reduce over columns (:func:`reference_wordline_currents`, which is
    the exact expression extracted from
    :meth:`~repro.crossbar.array.FeFETCrossbar.current_matrix_batch`).
    Stays the default; all goldens pin it.

``gemm``
    One BLAS matmul over the precomputed affine tables
    (:mod:`repro.kernels.tables`).  Exact to the last bit on the int64
    exact backends; float-summation-order-different on the FeFET
    backend, which is why it is opt-in (``fused-read`` capability +
    the engine's ``kernel`` knob) and contractually gated on 100 %
    argmax parity rather than bit-identity.

``fused``
    Read *and* decide in one pass: GEMM the currents row-block by
    row-block into a pooled scratch buffer, fold in the sensing
    mirrors' per-row gains, and keep a running winner — the full
    ``(n, rows)`` current matrix is never materialised.  The winners-
    only entry point :meth:`~repro.core.engine.FeBiMEngine.predict`
    rides this.

Tie semantics match :class:`~repro.crossbar.wta.WinnerTakeAll`
everywhere: the lowest-index row wins.  Within a block ``np.argmax``
already picks the lowest index, and across blocks the running winner is
only displaced by a *strictly* larger value, so earlier (lower-index)
blocks keep ties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.kernels.scratch import ScratchPool, default_pool
from repro.kernels.tables import AffineReadTables

#: Target elements per fused row-block buffer (~2 MB of float64) —
#: big enough to keep the GEMM efficient, small enough to stay cache-
#: resident per micro-batch.
_FUSED_BLOCK_ELEMS = 256 * 1024


# --------------------------------------------------------- reference ops
def reference_cell_currents(
    i_on: np.ndarray, i_off: np.ndarray, masks: np.ndarray
) -> np.ndarray:
    """Per-cell currents of a noise-free batched read, reference form.

    The elementwise selection between the cached read matrices —
    deliberately *not* a matmul: every sample's floating-point result
    is bit-identical to a single-sample read.
    """
    return np.where(masks[:, None, :], i_on[None, :, :], i_off[None, :, :])


def reference_wordline_currents(
    i_on: np.ndarray, i_off: np.ndarray, masks: np.ndarray
) -> np.ndarray:
    """Accumulated ``(n, rows)`` wordline currents, reference form."""
    return reference_cell_currents(i_on, i_off, masks).sum(axis=2)


# ------------------------------------------------------------- interface
@dataclass
class KernelContext:
    """Everything a kernel invocation needs, bundled.

    Attributes
    ----------
    tables:
        The backend's affine read tables (``None`` when the backend
        does not declare ``fused-read`` — only the reference kernel
        runs then).
    pool:
        Scratch-buffer pool for the kernel temporaries.
    native_read:
        The backend's own batched read ``masks -> (n, rows)`` currents;
        the reference kernel *is* this call.
    """

    tables: Optional[AffineReadTables] = None
    pool: ScratchPool = field(default_factory=default_pool)
    native_read: Optional[Callable[[np.ndarray], np.ndarray]] = None


class ReadKernel:
    """One implementation of the mask -> currents / winners inner loop.

    ``currents`` returns the full ``(n, rows)`` wordline currents;
    ``winners`` the ``(n,)`` winning row indices, with ``row_scale``
    (the sensing mirrors' per-row gains — scalar or ``(rows,)``)
    applied before the argmax exactly as
    :meth:`~repro.crossbar.sensing.SensingModule.decide_batch` would.
    """

    name: str = ""

    def currents(self, ctx: KernelContext, masks: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def winners(
        self,
        ctx: KernelContext,
        masks: np.ndarray,
        row_scale=None,
    ) -> np.ndarray:
        currents = np.asarray(self.currents(ctx, masks), dtype=float)
        if row_scale is not None:
            currents = currents * row_scale
        return np.argmax(currents, axis=1)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class ReferenceKernel(ReadKernel):
    """The backend's own elementwise read — the bit-identity anchor."""

    name = "reference"

    def currents(self, ctx: KernelContext, masks: np.ndarray) -> np.ndarray:
        if ctx.native_read is None:
            raise ValueError(
                "reference kernel needs ctx.native_read (the backend's "
                "batched read)"
            )
        return ctx.native_read(masks)


class GemmKernel(ReadKernel):
    """The affine read as one GEMM over the precomputed tables."""

    name = "gemm"

    def currents(self, ctx: KernelContext, masks: np.ndarray) -> np.ndarray:
        if ctx.tables is None:
            raise ValueError("gemm kernel needs ctx.tables (fused-read backend)")
        return ctx.tables.currents(masks, ctx.pool)


class FusedKernel(ReadKernel):
    """Fused read+decide: blocked GEMM with a running argmax.

    Parameters
    ----------
    block_rows:
        Rows per GEMM block; ``None`` sizes blocks to
        ``_FUSED_BLOCK_ELEMS`` elements for the batch at hand (tests
        pin small blocks to exercise the cross-block winner merge).
    """

    name = "fused"

    def __init__(self, block_rows: Optional[int] = None):
        if block_rows is not None and block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        self.block_rows = block_rows

    def currents(self, ctx: KernelContext, masks: np.ndarray) -> np.ndarray:
        # A caller that wants the full current matrix gets the plain
        # GEMM — fusion only pays when the currents never materialise.
        return GemmKernel().currents(ctx, masks)

    def winners(self, ctx, masks, row_scale=None):
        tables = ctx.tables
        if tables is None:
            raise ValueError("fused kernel needs ctx.tables (fused-read backend)")
        n = masks.shape[0]
        block = self.block_rows or max(
            1, min(tables.rows, _FUSED_BLOCK_ELEMS // max(n, 1))
        )
        scale = None if row_scale is None else np.asarray(row_scale, dtype=float)
        winners = np.zeros(n, dtype=np.intp)
        best = np.full(n, -np.inf)
        sample_idx = np.arange(n)
        operand = tables.prepare_masks(masks, ctx.pool)
        try:
            with ctx.pool.borrow((n, block), tables.out_dtype) as buf:
                for row_lo in range(0, tables.rows, block):
                    row_hi = min(row_lo + block, tables.rows)
                    out = buf[:, : row_hi - row_lo]
                    tables.currents_block(operand, row_lo, row_hi, out, ctx.pool)
                    if scale is not None:
                        out *= scale if scale.ndim == 0 else scale[row_lo:row_hi]
                    block_arg = np.argmax(out, axis=1)
                    block_val = out[sample_idx, block_arg]
                    # Strictly greater: ties stay with the earlier
                    # (lower-index) block, matching global argmax.
                    better = block_val > best
                    winners[better] = block_arg[better] + row_lo
                    best[better] = block_val[better]
        finally:
            ctx.pool.give(operand)
        return winners


# -------------------------------------------------------------- registry
_KERNELS = {
    kernel.name: kernel
    for kernel in (ReferenceKernel(), GemmKernel(), FusedKernel())
}

#: What the engine/CLI ``kernel`` knob accepts (``auto`` defers the
#: choice to the per-shape autotuner).
KERNEL_CHOICES = ("reference", "gemm", "fused", "auto")


def kernel_names() -> tuple:
    """Registered kernel implementation names (sorted)."""
    return tuple(sorted(_KERNELS))


def get_kernel(name: str) -> ReadKernel:
    """Look a kernel up by name (``auto`` is a selection policy, not a
    kernel — resolve it through the autotuner first)."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; known: {', '.join(kernel_names())}"
        ) from None


def register_kernel(kernel: ReadKernel) -> ReadKernel:
    """Register a custom kernel implementation (see ARCHITECTURE.md,
    "writing a new kernel")."""
    if not kernel.name:
        raise ValueError("kernel must set a non-empty name")
    _KERNELS[kernel.name] = kernel
    return kernel
