"""Affine read tables: the algebraic form the fast kernels exploit.

A noise-free batched read is affine in the activation mask: with
``I_on``/``I_off`` the per-cell currents under an activated/inhibited
gate, the accumulated wordline current of row ``r`` under mask ``m``
is::

    I_wl[r] = sum_c I_off[r, c]  +  sum_{c in m} (I_on[r, c] - I_off[r, c])
            = base[r] + (m @ (I_on - I_off).T)[r]

which turns the elementwise select-and-reduce of the reference path
into one GEMM over a precomputed weight matrix.  The tables cache that
weight/base pair per array state; backends declaring the ``fused-read``
capability build one from their cached read state
(:meth:`~repro.backends.base.ArrayBackend.read_tables`) and the kernels
in :mod:`repro.kernels.read` consume it.

Two flavours mirror the two read families in the tree:

* :class:`FloatReadTables` — float weights from ``(I_on, I_off)``
  matrices (the FeFET crossbar's cached device-physics reads).  The
  GEMM accumulates in a different order than the reference elementwise
  sum, so currents agree only to rounding — that is why the fast
  kernels are opt-in and gated on 100 % argmax parity, not
  bit-identity.  ``dtype=float32`` additionally downcasts the whole
  pipeline where even approximate currents are not contractual.
* :class:`ExactReadTables` — the exact backends' int64
  ``(units, participation)`` tables with the affine current map applied
  per element after the integer matmuls.  Integer accumulation is
  order-independent, so a blocked kernel over these tables is
  **bit-identical** to the native
  :class:`~repro.backends.exact.ExactLevelSumBackend` read, exact ties
  included.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.kernels.scratch import ScratchPool


class AffineReadTables(ABC):
    """Precomputed ``I = base + masks @ weight`` form of a read.

    The kernel-facing surface is deliberately small: cast the boolean
    mask batch into the table's operand dtype once
    (:meth:`prepare_masks` — reusable across row blocks), then fill
    per-row-block current buffers (:meth:`currents_block`).  Blocks are
    column slices ``[row_lo, row_hi)`` of the full ``(n, rows)`` result
    and must be elementwise-exact slices of the unblocked computation,
    so a blocked argmax equals the unblocked one.
    """

    #: Logical wordline count (classes).
    rows: int
    #: Logical bitline count.
    cols: int
    #: dtype of the currents the tables produce.
    out_dtype: np.dtype

    @abstractmethod
    def prepare_masks(self, masks: np.ndarray, pool: ScratchPool) -> np.ndarray:
        """The mask batch cast to the GEMM operand dtype (pooled).

        The caller owns the returned buffer and must
        ``pool.give(...)`` it back when done with every block.
        """

    @abstractmethod
    def currents_block(
        self,
        operand: np.ndarray,
        row_lo: int,
        row_hi: int,
        out: np.ndarray,
        pool: ScratchPool,
    ) -> np.ndarray:
        """Fill ``out`` with currents of rows ``[row_lo, row_hi)``.

        ``out`` has shape ``(n, row_hi - row_lo)`` and dtype
        :attr:`out_dtype`; its prior contents are ignored.
        """

    def currents(self, masks: np.ndarray, pool: ScratchPool) -> np.ndarray:
        """Full ``(n, rows)`` wordline currents in one GEMM (allocated
        fresh — results escape to callers and are never pooled)."""
        operand = self.prepare_masks(masks, pool)
        try:
            out = np.empty((masks.shape[0], self.rows), dtype=self.out_dtype)
            return self.currents_block(operand, 0, self.rows, out, pool)
        finally:
            pool.give(operand)


class FloatReadTables(AffineReadTables):
    """Affine tables over float ``(I_on, I_off)`` cell-current matrices."""

    def __init__(self, i_on: np.ndarray, i_off: np.ndarray, dtype=np.float64):
        i_on = np.asarray(i_on, dtype=np.float64)
        i_off = np.asarray(i_off, dtype=np.float64)
        if i_on.shape != i_off.shape or i_on.ndim != 2:
            raise ValueError(
                f"i_on/i_off must be matching (rows, cols) matrices, "
                f"got {i_on.shape} and {i_off.shape}"
            )
        self.out_dtype = np.dtype(dtype)
        if self.out_dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"dtype must be float64 or float32, got {self.out_dtype}"
            )
        self.rows, self.cols = i_on.shape
        # (cols, rows) so a mask batch right-multiplies without a
        # transposed (strided) GEMM operand.
        self._weight_t = np.ascontiguousarray((i_on - i_off).T, dtype=self.out_dtype)
        # The off-leakage row sums are accumulated in float64 first so
        # the float32 mode loses precision once, not per term.
        self._base = i_off.sum(axis=1).astype(self.out_dtype)

    def prepare_masks(self, masks: np.ndarray, pool: ScratchPool) -> np.ndarray:
        operand = pool.take(masks.shape, self.out_dtype)
        np.copyto(operand, masks)
        return operand

    def currents_block(self, operand, row_lo, row_hi, out, pool):
        np.matmul(operand, self._weight_t[:, row_lo:row_hi], out=out)
        out += self._base[row_lo:row_hi]
        return out


class ExactReadTables(AffineReadTables):
    """Affine tables over exact int64 ``(units, participation)`` state.

    Reproduces :meth:`~repro.backends.exact.ExactLevelSumBackend.
    wordline_currents_batch` bit-for-bit:  both dot products accumulate
    in int64 (order-independent), and the affine map to current units
    ``sep * units + i_min * participation`` is applied per element
    exactly as the native ``_to_current_units`` does — so blocked and
    unblocked kernels, and the native read, all agree to the last bit.
    """

    out_dtype = np.dtype(np.float64)

    def __init__(self, units: np.ndarray, part: np.ndarray, sep: float, i_min: float):
        units = np.asarray(units, dtype=np.int64)
        part = np.asarray(part, dtype=np.int64)
        if units.shape != part.shape or units.ndim != 2:
            raise ValueError(
                f"units/participation must be matching (rows, cols) "
                f"matrices, got {units.shape} and {part.shape}"
            )
        self.rows, self.cols = units.shape
        self._units_t = np.ascontiguousarray(units.T)
        self._part_t = np.ascontiguousarray(part.T)
        self._sep = float(sep)
        self._i_min = float(i_min)

    def prepare_masks(self, masks: np.ndarray, pool: ScratchPool) -> np.ndarray:
        operand = pool.take(masks.shape, np.int64)
        np.copyto(operand, masks)
        return operand

    def currents_block(self, operand, row_lo, row_hi, out, pool):
        n, width = operand.shape[0], row_hi - row_lo
        with pool.borrow((n, width), np.int64) as unit_dots, pool.borrow(
            (n, width), np.int64
        ) as part_dots, pool.borrow((n, width), np.float64) as tmp:
            np.matmul(operand, self._units_t[:, row_lo:row_hi], out=unit_dots)
            np.matmul(operand, self._part_t[:, row_lo:row_hi], out=part_dots)
            # out = sep * units + i_min * part, elementwise in float64 —
            # int64 -> float64 is exact at these magnitudes, so this is
            # the native _to_current_units map term for term.
            np.multiply(unit_dots, self._sep, out=out)
            np.multiply(part_dots, self._i_min, out=tmp)
            out += tmp
        return out
