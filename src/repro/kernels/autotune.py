"""Per-shape kernel selection: measure once, remember the winner.

Which kernel wins depends on the read's shape — tiny batches are
launch-overhead-bound and the BLAS setup can lose to the elementwise
path, large batches are bandwidth-bound and the GEMM wins by an order
of magnitude, and very tall arrays reward the fused row-blocking.
Rather than hard-coding thresholds, :class:`KernelAutotuner` times the
candidate kernels head-to-head the first time each shape class shows
up and records the choice; every later read of that shape class uses
the recorded winner with zero measurement overhead.

Shape classes bucket the batch size to its next power of two (a
micro-batch scheduler produces a spread of nearby sizes that should
share one decision), and the record keeps the measured timings so
``febim bench --json`` can report *why* a kernel was chosen.

The tuner only ever arbitrates between argmax-parity-gated kernels, so
a "wrong" timing decision costs speed, never correctness.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

import numpy as np

from repro.kernels.read import KernelContext, get_kernel


def _batch_bucket(n: int) -> int:
    """Smallest power of two >= n (0 stays 0)."""
    return 1 << (int(n) - 1).bit_length() if n > 0 else 0


class KernelAutotuner:
    """First-use, per-shape kernel selection with a recorded rationale.

    Parameters
    ----------
    candidates:
        Kernel names to race (registry names; ``auto`` is not a
        kernel).  Defaults to the two fast modes — the reference
        kernel is a deliberate candidate too, so a shape where the
        elementwise path wins (single-sample reads on tiny arrays)
        falls back to it.
    trials:
        Timing repetitions per candidate; best run wins (one warm-up
        call per candidate is always paid first so BLAS thread-pool
        spin-up is not billed to the first candidate).
    """

    def __init__(
        self,
        candidates: Sequence[str] = ("reference", "gemm", "fused"),
        trials: int = 1,
    ):
        if not candidates:
            raise ValueError("candidates must be non-empty")
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        # Validate eagerly: a typo should fail at construction.
        for name in candidates:
            get_kernel(name)
        self.candidates = tuple(candidates)
        self.trials = int(trials)
        self._lock = threading.Lock()
        self._choices: dict = {}

    def choose(
        self,
        ctx: KernelContext,
        masks: np.ndarray,
        row_scale=None,
    ) -> str:
        """The kernel name to use for this mask batch's shape class.

        Cached per ``(batch bucket, rows, cols)``; the first call for a
        new shape class races the candidates on the actual batch.  Two
        threads hitting a new shape class simultaneously may both
        measure — the first recorded decision wins, keeping the choice
        stable.
        """
        rows = ctx.tables.rows if ctx.tables is not None else -1
        key = (_batch_bucket(masks.shape[0]), rows, masks.shape[1])
        with self._lock:
            record = self._choices.get(key)
        if record is not None:
            return record["kernel"]

        timings = {}
        for name in self.candidates:
            kernel = get_kernel(name)
            kernel.winners(ctx, masks, row_scale)  # warm-up (untimed)
            best = float("inf")
            for _ in range(self.trials):
                start = time.perf_counter()
                kernel.winners(ctx, masks, row_scale)
                best = min(best, time.perf_counter() - start)
            timings[name] = best
        winner = min(timings, key=timings.get)
        record = {
            "batch_bucket": key[0],
            "rows": key[1],
            "cols": key[2],
            "kernel": winner,
            "timings_us": {
                name: round(seconds * 1e6, 3) for name, seconds in timings.items()
            },
        }
        with self._lock:
            return self._choices.setdefault(key, record)["kernel"]

    def report(self) -> list:
        """Every recorded per-shape decision (JSON-ready dicts)."""
        with self._lock:
            records = list(self._choices.values())
        return sorted(
            records, key=lambda r: (r["batch_bucket"], r["rows"], r["cols"])
        )

    def __repr__(self) -> str:
        return (
            f"KernelAutotuner(candidates={list(self.candidates)}, "
            f"{len(self.report())} shapes tuned)"
        )
