"""Program-and-verify (ISPP-style) write controller.

The paper programs cells *open loop*: each state has a fixed pulse count
(Fig. 4b), so a device's static V_TH offset translates directly into a
read-current error — that is the mechanism behind the Fig. 8(c) accuracy
loss.  Production MLC flows instead use incremental-step pulse
programming with verify reads (ISPP): pulse, read, repeat until the
*measured* current reaches the target.  Closed-loop programming absorbs
most of the device-to-device variation into the pulse count, leaving
only the one-pulse quantisation residual and any read noise.

:class:`ProgramVerifyController` implements that loop on top of
:class:`~repro.crossbar.array.FeFETCrossbar`, with statistics (pulses
spent, residual errors) so the verify-vs-open-loop trade-off — extra
write time/energy for restored accuracy — can be quantified
(`bench_ablations.py`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crossbar.array import FeFETCrossbar
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class ProgrammingStats:
    """Outcome of one verified array-programming pass.

    Attributes
    ----------
    total_pulses:
        Write pulses spent across all programmed cells.
    verify_reads:
        Verify read operations performed.
    max_residual:
        Worst |measured - target| current after programming (amperes).
    unconverged:
        Cells that hit the pulse cap before reaching their target.
    """

    total_pulses: int
    verify_reads: int
    max_residual: float
    unconverged: int


class ProgramVerifyController:
    """Closed-loop (program-and-verify) writes for a FeFET crossbar.

    Parameters
    ----------
    crossbar:
        The array to program (mutated in place).
    tolerance:
        Acceptable undershoot below the target current before stopping
        (amperes); the loop stops at the first read >= target -
        tolerance.  Defaults to 20 %% of the level separation.
    max_pulses_per_cell:
        Per-cell pulse cap (ISPP abort).
    """

    def __init__(
        self,
        crossbar: FeFETCrossbar,
        tolerance: float = None,
        max_pulses_per_cell: int = 400,
    ):
        self.crossbar = crossbar
        sep = crossbar.spec.level_separation()
        if tolerance is None:
            tolerance = 0.2 * sep if sep > 0 else 0.1 * crossbar.spec.i_max
        self.tolerance = check_positive(tolerance, "tolerance")
        self.max_pulses_per_cell = check_positive_int(
            max_pulses_per_cell, "max_pulses_per_cell"
        )

    # ------------------------------------------------------------ primitives
    def _verify_read(self, row: int, col: int) -> float:
        """Read one cell's current including its variation offset."""
        return self.crossbar.cell_current(row, col)

    def program_cell(self, row: int, col: int, level: int) -> dict:
        """Erase and ISPP-program one cell; returns per-cell stats.

        The loop applies single nominal pulses with a verify read after
        each, stopping once the measured current reaches
        ``target - tolerance`` (or the pulse cap).
        """
        xbar = self.crossbar
        if not 0 <= level < xbar.spec.n_levels:
            raise ValueError(
                f"level must lie in 0..{xbar.spec.n_levels - 1}, got {level}"
            )
        target = xbar.spec.current_for_level(level)
        width = xbar._pulse_width
        # Address the *physical* wordline the logical row maps to, so
        # verified writes keep working on arrays with spare-row repairs.
        phys = int(xbar.row_map()[row])

        # Erase this cell (keep the disturb bookkeeping identical to the
        # open-loop path: unselected rows see half-V_w per applied pulse).
        # Rewriting re-establishes the polarisation, so the cell's aging
        # drift resets — same invariant as the open-loop program_cell;
        # without it the verify loop would absorb stale drift into the
        # pulse count and a later clear_vth_drift() would shift the
        # just-verified current off target.
        xbar._acc_time[phys, col] = 0.0
        xbar._vth_drift[phys, col] = 0.0
        xbar.levels[phys, col] = level
        xbar.invalidate_read_cache()

        pulses = 0
        reads = 0
        measured = self._verify_read(row, col)
        reads += 1
        while measured < target - self.tolerance and pulses < self.max_pulses_per_cell:
            xbar._acc_time[phys, col] += width
            disturb = width * xbar._disturb_time_scale
            others = np.arange(xbar._phys_rows) != phys
            xbar._acc_time[others, col] += disturb
            pulses += 1
            measured = self._verify_read(row, col)
            reads += 1
        xbar.write_pulse_total += pulses
        xbar.invalidate_read_cache()
        return {
            "pulses": pulses,
            "reads": reads,
            "residual": abs(measured - target),
            "converged": measured >= target - self.tolerance,
        }

    # --------------------------------------------------------------- arrays
    def program_matrix(self, level_matrix: np.ndarray) -> ProgrammingStats:
        """Verified programming of the whole array (-1 leaves erased)."""
        level_matrix = np.asarray(level_matrix, dtype=int)
        xbar = self.crossbar
        if level_matrix.shape != (xbar.rows, xbar.cols):
            raise ValueError(
                f"level matrix must have shape {(xbar.rows, xbar.cols)}, "
                f"got {level_matrix.shape}"
            )
        if np.any(level_matrix >= xbar.spec.n_levels):
            raise ValueError("level matrix contains out-of-range levels")
        xbar.erase_all()
        total_pulses = 0
        reads = 0
        max_residual = 0.0
        unconverged = 0
        for row in range(xbar.rows):
            for col in range(xbar.cols):
                level = level_matrix[row, col]
                if level < 0:
                    continue
                stats = self.program_cell(row, col, int(level))
                total_pulses += stats["pulses"]
                reads += stats["reads"]
                max_residual = max(max_residual, stats["residual"])
                unconverged += 0 if stats["converged"] else 1
        return ProgrammingStats(
            total_pulses=total_pulses,
            verify_reads=reads,
            max_residual=max_residual,
            unconverged=unconverged,
        )


def reprogram_engine_verified(engine, tolerance: float = None) -> ProgrammingStats:
    """Replace an engine's open-loop programming with verified writes.

    Convenience for studies: takes a fitted
    :class:`~repro.core.engine.FeBiMEngine`, reprograms its crossbar
    closed-loop against the same level matrix and returns the stats.
    """
    controller = ProgramVerifyController(engine.crossbar, tolerance=tolerance)
    return controller.program_matrix(engine.level_matrix)
