"""Multi-tile scaling for many-class Bayesian models.

Fig. 6(c) shows WTA delay/energy growing with the row count: a single
WTA stage stops being attractive beyond a few tens of competing
wordlines.  The standard remedy — and the natural extension of the
paper's "scalable WTA" — is hierarchical winner resolution: partition
the classes across tiles with at most ``max_rows`` wordlines each, let
each tile's local WTA pick a tile-winner, and resolve the tile-winners'
mirrored currents in a second-stage WTA.

:class:`TiledFeBiM` implements that: functionally it reproduces the
flat engine's decisions (each local winner is the true row maximum of
its tile, and the global maximum is one of the local winners — argmax
is associative), while delay follows the *slowest tile + stage 2* and
energy the *sum of tiles + stage 2*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.engine import FeBiMEngine
from repro.core.quantization import QuantizedBayesianModel, UniformQuantizer
from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.timing import DelayModel
from repro.devices.fefet import MultiLevelCellSpec
from repro.devices.variation import VariationModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def _slice_model(
    model: QuantizedBayesianModel, rows: np.ndarray
) -> QuantizedBayesianModel:
    """A sub-model over a subset of classes (tile rows)."""
    return QuantizedBayesianModel(
        likelihood_levels=[t[rows] for t in model.likelihood_levels],
        prior_levels=(
            None if model.prior_levels is None else model.prior_levels[rows]
        ),
        quantizer=UniformQuantizer(
            model.quantizer.n_levels,
            (1.0 - model.quantizer.lo) / np.log(10.0),
        ),
        classes=model.classes[rows],
    )


@dataclass(frozen=True)
class TiledInferenceReport:
    """Circuit-level summary of one hierarchical inference."""

    prediction: int
    tile_winners: np.ndarray
    tile_currents: np.ndarray
    delay: float
    energy: float


class TiledFeBiM:
    """A Bayesian model partitioned across row-limited crossbar tiles.

    Parameters
    ----------
    model:
        The quantised model (any class count).
    max_rows:
        Maximum wordlines per tile (local WTA fan-in limit).
    spec, variation, params, seed:
        Forwarded to every tile's engine.
    """

    def __init__(
        self,
        model: QuantizedBayesianModel,
        max_rows: int = 16,
        spec: Optional[MultiLevelCellSpec] = None,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        seed: RngLike = None,
    ):
        self.max_rows = check_positive_int(max_rows, "max_rows")
        self.model = model
        self.params = params or CircuitParameters()
        rng = ensure_rng(seed)

        k = model.n_classes
        boundaries = list(range(0, k, self.max_rows)) + [k]
        self.tile_rows: List[np.ndarray] = [
            np.arange(boundaries[i], boundaries[i + 1])
            for i in range(len(boundaries) - 1)
        ]
        self.tiles: List[FeBiMEngine] = [
            FeBiMEngine(
                _slice_model(model, rows),
                spec=spec,
                variation=variation,
                params=self.params,
                seed=rng,
            )
            for rows in self.tile_rows
        ]
        self._delay_model = DelayModel(self.params)

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def total_rows(self) -> int:
        return self.model.n_classes

    # ------------------------------------------------------------ inference
    def predict(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Hierarchical MAP predictions for a batch."""
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.ndim == 1:
            evidence_levels = evidence_levels[None, :]
        out = np.empty(evidence_levels.shape[0], dtype=self.model.classes.dtype)
        for i, sample in enumerate(evidence_levels):
            out[i] = self.infer_one(sample).prediction
        return out

    def infer_one(self, evidence_levels: np.ndarray) -> TiledInferenceReport:
        """One hierarchical inference with delay/energy accounting."""
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        tile_winner_currents = np.empty(self.n_tiles)
        tile_winner_rows = np.empty(self.n_tiles, dtype=int)
        tile_delays = np.empty(self.n_tiles)
        tile_energy = 0.0
        for t, engine in enumerate(self.tiles):
            report = engine.infer_one(evidence_levels)
            currents = report.wordline_currents
            local = int(np.argmax(currents))
            tile_winner_rows[t] = self.tile_rows[t][local]
            tile_winner_currents[t] = currents[local]
            tile_delays[t] = report.delay
            tile_energy += report.energy.total

        winner_tile = int(np.argmax(tile_winner_currents))
        prediction = self.model.classes[tile_winner_rows[winner_tile]]

        # Stage 2: a WTA over the tile winners' mirrored currents.  Tiles
        # resolve in parallel; stage 2 starts when the slowest finishes.
        if self.n_tiles > 1:
            ordered = np.sort(tile_winner_currents)
            gap = max(float(ordered[-1] - ordered[-2]), 1e-9 * ordered[-1])
            stage2_delay = (
                self.params.t_base / 2.0
                + self._delay_model.wta_loading(self.n_tiles)
                + self._delay_model.gap_resolution(
                    float(tile_winner_currents.sum()), gap
                )
            )
            stage2_energy = self.n_tiles * (
                self.params.e_mirror_per_row + self.params.e_wta_per_row
            )
        else:
            stage2_delay = 0.0
            stage2_energy = 0.0

        return TiledInferenceReport(
            prediction=int(prediction),
            tile_winners=tile_winner_rows,
            tile_currents=tile_winner_currents,
            delay=float(tile_delays.max() + stage2_delay),
            energy=float(tile_energy + stage2_energy),
        )

    def score(self, evidence_levels: np.ndarray, y: np.ndarray) -> float:
        """Hierarchical classification accuracy."""
        return float(np.mean(self.predict(evidence_levels) == np.asarray(y)))

    def flat_reference(self, seed: RngLike = None) -> FeBiMEngine:
        """A single flat engine over the same model (for comparisons)."""
        return FeBiMEngine(self.model, params=self.params, seed=seed)
