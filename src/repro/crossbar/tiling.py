"""Multi-tile scaling for many-class Bayesian models.

Fig. 6(c) shows WTA delay/energy growing with the row count: a single
WTA stage stops being attractive beyond a few tens of competing
wordlines.  The standard remedy — and the natural extension of the
paper's "scalable WTA" — is hierarchical winner resolution: partition
the classes across tiles with at most ``max_rows`` wordlines each, let
each tile's local WTA pick a tile-winner, and resolve the tile-winners'
mirrored currents in a second-stage WTA.

:class:`TiledFeBiM` implements that: functionally it reproduces the
flat engine's decisions (each local winner is the true row maximum of
its tile, and the global maximum is one of the local winners — argmax
is associative), while delay follows the *slowest tile + stage 2* and
energy the *sum of tiles + stage 2*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.engine import FeBiMEngine
from repro.core.quantization import QuantizedBayesianModel
from repro.crossbar.parameters import CircuitParameters
from repro.devices.fefet import MultiLevelCellSpec
from repro.devices.variation import VariationModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def _slice_model(
    model: QuantizedBayesianModel, rows: np.ndarray
) -> QuantizedBayesianModel:
    """A sub-model over a subset of classes (tile rows).

    The tile shares the parent's quantiser object: a row slice changes
    which classes compete, not how their probabilities were quantised,
    so re-deriving the quantiser from its own range would only invite
    round-trip drift.
    """
    return QuantizedBayesianModel(
        likelihood_levels=[t[rows] for t in model.likelihood_levels],
        prior_levels=(
            None if model.prior_levels is None else model.prior_levels[rows]
        ),
        quantizer=model.quantizer,
        classes=model.classes[rows],
    )


@dataclass(frozen=True)
class TiledInferenceReport:
    """Circuit-level summary of one hierarchical inference."""

    prediction: int
    tile_winners: np.ndarray
    tile_currents: np.ndarray
    delay: float
    energy: float


@dataclass(frozen=True)
class TiledBatchEnergy:
    """Per-sample total energy of a tiled batch (joules).

    The hierarchical path reports a single scalar per inference (tiles +
    stage 2), so unlike the flat engine's
    :class:`~repro.crossbar.energy.BatchEnergyBreakdown` there is no
    array/sensing split — only ``total``, kept under the same attribute
    name so serving code can treat both report flavours uniformly.
    """

    total: np.ndarray

    def __len__(self) -> int:
        return self.total.shape[0]


@dataclass(frozen=True)
class TiledBatchInferenceReport:
    """Batch of hierarchical inferences, one stacked report per sample.

    Mirrors :class:`~repro.core.engine.BatchInferenceReport`'s
    ``predictions`` / ``delay`` / ``energy.total`` surface so the
    serving scheduler can coalesce requests onto a
    :class:`TiledFeBiM` exactly as onto a flat engine.
    """

    predictions: np.ndarray
    tile_winners: np.ndarray
    tile_currents: np.ndarray
    delay: np.ndarray
    energy: TiledBatchEnergy

    def __len__(self) -> int:
        return self.predictions.shape[0]

    def sample(self, i: int) -> TiledInferenceReport:
        """The ``i``-th sample's result as a scalar report."""
        return TiledInferenceReport(
            prediction=int(self.predictions[i]),
            tile_winners=self.tile_winners[i],
            tile_currents=self.tile_currents[i],
            delay=float(self.delay[i]),
            energy=float(self.energy.total[i]),
        )


class TiledFeBiM:
    """A Bayesian model partitioned across row-limited crossbar tiles.

    Parameters
    ----------
    model:
        The quantised model (any class count).
    max_rows:
        Maximum wordlines per tile (local WTA fan-in limit).
    spec, variation, params, seed:
        Forwarded to every tile's engine.
    backend:
        Array technology (registry name) every tile's engine is built
        on; ``"fefet"`` by default.  Tiles of one hierarchy always
        share a technology — heterogeneous-tile layouts are the next
        step this abstraction enables, not yet taken.

    Notes
    -----
    Per-tile reads and costs come from the backend, and so does the
    *stage-2* resolution cost: the
    :meth:`~repro.backends.base.ArrayBackend.stage2_cost` hook charges
    each technology's own second-stage circuit (the paper's analog
    mirrored-current WTA on ``fefet`` — bit-identical to the
    pre-hook hard-coded model — digital compare trees on the exact
    backends).  Decisions are technology-agnostic either way: argmax
    is argmax.
    """

    def __init__(
        self,
        model: QuantizedBayesianModel,
        max_rows: int = 16,
        spec: Optional[MultiLevelCellSpec] = None,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        seed: RngLike = None,
        backend: str = "fefet",
        backend_options: Optional[dict] = None,
        kernel: Optional[str] = None,
    ):
        self.max_rows = check_positive_int(max_rows, "max_rows")
        self.model = model
        self.params = params or CircuitParameters()
        self.backend_name = str(backend)
        self.backend_options = dict(backend_options or {})
        # One kernel selection for every tile (each tile engine still
        # autotunes its own shape under "auto" — tiles have different
        # row counts, so per-tile choices can legitimately differ).
        self.kernel = kernel
        # Kept for tile retirement: a retired tile is rebuilt with the
        # same spec/variation/backend configuration on fresh hardware.
        self._spec = spec
        self._variation = variation
        rng = ensure_rng(seed)

        k = model.n_classes
        boundaries = list(range(0, k, self.max_rows)) + [k]
        self.tile_rows: List[np.ndarray] = [
            np.arange(boundaries[i], boundaries[i + 1])
            for i in range(len(boundaries) - 1)
        ]
        self.tiles: List[FeBiMEngine] = [
            FeBiMEngine(
                _slice_model(model, rows),
                spec=spec,
                variation=variation,
                params=self.params,
                seed=rng,
                backend=self.backend_name,
                backend_options=self.backend_options,
                kernel=self.kernel,
            )
            for rows in self.tile_rows
        ]

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def total_rows(self) -> int:
        return self.model.n_classes

    @property
    def n_features(self) -> int:
        """Evidence width a request must have (serving-layer contract)."""
        return self.model.n_features

    # ----------------------------------------------------------- reliability
    def retire_tile(self, index: int, seed: RngLike = None) -> FeBiMEngine:
        """Replace a tile with freshly programmed hardware.

        The tile-granular repair action of the reliability subsystem: a
        tile whose array has accumulated uncorrectable faults is swapped
        for a new :class:`FeBiMEngine` over the same class slice (same
        model, spec and variation configuration, new variation draw from
        ``seed``).  Functionally invisible — the hierarchy's decisions
        depend only on each tile being a faithful local argmax.

        Returns the replacement engine.
        """
        if not 0 <= index < self.n_tiles:
            raise IndexError(
                f"tile index {index} outside 0..{self.n_tiles - 1}"
            )
        replacement = FeBiMEngine(
            _slice_model(self.model, self.tile_rows[index]),
            spec=self._spec,
            variation=self._variation,
            params=self.params,
            seed=seed,
            backend=self.backend_name,
            backend_options=self.backend_options,
            kernel=self.kernel,
        )
        self.tiles[index] = replacement
        return replacement

    # ------------------------------------------------------------ inference
    def predict(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Hierarchical MAP predictions for a batch."""
        return self.infer_batch(evidence_levels).predictions

    def infer_batch(self, evidence_levels: np.ndarray) -> TiledBatchInferenceReport:
        """Batched hierarchical inference with per-sample reporting.

        Accepts ``(n_samples, n_features)`` evidence levels (a 1-D
        sample is a batch of one).  Stage-2 resolution is inherently
        per-sample — each sample's tile winners compete in their own
        second-stage WTA — so this stacks :meth:`infer_one` over the
        batch rather than pretending the hierarchy vectorises; the
        point is the uniform batch-report interface, which lets the
        serving scheduler route requests to flat and tiled engines
        through one code path.
        """
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.ndim == 1:
            evidence_levels = evidence_levels[None, :]
        n = evidence_levels.shape[0]
        predictions = np.empty(n, dtype=self.model.classes.dtype)
        tile_winners = np.empty((n, self.n_tiles), dtype=int)
        tile_currents = np.empty((n, self.n_tiles))
        delay = np.empty(n)
        energy = np.empty(n)
        for i, sample in enumerate(evidence_levels):
            report = self.infer_one(sample)
            predictions[i] = report.prediction
            tile_winners[i] = report.tile_winners
            tile_currents[i] = report.tile_currents
            delay[i] = report.delay
            energy[i] = report.energy
        return TiledBatchInferenceReport(
            predictions=predictions,
            tile_winners=tile_winners,
            tile_currents=tile_currents,
            delay=delay,
            energy=TiledBatchEnergy(total=energy),
        )

    def infer_one(self, evidence_levels: np.ndarray) -> TiledInferenceReport:
        """One hierarchical inference with delay/energy accounting."""
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        tile_winner_currents = np.empty(self.n_tiles)
        tile_winner_rows = np.empty(self.n_tiles, dtype=int)
        tile_delays = np.empty(self.n_tiles)
        tile_energy = 0.0
        for t, engine in enumerate(self.tiles):
            report = engine.infer_one(evidence_levels)
            currents = report.wordline_currents
            local = int(np.argmax(currents))
            tile_winner_rows[t] = self.tile_rows[t][local]
            tile_winner_currents[t] = currents[local]
            tile_delays[t] = report.delay
            tile_energy += report.energy.total

        winner_tile = int(np.argmax(tile_winner_currents))
        prediction = self.model.classes[tile_winner_rows[winner_tile]]

        # Stage 2: winner resolution over the tile winners, charged by
        # the technology's own circuit (backend ``stage2_cost`` hook —
        # analog mirrored-current WTA on fefet, digital compare trees
        # on the exact backends).  Tiles resolve in parallel; stage 2
        # starts when the slowest finishes.
        if self.n_tiles > 1:
            stage2_delay, stage2_energy = self.tiles[0].backend.stage2_cost(
                tile_winner_currents
            )
        else:
            stage2_delay = 0.0
            stage2_energy = 0.0

        return TiledInferenceReport(
            prediction=int(prediction),
            tile_winners=tile_winner_rows,
            tile_currents=tile_winner_currents,
            delay=float(tile_delays.max() + stage2_delay),
            energy=float(tile_energy + stage2_energy),
        )

    def score(self, evidence_levels: np.ndarray, y: np.ndarray) -> float:
        """Hierarchical classification accuracy."""
        return float(np.mean(self.predict(evidence_levels) == np.asarray(y)))

    def flat_reference(self, seed: RngLike = None) -> FeBiMEngine:
        """A single flat engine over the same model (for comparisons)."""
        return FeBiMEngine(
            self.model,
            params=self.params,
            seed=seed,
            backend=self.backend_name,
            backend_options=self.backend_options,
            kernel=self.kernel,
        )
