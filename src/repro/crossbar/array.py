"""The core FeFET crossbar array (Sec. 3.2, Fig. 3).

One multi-level FeFET per cell; drains share a wordline (WL) per row,
gates share a bitline (BL) per column, sources ground to a sourceline.
Programming drives pulse trains onto a selected row's cells (half-``V_w``
bias on unselected rows, whose tiny residual polarisation gain is
*modelled*, not ignored); inference activates one column per evidence
block and accumulates the activated cells' currents along each WL.

The implementation is vectorised: instead of 2-D lists of
:class:`~repro.devices.fefet.FeFET` objects, the array stores each cell's
accumulated switching-time exposure and static V_TH offset as matrices
and evaluates polarisation -> V_TH -> current with numpy.  A template
:class:`FeFET` supplies the shared device physics.

Reliability state and the mutation API
--------------------------------------

Beyond the programmed state, the array carries the lifetime state the
reliability subsystem (:mod:`repro.reliability`) manipulates:

* an **aging drift matrix** (:meth:`apply_vth_drift`) — retention V_TH
  drift accumulated on top of the static manufacturing offsets, reset
  per cell when the cell is reprogrammed (a write re-establishes the
  polarisation) and wholesale by :meth:`erase_all`;
* **stuck-at fault masks** (:meth:`inject_stuck_faults`) — hard defects
  that pin a cell's read current regardless of its gate bias and that
  survive erase/reprogram (only remapping can route around them);
* **spare physical rows** (``spare_rows`` + :meth:`remap_row`) — the
  array allocates ``rows + spare_rows`` physical wordlines and keeps a
  logical->physical row map, so a faulty row can be remapped onto fresh
  hardware without the rest of the stack noticing: every public matrix
  and read stays in logical ``(rows, cols)`` coordinates;
* a **swappable template** (:meth:`set_template`) — endurance wear
  narrows the memory window by replacing the shared device physics.

Every one of these mutators — like every in-tree write — routes through
:meth:`invalidate_read_cache`, so the batched read path can never serve
stale per-cell current matrices after external state mutation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.crossbar.parameters import CircuitParameters
from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.kernels.read import reference_cell_currents, reference_wordline_currents
from repro.kernels.scratch import default_pool
from repro.devices.preisach import _lognormal_cdf
from repro.devices.programming import PulseProgrammer
from repro.devices.variation import VariationModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

#: Peak elements per dense cell tensor in a noisy batched read (~8 MB
#: of float64); the batch is blocked over samples to stay under it.
_NOISY_BLOCK_ELEMS = 1 << 20


class FeFETCrossbar:
    """A rows x cols array of multi-level FeFET cells.

    Parameters
    ----------
    rows, cols:
        Logical array dimensions: rows = events/classes (wordlines),
        cols = prior + likelihood columns (bitlines).
    spec:
        Multi-level cell specification (levels <-> target currents).
    template:
        Template device defining the shared physics; defaults to the
        calibrated :class:`FeFET`.
    variation:
        Device-to-device variation model; offsets are drawn once at
        construction (they are static manufacturing variation).
    params:
        Circuit operating point.
    seed:
        RNG seed for the variation draw.
    spare_rows:
        Extra physical wordlines manufactured for repair; erased and
        unmapped until :meth:`remap_row` routes a faulty logical row
        onto one.  Zero (the default) reproduces the plain array
        bit-for-bit.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        spec: Optional[MultiLevelCellSpec] = None,
        template: Optional[FeFET] = None,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        seed: RngLike = None,
        spare_rows: int = 0,
    ):
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")
        if int(spare_rows) < 0:
            raise ValueError(f"spare_rows must be >= 0, got {spare_rows}")
        self.spare_rows = int(spare_rows)
        self.spec = spec or MultiLevelCellSpec()
        self.variation = variation or VariationModel()
        self.params = params or CircuitParameters()
        self._rng = ensure_rng(seed)

        # Read-path cache: the per-cell (I_on, I_off) matrices depend only
        # on the programmed state, so repeated (batched) reads between
        # writes reuse them.  ``_state_version`` invalidates the cache;
        # every mutation of the array state must bump it.
        self._state_version = 0
        self._read_cache = None
        self.set_template(template or FeFET())

        # Per-cell state, stored over the *physical* rows (logical rows
        # plus spares): accumulated equivalent switching time (s), the
        # static V_TH offset, the aging drift, the programmed level
        # (-1 = erased) and the stuck-at fault masks.
        phys = self._phys_rows
        self._acc_time = np.zeros((phys, self.cols))
        self._vth_offsets = self.variation.sample_offsets((phys, self.cols), self._rng)
        self._vth_drift = np.zeros((phys, self.cols))
        self.levels = np.full((phys, self.cols), -1, dtype=int)
        self._stuck_on = np.zeros((phys, self.cols), dtype=bool)
        self._stuck_off = np.zeros((phys, self.cols), dtype=bool)
        self._has_faults = False
        self._row_map = np.arange(self.rows)
        self._next_spare = self.rows
        self.write_pulse_total = 0

    # ------------------------------------------------------------- properties
    @property
    def _phys_rows(self) -> int:
        return self.rows + self.spare_rows

    @property
    def state_version(self) -> int:
        """Monotone counter bumped by every state mutation.

        The public handle for cache-coherence checks: external code that
        snapshots derived read state can compare versions instead of
        guessing whether the array changed underneath it.
        """
        return self._state_version

    @property
    def spare_rows_free(self) -> int:
        """Spare physical rows not yet consumed by :meth:`remap_row`."""
        return self._phys_rows - self._next_spare

    def row_map(self) -> np.ndarray:
        """Logical -> physical wordline map (copy), identity until repairs."""
        return self._row_map.copy()

    # ------------------------------------------------------------- programming
    def erase_all(self) -> None:
        """Full-array erase (block erase before (re)programming).

        Clears the programmed state *and* the accumulated retention
        drift — an erase/reprogram re-establishes every cell's
        polarisation.  Stuck-at fault masks are hardware defects and
        survive.
        """
        self._acc_time.fill(0.0)
        self._vth_drift.fill(0.0)
        self.levels.fill(-1)
        self.invalidate_read_cache()

    def program_cell(self, row: int, col: int, level: int) -> None:
        """Erase and program one cell to a discrete level.

        Applies the level's pulse train to the selected cell and the
        corresponding half-``V_w`` disturb exposure to every *other*
        physical row's cell on the same column (the paper's
        write-inhibit scheme; spare rows share the column, so they see
        the disturb too).  Reprogramming resets the cell's retention
        drift.
        """
        self._check_cell(row, col)
        if not 0 <= level < self.spec.n_levels:
            raise ValueError(
                f"level must lie in 0..{self.spec.n_levels - 1}, got {level}"
            )
        phys = int(self._row_map[row])
        n_pulses = int(self._level_pulses[level])
        self._acc_time[phys, col] = n_pulses * self._pulse_width
        self._vth_drift[phys, col] = 0.0
        self.levels[phys, col] = level
        self.write_pulse_total += n_pulses
        # Disturb: unselected rows on this column accumulate equivalent
        # exposure at V_w/2, scaled by the Merz-law equivalence.
        disturb = n_pulses * self._pulse_width * self._disturb_time_scale
        others = np.arange(self._phys_rows) != phys
        self._acc_time[others, col] += disturb
        self.invalidate_read_cache()

    def program_matrix(self, level_matrix: np.ndarray) -> None:
        """Program the whole array from a level matrix (-1 leaves erased)."""
        level_matrix = np.asarray(level_matrix, dtype=int)
        if level_matrix.shape != (self.rows, self.cols):
            raise ValueError(
                f"level matrix must have shape {(self.rows, self.cols)}, "
                f"got {level_matrix.shape}"
            )
        if np.any(level_matrix >= self.spec.n_levels):
            raise ValueError("level matrix contains out-of-range levels")
        self.erase_all()
        for row in range(self.rows):
            for col in range(self.cols):
                level = level_matrix[row, col]
                if level >= 0:
                    self.program_cell(row, col, int(level))

    # ------------------------------------------------------------------ state
    def _check_cell(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(
                f"cell ({row}, {col}) outside array {self.rows}x{self.cols}"
            )

    def _polarization_physical(self) -> np.ndarray:
        return _lognormal_cdf(self._acc_time, self._median_time, self._sigma)

    def _vth_physical(self) -> np.ndarray:
        pol = self._polarization_physical()
        ideal = self.template.vth_high - pol * self.template.memory_window
        return ideal + self._vth_offsets + self._vth_drift

    def polarization_matrix(self) -> np.ndarray:
        """Switched domain fraction of every logical cell, (rows, cols)."""
        return self._polarization_physical()[self._row_map]

    def vth_matrix(self) -> np.ndarray:
        """Threshold voltage of every logical cell including variation
        offsets and accumulated aging drift."""
        return self._vth_physical()[self._row_map]

    def vth_drift_matrix(self) -> np.ndarray:
        """Accumulated aging V_TH drift per logical cell (volts, copy)."""
        return self._vth_drift[self._row_map].copy()

    def programmed_levels(self) -> np.ndarray:
        """Programmed level of every logical cell (-1 = erased; copy)."""
        return self.levels[self._row_map].copy()

    def cell_current(self, row: int, col: int, v_gate: Optional[float] = None) -> float:
        """Read current of one cell (amperes), stuck faults included."""
        self._check_cell(row, col)
        phys = int(self._row_map[row])
        if self._stuck_off[phys, col]:
            return 0.0
        if self._stuck_on[phys, col]:
            return self._stuck_on_current()
        v_gate = self.params.v_on if v_gate is None else v_gate
        return float(
            self.template.idvg.current(v_gate, self._vth_physical()[phys, col])
        )

    # --------------------------------------------------------- mutation API
    def invalidate_read_cache(self) -> None:
        """Drop the cached (I_on, I_off) read matrices.

        The public invalidation hook: called by every in-tree mutation
        of the array state; code that pokes ``_acc_time`` /
        ``_vth_offsets`` directly must call this itself before the next
        read.
        """
        self._state_version += 1
        self._read_cache = None

    def apply_vth_drift(self, delta: np.ndarray) -> None:
        """Accumulate an aging V_TH shift (volts) onto the logical cells.

        The entry point for retention models: ``delta`` has logical
        shape ``(rows, cols)`` and lands on whichever physical rows the
        logical rows are currently mapped to.  Drift is tracked apart
        from the static manufacturing offsets so a refresh (reprogram)
        can clear it without touching the variation draw.
        """
        delta = np.asarray(delta, dtype=float)
        if delta.shape != (self.rows, self.cols):
            raise ValueError(
                f"drift delta must have shape {(self.rows, self.cols)}, "
                f"got {delta.shape}"
            )
        self._vth_drift[self._row_map] += delta
        self.invalidate_read_cache()

    def clear_vth_drift(self) -> None:
        """Zero the accumulated aging drift (all physical rows)."""
        self._vth_drift.fill(0.0)
        self.invalidate_read_cache()

    def inject_stuck_faults(
        self,
        stuck_on: Optional[np.ndarray] = None,
        stuck_off: Optional[np.ndarray] = None,
    ) -> None:
        """Mark logical cells as hard stuck-at defects.

        ``stuck_on`` cells conduct at the fully switched on-current
        regardless of gate bias (shorted cell / BL driver stuck
        active); ``stuck_off`` cells never conduct (open wordline
        contact).  Masks are boolean ``(rows, cols)`` and accumulate
        (OR) with earlier injections; where both apply, stuck-off wins.
        Faults survive erase and reprogram — only :meth:`remap_row` can
        route a read around them.
        """
        for name, mask in (("stuck_on", stuck_on), ("stuck_off", stuck_off)):
            if mask is None:
                continue
            mask = np.asarray(mask)
            if mask.shape != (self.rows, self.cols) or mask.dtype != bool:
                raise ValueError(
                    f"{name} mask must be boolean with shape "
                    f"{(self.rows, self.cols)}, got {mask.dtype} {mask.shape}"
                )
            target = self._stuck_on if name == "stuck_on" else self._stuck_off
            target[self._row_map] |= mask
        self._has_faults = bool(self._stuck_on.any() or self._stuck_off.any())
        self.invalidate_read_cache()

    def clear_stuck_faults(self) -> None:
        """Remove every stuck-at fault (simulator reset, not a repair)."""
        self._stuck_on.fill(False)
        self._stuck_off.fill(False)
        self._has_faults = False
        self.invalidate_read_cache()

    def stuck_fault_masks(self) -> Tuple[np.ndarray, np.ndarray]:
        """Logical ``(stuck_on, stuck_off)`` boolean masks (copies)."""
        return (
            self._stuck_on[self._row_map].copy(),
            self._stuck_off[self._row_map].copy(),
        )

    def stuck_fault_count(self) -> int:
        """Number of logical cells pinned by a stuck-at fault."""
        on, off = self._stuck_on[self._row_map], self._stuck_off[self._row_map]
        return int(np.count_nonzero(on | off))

    def set_template(self, template: FeFET) -> None:
        """Swap the shared device physics (e.g. an endurance-aged device).

        Re-derives every template-dependent constant (switching-time
        scales, disturb equivalence, the level -> pulse-count table) and
        invalidates the read cache; the accumulated switching-time state
        is reinterpreted under the new physics, which is exactly the
        wear semantics (the stored charge stays, the window moves).

        The pulse table is rebuilt *lazily*: a heavily fatigued window
        may no longer reach the spec's top-level current, which must
        not stop the array from being read — it only (correctly) makes
        the next programming attempt fail.
        """
        self.template = template
        layer = template.layer
        self._sigma = layer.sigma
        self._median_time = layer.median_switching_time(layer.nominal_amplitude)
        self._pulse_width = layer.nominal_width
        # Merz-law equivalence factor for half-V_w disturb exposure.
        disturb_median = layer.median_switching_time(self.params.v_disturb)
        self._disturb_time_scale = self._median_time / disturb_median
        self._programmer = PulseProgrammer(template, self.spec)
        self._level_pulses_cache = None
        self.invalidate_read_cache()

    @property
    def _level_pulses(self) -> np.ndarray:
        if self._level_pulses_cache is None:
            self._level_pulses_cache = np.array(
                [cfg.n_pulses for cfg in self._programmer.build_table()],
                dtype=int,
            )
        return self._level_pulses_cache

    def remap_row(self, row: int) -> int:
        """Route a faulty logical row onto a fresh spare physical row.

        Replays the retired row's programmed levels onto the next free
        spare (a real write pass: pulses and column disturb included),
        erases the old physical row and retargets the row map.  The old
        row's stuck-at defects stay on its physical cells — harmless,
        since no logical read addresses them any more.

        Returns the new physical row index; raises ``RuntimeError`` when
        the spare pool is exhausted.
        """
        self._check_cell(row, 0)
        if self._next_spare >= self._phys_rows:
            raise RuntimeError(
                f"no spare rows left ({self.spare_rows} manufactured, "
                f"all consumed)"
            )
        old = int(self._row_map[row])
        new = self._next_spare
        self._next_spare += 1
        row_levels = self.levels[old].copy()
        self._acc_time[old] = 0.0
        self._vth_drift[old] = 0.0
        self.levels[old] = -1
        self._row_map[row] = new
        for col in range(self.cols):
            if row_levels[col] >= 0:
                self.program_cell(row, col, int(row_levels[col]))
        self.invalidate_read_cache()
        return new

    # ----------------------------------------------------------- fault overlay
    def _stuck_on_current(self) -> float:
        """Read current of a stuck-on cell: fully switched, gate moot."""
        return float(
            self.template.idvg.current(self.params.v_on, self.template.vth_low)
        )

    def _apply_stuck_physical(self, currents: np.ndarray) -> np.ndarray:
        """Pin stuck cells' currents on a physically indexed matrix.

        ``currents`` has trailing shape ``(phys_rows, cols)`` (leading
        batch axes broadcast).  Stuck-off is applied last so it wins
        where both defects were injected.
        """
        if not self._has_faults:
            return currents
        currents = np.where(self._stuck_on, self._stuck_on_current(), currents)
        return np.where(self._stuck_off, 0.0, currents)

    # ----------------------------------------------------------------- reads
    def read_current_matrices(self) -> tuple:
        """Per-cell read currents ``(I_on, I_off)`` for the current state.

        ``I_on[r, c]`` is logical cell (r, c)'s drain current with its
        gate at ``V_on`` (activated column), ``I_off[r, c]`` with the
        gate at ``V_off`` (inhibited column leakage).  Since a read
        never alters the programmed state, the pair is cached until the
        next state mutation — the reuse that makes repeated batched
        reads O(rows x cols) cheap arithmetic instead of per-read
        device-physics evaluation.  Stuck-at faults and aging drift are
        folded in here, so every consumer of the cache sees them.
        """
        if self._read_cache is None or self._read_cache[0] != self._state_version:
            vth = self._vth_physical()
            i_on = self._apply_stuck_physical(
                self.template.idvg.current(self.params.v_on, vth)
            )
            i_off = self._apply_stuck_physical(
                self.template.idvg.current(self.params.v_off, vth)
            )
            self._read_cache = (
                self._state_version,
                i_on[self._row_map],
                i_off[self._row_map],
            )
        return self._read_cache[1], self._read_cache[2]

    def current_matrix(
        self, active_cols: Optional[np.ndarray] = None, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Per-cell currents with activated/inhibited gate biasing.

        Parameters
        ----------
        active_cols:
            Boolean mask of activated columns (``V_on`` gates); inhibited
            columns get ``V_off``.  ``None`` activates everything.
        read_noise_seed:
            Seed for the optional per-read noise draw (only drawn when the
            variation model has ``sigma_read > 0``).
        """
        mask = self._column_mask(active_cols)
        if self.variation.sigma_read > 0.0:
            v_gates = np.where(mask, self.params.v_on, self.params.v_off)
            rng = ensure_rng(read_noise_seed) if read_noise_seed is not None else self._rng
            vth = self._vth_physical() + self.variation.sample_read_noise(
                (self._phys_rows, self.cols), rng
            )
            currents = self._apply_stuck_physical(
                self.template.idvg.current(v_gates[None, :], vth)
            )
            return currents[self._row_map]
        i_on, i_off = self.read_current_matrices()
        return np.where(mask[None, :], i_on, i_off)

    def wordline_currents(
        self, active_cols: Optional[np.ndarray] = None, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Accumulated I_WL per row — the in-memory posterior (Eq. 5)."""
        return self.current_matrix(active_cols, read_noise_seed).sum(axis=1)

    # ------------------------------------------------------------ batch reads
    def current_matrix_batch(
        self, active_cols: np.ndarray, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Per-cell currents for a batch of activation masks.

        Parameters
        ----------
        active_cols:
            Boolean masks, shape ``(n_samples, cols)`` — one read cycle
            per row of the mask matrix.
        read_noise_seed:
            Seed for the per-read noise.  One ``(n, rows, cols)`` draw
            covers the whole batch; because numpy Generators fill arrays
            in C order from a single stream, the batch draw is
            *bit-identical* to ``n`` successive per-sample draws from
            the same Generator.  Note the equivalence is with *one
            stream threaded through the loop*: passing an explicit int
            seed here draws the whole batch from one fresh stream,
            whereas re-passing that int to ``n`` separate per-sample
            calls would re-seed per call and give every sample identical
            noise.

        Returns
        -------
        Currents of shape ``(n_samples, rows, cols)`` (amperes).

        Notes
        -----
        The noise-free path selects per cell between the cached
        ``(I_on, I_off)`` read matrices, so the whole batch costs one
        masked selection + reduction — no per-sample device-physics
        evaluation.  The selection is elementwise (not a BLAS matmul) on
        purpose: it keeps every sample's floating-point result
        bit-identical to a single-sample read.
        """
        masks = self._column_mask_batch(active_cols)
        if self.variation.sigma_read > 0.0:
            rng = ensure_rng(read_noise_seed) if read_noise_seed is not None else self._rng
            out = np.empty((masks.shape[0], self.rows, self.cols))
            for lo, hi, block in self._noisy_read_blocks(masks, rng):
                out[lo:hi] = block
            return out
        i_on, i_off = self.read_current_matrices()
        return reference_cell_currents(i_on, i_off, masks)

    def wordline_currents_batch(
        self, active_cols: np.ndarray, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Accumulated I_WL for a batch of masks, shape ``(n_samples, rows)``.

        One read cycle per mask row, evaluated as a single vectorised
        pass over the cell-current matrices; equals stacking
        :meth:`wordline_currents` over the masks bit-for-bit (for noisy
        reads, with one RNG stream threaded through the loop — see
        :meth:`current_matrix_batch` on seed semantics).  The noisy
        path reduces block by block, so its peak footprint is one
        sample block's cell tensor, never the whole batch's.
        """
        masks = self._column_mask_batch(active_cols)
        if self.variation.sigma_read > 0.0:
            rng = ensure_rng(read_noise_seed) if read_noise_seed is not None else self._rng
            out = np.empty((masks.shape[0], self.rows))
            for lo, hi, block in self._noisy_read_blocks(masks, rng):
                np.sum(block, axis=2, out=out[lo:hi])
            return out
        i_on, i_off = self.read_current_matrices()
        return reference_wordline_currents(i_on, i_off, masks)

    def _noisy_read_blocks(self, masks, rng):
        """Yield ``(lo, hi, currents)`` sample blocks of a noisy read.

        The dense per-cell evaluation — gate voltages, the per-read
        noise draw, polarisation -> V_TH -> current — allocates several
        ``(block, phys_rows, cols)`` tensors; blocking over samples
        caps that peak at :data:`_NOISY_BLOCK_ELEMS` elements per
        tensor regardless of batch size, with the V_TH scratch coming
        from the shared kernel pool.  Bit-identity with the unblocked
        draw holds because numpy Generators fill arrays in C order from
        a single stream: consecutive block draws concatenate to exactly
        the full-batch draw.
        """
        n = masks.shape[0]
        cells = self._phys_rows * self.cols
        block = max(1, min(n, _NOISY_BLOCK_ELEMS // max(cells, 1)))
        vth_static = self._vth_physical()
        pool = default_pool()
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            noise = self.variation.sample_read_noise(
                (hi - lo, self._phys_rows, self.cols), rng
            )
            v_gates = np.where(masks[lo:hi], self.params.v_on, self.params.v_off)
            with pool.borrow((hi - lo, self._phys_rows, self.cols)) as vth:
                np.add(vth_static[None, :, :], noise, out=vth)
                currents = self._apply_stuck_physical(
                    self.template.idvg.current(v_gates[:, None, :], vth)
                )
            yield lo, hi, currents[:, self._row_map, :]

    def _column_mask_batch(self, active_cols: np.ndarray) -> np.ndarray:
        masks = np.asarray(active_cols)
        if masks.ndim != 2 or masks.shape[1] != self.cols:
            raise ValueError(
                f"active_cols batch must have shape (n, {self.cols}), "
                f"got {masks.shape}"
            )
        if masks.dtype != bool:
            raise ValueError("active_cols batch must be a boolean mask matrix")
        return masks

    def _column_mask(self, active_cols: Optional[np.ndarray]) -> np.ndarray:
        if active_cols is None:
            return np.ones(self.cols, dtype=bool)
        mask = np.asarray(active_cols)
        if mask.dtype != bool:
            # Accept an iterable of column indices as well.
            idx = np.asarray(active_cols, dtype=int)
            if idx.ndim != 1:
                raise ValueError("active_cols must be a bool mask or index list")
            if np.any(idx < 0) or np.any(idx >= self.cols):
                raise ValueError("active column index out of range")
            mask = np.zeros(self.cols, dtype=bool)
            mask[idx] = True
        elif mask.shape != (self.cols,):
            raise ValueError(
                f"active_cols mask must have shape ({self.cols},), got {mask.shape}"
            )
        return mask

    # --------------------------------------------------------------- health
    def bist_scan(self, tolerance: Optional[float] = None) -> np.ndarray:
        """Behavioural BIST: flag cells whose read misses their target.

        One all-columns-activated verify read from the cached
        noise-free matrices (a maintenance scan must neither flag
        phantom faults out of per-read noise nor advance the array's
        RNG stream), compared against the per-cell expectation: the
        spec's target current for programmed cells, the erased-state
        leakage for unprogrammed ones.  Returns a boolean logical
        ``(rows, cols)`` map of cells outside ``tolerance`` (default
        40 % of the level separation — wide enough to pass programming
        residuals and benign drift, tight enough to catch stuck cells
        and dead lines).

        The single source of truth for the FeFET scan: both
        :meth:`repro.backends.fefet.FeFETBackend.bist_scan` and
        :func:`repro.reliability.mitigation.scan_faulty_cells`
        delegate here.
        """
        spec = self.spec
        if tolerance is None:
            tolerance = spec.verify_tolerance()
        measured = self.read_current_matrices()[0]
        levels = self.programmed_levels()
        erased_current = float(
            self.template.idvg.current(self.params.v_on, self.template.vth_high)
        )
        expected = np.full(levels.shape, erased_current)
        programmed = levels >= 0
        if programmed.any():
            expected[programmed] = spec.level_currents()[levels[programmed]]
        return np.abs(measured - expected) > tolerance

    # -------------------------------------------------------------- metrics
    def ideal_current_for_level(self, level: int) -> float:
        """The spec's target current for a level (amperes)."""
        return self.spec.current_for_level(level)

    def max_disturb_shift(self) -> float:
        """Largest |V_TH drift| due to accumulated write disturb (volts).

        Computed against a disturb-free reference; the half-bias scheme
        should keep this orders of magnitude below a level's V_TH step.
        """
        programmed = self.levels >= 0
        if not programmed.any():
            return 0.0
        clean_time = np.where(
            programmed, self._level_pulses[np.maximum(self.levels, 0)] * self._pulse_width, 0.0
        )
        pol_clean = _lognormal_cdf(clean_time, self._median_time, self._sigma)
        pol_actual = self._polarization_physical()
        return float(
            np.max(np.abs(pol_actual - pol_clean)) * self.template.memory_window
        )

    @property
    def area(self) -> float:
        """Cell-array silicon area (m^2), logical cells only."""
        return self.rows * self.cols * self.params.cell_area

    def storage_bits(self) -> float:
        """Total bits stored at this spec's levels-per-cell."""
        return self.rows * self.cols * self.spec.bits

    def __repr__(self) -> str:
        spares = f", {self.spare_rows} spare rows" if self.spare_rows else ""
        return (
            f"FeFETCrossbar({self.rows}x{self.cols}, {self.spec.n_levels} levels, "
            f"sigma_vth={self.variation.sigma_vth * 1e3:.0f} mV{spares})"
        )
