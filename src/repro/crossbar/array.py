"""The core FeFET crossbar array (Sec. 3.2, Fig. 3).

One multi-level FeFET per cell; drains share a wordline (WL) per row,
gates share a bitline (BL) per column, sources ground to a sourceline.
Programming drives pulse trains onto a selected row's cells (half-``V_w``
bias on unselected rows, whose tiny residual polarisation gain is
*modelled*, not ignored); inference activates one column per evidence
block and accumulates the activated cells' currents along each WL.

The implementation is vectorised: instead of 2-D lists of
:class:`~repro.devices.fefet.FeFET` objects, the array stores each cell's
accumulated switching-time exposure and static V_TH offset as matrices
and evaluates polarisation -> V_TH -> current with numpy.  A template
:class:`FeFET` supplies the shared device physics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crossbar.parameters import CircuitParameters
from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.devices.preisach import _lognormal_cdf
from repro.devices.programming import PulseProgrammer
from repro.devices.variation import VariationModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


class FeFETCrossbar:
    """A rows x cols array of multi-level FeFET cells.

    Parameters
    ----------
    rows, cols:
        Array dimensions: rows = events/classes (wordlines), cols =
        prior + likelihood columns (bitlines).
    spec:
        Multi-level cell specification (levels <-> target currents).
    template:
        Template device defining the shared physics; defaults to the
        calibrated :class:`FeFET`.
    variation:
        Device-to-device variation model; offsets are drawn once at
        construction (they are static manufacturing variation).
    params:
        Circuit operating point.
    seed:
        RNG seed for the variation draw.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        spec: Optional[MultiLevelCellSpec] = None,
        template: Optional[FeFET] = None,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        seed: RngLike = None,
    ):
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")
        self.spec = spec or MultiLevelCellSpec()
        self.template = template or FeFET()
        self.variation = variation or VariationModel()
        self.params = params or CircuitParameters()
        self._rng = ensure_rng(seed)

        layer = self.template.layer
        self._sigma = layer.sigma
        self._median_time = layer.median_switching_time(layer.nominal_amplitude)
        self._pulse_width = layer.nominal_width
        # Merz-law equivalence factor for half-V_w disturb exposure.
        disturb_median = layer.median_switching_time(self.params.v_disturb)
        self._disturb_time_scale = self._median_time / disturb_median

        self._programmer = PulseProgrammer(self.template, self.spec)
        self._level_pulses = np.array(
            [cfg.n_pulses for cfg in self._programmer.build_table()], dtype=int
        )

        # Per-cell state: accumulated equivalent switching time (s), the
        # static V_TH offset, and the programmed level (-1 = erased).
        self._acc_time = np.zeros((rows, cols))
        self._vth_offsets = self.variation.sample_offsets((rows, cols), self._rng)
        self.levels = np.full((rows, cols), -1, dtype=int)
        self.write_pulse_total = 0
        # Read-path cache: the per-cell (I_on, I_off) matrices depend only
        # on the programmed state, so repeated (batched) reads between
        # writes reuse them.  ``_state_version`` invalidates the cache;
        # every mutation of ``_acc_time`` must bump it.
        self._state_version = 0
        self._read_cache = None

    # ------------------------------------------------------------- programming
    def erase_all(self) -> None:
        """Full-array erase (block erase before (re)programming)."""
        self._acc_time.fill(0.0)
        self.levels.fill(-1)
        self.invalidate_read_cache()

    def program_cell(self, row: int, col: int, level: int) -> None:
        """Erase and program one cell to a discrete level.

        Applies the level's pulse train to the selected cell and the
        corresponding half-``V_w`` disturb exposure to every *other* row's
        cell on the same column (the paper's write-inhibit scheme).
        """
        self._check_cell(row, col)
        if not 0 <= level < self.spec.n_levels:
            raise ValueError(
                f"level must lie in 0..{self.spec.n_levels - 1}, got {level}"
            )
        n_pulses = int(self._level_pulses[level])
        self._acc_time[row, col] = n_pulses * self._pulse_width
        self.levels[row, col] = level
        self.write_pulse_total += n_pulses
        # Disturb: unselected rows on this column accumulate equivalent
        # exposure at V_w/2, scaled by the Merz-law equivalence.
        disturb = n_pulses * self._pulse_width * self._disturb_time_scale
        others = np.arange(self.rows) != row
        self._acc_time[others, col] += disturb
        self.invalidate_read_cache()

    def program_matrix(self, level_matrix: np.ndarray) -> None:
        """Program the whole array from a level matrix (-1 leaves erased)."""
        level_matrix = np.asarray(level_matrix, dtype=int)
        if level_matrix.shape != (self.rows, self.cols):
            raise ValueError(
                f"level matrix must have shape {(self.rows, self.cols)}, "
                f"got {level_matrix.shape}"
            )
        if np.any(level_matrix >= self.spec.n_levels):
            raise ValueError("level matrix contains out-of-range levels")
        self.erase_all()
        for row in range(self.rows):
            for col in range(self.cols):
                level = level_matrix[row, col]
                if level >= 0:
                    self.program_cell(row, col, int(level))

    # ------------------------------------------------------------------ state
    def _check_cell(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(
                f"cell ({row}, {col}) outside array {self.rows}x{self.cols}"
            )

    def polarization_matrix(self) -> np.ndarray:
        """Switched domain fraction of every cell, shape (rows, cols)."""
        return _lognormal_cdf(self._acc_time, self._median_time, self._sigma)

    def vth_matrix(self) -> np.ndarray:
        """Threshold voltage of every cell including variation offsets."""
        pol = self.polarization_matrix()
        ideal = self.template.vth_high - pol * self.template.memory_window
        return ideal + self._vth_offsets

    def cell_current(self, row: int, col: int, v_gate: Optional[float] = None) -> float:
        """Read current of one cell (amperes)."""
        self._check_cell(row, col)
        v_gate = self.params.v_on if v_gate is None else v_gate
        return float(self.template.idvg.current(v_gate, self.vth_matrix()[row, col]))

    def invalidate_read_cache(self) -> None:
        """Drop the cached (I_on, I_off) read matrices.

        Called by every in-tree mutation of the programmed state; code
        that pokes ``_acc_time``/``_vth_offsets`` directly must call this
        itself before the next read.
        """
        self._state_version += 1
        self._read_cache = None

    def read_current_matrices(self) -> tuple:
        """Per-cell read currents ``(I_on, I_off)`` for the current state.

        ``I_on[r, c]`` is cell (r, c)'s drain current with its gate at
        ``V_on`` (activated column), ``I_off[r, c]`` with the gate at
        ``V_off`` (inhibited column leakage).  Since a read never alters
        the programmed state, the pair is cached until the next write —
        the reuse that makes repeated batched reads O(rows x cols) cheap
        arithmetic instead of per-read device-physics evaluation.
        """
        if self._read_cache is None or self._read_cache[0] != self._state_version:
            vth = self.vth_matrix()
            i_on = self.template.idvg.current(self.params.v_on, vth)
            i_off = self.template.idvg.current(self.params.v_off, vth)
            self._read_cache = (self._state_version, i_on, i_off)
        return self._read_cache[1], self._read_cache[2]

    def current_matrix(
        self, active_cols: Optional[np.ndarray] = None, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Per-cell currents with activated/inhibited gate biasing.

        Parameters
        ----------
        active_cols:
            Boolean mask of activated columns (``V_on`` gates); inhibited
            columns get ``V_off``.  ``None`` activates everything.
        read_noise_seed:
            Seed for the optional per-read noise draw (only drawn when the
            variation model has ``sigma_read > 0``).
        """
        mask = self._column_mask(active_cols)
        if self.variation.sigma_read > 0.0:
            v_gates = np.where(mask, self.params.v_on, self.params.v_off)
            rng = ensure_rng(read_noise_seed) if read_noise_seed is not None else self._rng
            vth = self.vth_matrix() + self.variation.sample_read_noise(
                (self.rows, self.cols), rng
            )
            return self.template.idvg.current(v_gates[None, :], vth)
        i_on, i_off = self.read_current_matrices()
        return np.where(mask[None, :], i_on, i_off)

    def wordline_currents(
        self, active_cols: Optional[np.ndarray] = None, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Accumulated I_WL per row — the in-memory posterior (Eq. 5)."""
        return self.current_matrix(active_cols, read_noise_seed).sum(axis=1)

    # ------------------------------------------------------------ batch reads
    def current_matrix_batch(
        self, active_cols: np.ndarray, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Per-cell currents for a batch of activation masks.

        Parameters
        ----------
        active_cols:
            Boolean masks, shape ``(n_samples, cols)`` — one read cycle
            per row of the mask matrix.
        read_noise_seed:
            Seed for the per-read noise.  One ``(n, rows, cols)`` draw
            covers the whole batch; because numpy Generators fill arrays
            in C order from a single stream, the batch draw is
            *bit-identical* to ``n`` successive per-sample draws from
            the same Generator.  Note the equivalence is with *one
            stream threaded through the loop*: passing an explicit int
            seed here draws the whole batch from one fresh stream,
            whereas re-passing that int to ``n`` separate per-sample
            calls would re-seed per call and give every sample identical
            noise.

        Returns
        -------
        Currents of shape ``(n_samples, rows, cols)`` (amperes).

        Notes
        -----
        The noise-free path selects per cell between the cached
        ``(I_on, I_off)`` read matrices, so the whole batch costs one
        masked selection + reduction — no per-sample device-physics
        evaluation.  The selection is elementwise (not a BLAS matmul) on
        purpose: it keeps every sample's floating-point result
        bit-identical to a single-sample read.
        """
        masks = self._column_mask_batch(active_cols)
        if self.variation.sigma_read > 0.0:
            v_gates = np.where(masks, self.params.v_on, self.params.v_off)
            rng = ensure_rng(read_noise_seed) if read_noise_seed is not None else self._rng
            noise = self.variation.sample_read_noise(
                (masks.shape[0], self.rows, self.cols), rng
            )
            vth = self.vth_matrix()[None, :, :] + noise
            return self.template.idvg.current(v_gates[:, None, :], vth)
        i_on, i_off = self.read_current_matrices()
        return np.where(masks[:, None, :], i_on[None, :, :], i_off[None, :, :])

    def wordline_currents_batch(
        self, active_cols: np.ndarray, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Accumulated I_WL for a batch of masks, shape ``(n_samples, rows)``.

        One read cycle per mask row, evaluated as a single vectorised
        pass over the cell-current matrices; equals stacking
        :meth:`wordline_currents` over the masks bit-for-bit (for noisy
        reads, with one RNG stream threaded through the loop — see
        :meth:`current_matrix_batch` on seed semantics).
        """
        return self.current_matrix_batch(active_cols, read_noise_seed).sum(axis=2)

    def _column_mask_batch(self, active_cols: np.ndarray) -> np.ndarray:
        masks = np.asarray(active_cols)
        if masks.ndim != 2 or masks.shape[1] != self.cols:
            raise ValueError(
                f"active_cols batch must have shape (n, {self.cols}), "
                f"got {masks.shape}"
            )
        if masks.dtype != bool:
            raise ValueError("active_cols batch must be a boolean mask matrix")
        return masks

    def _column_mask(self, active_cols: Optional[np.ndarray]) -> np.ndarray:
        if active_cols is None:
            return np.ones(self.cols, dtype=bool)
        mask = np.asarray(active_cols)
        if mask.dtype != bool:
            # Accept an iterable of column indices as well.
            idx = np.asarray(active_cols, dtype=int)
            if idx.ndim != 1:
                raise ValueError("active_cols must be a bool mask or index list")
            if np.any(idx < 0) or np.any(idx >= self.cols):
                raise ValueError("active column index out of range")
            mask = np.zeros(self.cols, dtype=bool)
            mask[idx] = True
        elif mask.shape != (self.cols,):
            raise ValueError(
                f"active_cols mask must have shape ({self.cols},), got {mask.shape}"
            )
        return mask

    # -------------------------------------------------------------- metrics
    def ideal_current_for_level(self, level: int) -> float:
        """The spec's target current for a level (amperes)."""
        return self.spec.current_for_level(level)

    def max_disturb_shift(self) -> float:
        """Largest |V_TH drift| due to accumulated write disturb (volts).

        Computed against a disturb-free reference; the half-bias scheme
        should keep this orders of magnitude below a level's V_TH step.
        """
        programmed = self.levels >= 0
        if not programmed.any():
            return 0.0
        clean_time = np.where(
            programmed, self._level_pulses[np.maximum(self.levels, 0)] * self._pulse_width, 0.0
        )
        pol_clean = _lognormal_cdf(clean_time, self._median_time, self._sigma)
        pol_actual = self.polarization_matrix()
        return float(
            np.max(np.abs(pol_actual - pol_clean)) * self.template.memory_window
        )

    @property
    def area(self) -> float:
        """Cell-array silicon area (m^2)."""
        return self.rows * self.cols * self.params.cell_area

    def storage_bits(self) -> float:
        """Total bits stored at this spec's levels-per-cell."""
        return self.rows * self.cols * self.spec.bits

    def __repr__(self) -> str:
        return (
            f"FeFETCrossbar({self.rows}x{self.cols}, {self.spec.n_levels} levels, "
            f"sigma_vth={self.variation.sigma_vth * 1e3:.0f} mV)"
        )
