"""The core FeFET crossbar array (Sec. 3.2, Fig. 3).

One multi-level FeFET per cell; drains share a wordline (WL) per row,
gates share a bitline (BL) per column, sources ground to a sourceline.
Programming drives pulse trains onto a selected row's cells (half-``V_w``
bias on unselected rows, whose tiny residual polarisation gain is
*modelled*, not ignored); inference activates one column per evidence
block and accumulates the activated cells' currents along each WL.

The implementation is vectorised: instead of 2-D lists of
:class:`~repro.devices.fefet.FeFET` objects, the array stores each cell's
accumulated switching-time exposure and static V_TH offset as matrices
and evaluates polarisation -> V_TH -> current with numpy.  A template
:class:`FeFET` supplies the shared device physics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crossbar.parameters import CircuitParameters
from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.devices.preisach import _lognormal_cdf
from repro.devices.programming import PulseProgrammer
from repro.devices.variation import VariationModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


class FeFETCrossbar:
    """A rows x cols array of multi-level FeFET cells.

    Parameters
    ----------
    rows, cols:
        Array dimensions: rows = events/classes (wordlines), cols =
        prior + likelihood columns (bitlines).
    spec:
        Multi-level cell specification (levels <-> target currents).
    template:
        Template device defining the shared physics; defaults to the
        calibrated :class:`FeFET`.
    variation:
        Device-to-device variation model; offsets are drawn once at
        construction (they are static manufacturing variation).
    params:
        Circuit operating point.
    seed:
        RNG seed for the variation draw.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        spec: Optional[MultiLevelCellSpec] = None,
        template: Optional[FeFET] = None,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        seed: RngLike = None,
    ):
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")
        self.spec = spec or MultiLevelCellSpec()
        self.template = template or FeFET()
        self.variation = variation or VariationModel()
        self.params = params or CircuitParameters()
        self._rng = ensure_rng(seed)

        layer = self.template.layer
        self._sigma = layer.sigma
        self._median_time = layer.median_switching_time(layer.nominal_amplitude)
        self._pulse_width = layer.nominal_width
        # Merz-law equivalence factor for half-V_w disturb exposure.
        disturb_median = layer.median_switching_time(self.params.v_disturb)
        self._disturb_time_scale = self._median_time / disturb_median

        self._programmer = PulseProgrammer(self.template, self.spec)
        self._level_pulses = np.array(
            [cfg.n_pulses for cfg in self._programmer.build_table()], dtype=int
        )

        # Per-cell state: accumulated equivalent switching time (s), the
        # static V_TH offset, and the programmed level (-1 = erased).
        self._acc_time = np.zeros((rows, cols))
        self._vth_offsets = self.variation.sample_offsets((rows, cols), self._rng)
        self.levels = np.full((rows, cols), -1, dtype=int)
        self.write_pulse_total = 0

    # ------------------------------------------------------------- programming
    def erase_all(self) -> None:
        """Full-array erase (block erase before (re)programming)."""
        self._acc_time.fill(0.0)
        self.levels.fill(-1)

    def program_cell(self, row: int, col: int, level: int) -> None:
        """Erase and program one cell to a discrete level.

        Applies the level's pulse train to the selected cell and the
        corresponding half-``V_w`` disturb exposure to every *other* row's
        cell on the same column (the paper's write-inhibit scheme).
        """
        self._check_cell(row, col)
        if not 0 <= level < self.spec.n_levels:
            raise ValueError(
                f"level must lie in 0..{self.spec.n_levels - 1}, got {level}"
            )
        n_pulses = int(self._level_pulses[level])
        self._acc_time[row, col] = n_pulses * self._pulse_width
        self.levels[row, col] = level
        self.write_pulse_total += n_pulses
        # Disturb: unselected rows on this column accumulate equivalent
        # exposure at V_w/2, scaled by the Merz-law equivalence.
        disturb = n_pulses * self._pulse_width * self._disturb_time_scale
        others = np.arange(self.rows) != row
        self._acc_time[others, col] += disturb

    def program_matrix(self, level_matrix: np.ndarray) -> None:
        """Program the whole array from a level matrix (-1 leaves erased)."""
        level_matrix = np.asarray(level_matrix, dtype=int)
        if level_matrix.shape != (self.rows, self.cols):
            raise ValueError(
                f"level matrix must have shape {(self.rows, self.cols)}, "
                f"got {level_matrix.shape}"
            )
        if np.any(level_matrix >= self.spec.n_levels):
            raise ValueError("level matrix contains out-of-range levels")
        self.erase_all()
        for row in range(self.rows):
            for col in range(self.cols):
                level = level_matrix[row, col]
                if level >= 0:
                    self.program_cell(row, col, int(level))

    # ------------------------------------------------------------------ state
    def _check_cell(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(
                f"cell ({row}, {col}) outside array {self.rows}x{self.cols}"
            )

    def polarization_matrix(self) -> np.ndarray:
        """Switched domain fraction of every cell, shape (rows, cols)."""
        return _lognormal_cdf(self._acc_time, self._median_time, self._sigma)

    def vth_matrix(self) -> np.ndarray:
        """Threshold voltage of every cell including variation offsets."""
        pol = self.polarization_matrix()
        ideal = self.template.vth_high - pol * self.template.memory_window
        return ideal + self._vth_offsets

    def cell_current(self, row: int, col: int, v_gate: Optional[float] = None) -> float:
        """Read current of one cell (amperes)."""
        self._check_cell(row, col)
        v_gate = self.params.v_on if v_gate is None else v_gate
        return float(self.template.idvg.current(v_gate, self.vth_matrix()[row, col]))

    def current_matrix(
        self, active_cols: Optional[np.ndarray] = None, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Per-cell currents with activated/inhibited gate biasing.

        Parameters
        ----------
        active_cols:
            Boolean mask of activated columns (``V_on`` gates); inhibited
            columns get ``V_off``.  ``None`` activates everything.
        read_noise_seed:
            Seed for the optional per-read noise draw (only drawn when the
            variation model has ``sigma_read > 0``).
        """
        mask = self._column_mask(active_cols)
        v_gates = np.where(mask, self.params.v_on, self.params.v_off)
        vth = self.vth_matrix()
        if self.variation.sigma_read > 0.0:
            rng = ensure_rng(read_noise_seed) if read_noise_seed is not None else self._rng
            vth = vth + self.variation.sample_read_noise((self.rows, self.cols), rng)
        return self.template.idvg.current(v_gates[None, :], vth)

    def wordline_currents(
        self, active_cols: Optional[np.ndarray] = None, read_noise_seed: RngLike = None
    ) -> np.ndarray:
        """Accumulated I_WL per row — the in-memory posterior (Eq. 5)."""
        return self.current_matrix(active_cols, read_noise_seed).sum(axis=1)

    def _column_mask(self, active_cols: Optional[np.ndarray]) -> np.ndarray:
        if active_cols is None:
            return np.ones(self.cols, dtype=bool)
        mask = np.asarray(active_cols)
        if mask.dtype != bool:
            # Accept an iterable of column indices as well.
            idx = np.asarray(active_cols, dtype=int)
            if idx.ndim != 1:
                raise ValueError("active_cols must be a bool mask or index list")
            if np.any(idx < 0) or np.any(idx >= self.cols):
                raise ValueError("active column index out of range")
            mask = np.zeros(self.cols, dtype=bool)
            mask[idx] = True
        elif mask.shape != (self.cols,):
            raise ValueError(
                f"active_cols mask must have shape ({self.cols},), got {mask.shape}"
            )
        return mask

    # -------------------------------------------------------------- metrics
    def ideal_current_for_level(self, level: int) -> float:
        """The spec's target current for a level (amperes)."""
        return self.spec.current_for_level(level)

    def max_disturb_shift(self) -> float:
        """Largest |V_TH drift| due to accumulated write disturb (volts).

        Computed against a disturb-free reference; the half-bias scheme
        should keep this orders of magnitude below a level's V_TH step.
        """
        programmed = self.levels >= 0
        if not programmed.any():
            return 0.0
        clean_time = np.where(
            programmed, self._level_pulses[np.maximum(self.levels, 0)] * self._pulse_width, 0.0
        )
        pol_clean = _lognormal_cdf(clean_time, self._median_time, self._sigma)
        pol_actual = self.polarization_matrix()
        return float(
            np.max(np.abs(pol_actual - pol_clean)) * self.template.memory_window
        )

    @property
    def area(self) -> float:
        """Cell-array silicon area (m^2)."""
        return self.rows * self.cols * self.params.cell_area

    def storage_bits(self) -> float:
        """Total bits stored at this spec's levels-per-cell."""
        return self.rows * self.cols * self.spec.bits

    def __repr__(self) -> str:
        return (
            f"FeFETCrossbar({self.rows}x{self.cols}, {self.spec.n_levels} levels, "
            f"sigma_vth={self.variation.sigma_vth * 1e3:.0f} mV)"
        )
