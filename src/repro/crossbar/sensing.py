"""Sensing module: current mirrors feeding the WTA circuit (Fig. 3).

Each wordline's accumulated current is copied into the WTA through a
current mirror (``I_CM`` in the paper's figure).  Mirrors contribute two
non-idealities captured here: a fixed attenuation ratio (the copy runs at
a scaled-down current to save power) and a per-mirror random gain
mismatch.  The :class:`SensingModule` combines mirrors + behavioural WTA
and reports its contribution to inference energy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.wta import WinnerTakeAll
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


class CurrentMirror:
    """Per-row current mirrors with ratio and Gaussian gain mismatch.

    Parameters
    ----------
    n_rows:
        Number of mirrors (one per wordline).
    ratio:
        Nominal copy ratio (output/input current).
    gain_sigma:
        Relative std of the per-mirror static gain error; a 1 %% mismatch
        is typical of minimum-size mirrors.  Gains are drawn once.
    """

    def __init__(
        self,
        n_rows: int,
        ratio: float = 0.02,
        gain_sigma: float = 0.0,
        seed: RngLike = None,
    ):
        self.n_rows = check_positive_int(n_rows, "n_rows")
        if ratio <= 0:
            raise ValueError(f"ratio must be positive, got {ratio}")
        if gain_sigma < 0:
            raise ValueError(f"gain_sigma must be >= 0, got {gain_sigma}")
        self.ratio = float(ratio)
        self.gain_sigma = float(gain_sigma)
        rng = ensure_rng(seed)
        self.gains = self.ratio * (
            1.0 + (rng.normal(0.0, gain_sigma, size=n_rows) if gain_sigma else 0.0)
        )

    def copy(self, wordline_currents: np.ndarray) -> np.ndarray:
        """Mirror the wordline currents into the WTA inputs."""
        currents = np.asarray(wordline_currents, dtype=float)
        if currents.shape != (self.n_rows,):
            raise ValueError(
                f"expected {self.n_rows} wordline currents, got shape {currents.shape}"
            )
        return currents * self.gains

    def copy_batch(self, wordline_currents: np.ndarray) -> np.ndarray:
        """Mirror a ``(n_samples, n_rows)`` current batch into the WTA.

        The static per-mirror gains broadcast over the batch, so every
        sample sees exactly the same mirrors as a one-at-a-time read.
        """
        currents = np.asarray(wordline_currents, dtype=float)
        if currents.ndim != 2 or currents.shape[1] != self.n_rows:
            raise ValueError(
                f"expected (n, {self.n_rows}) wordline currents, "
                f"got shape {currents.shape}"
            )
        return currents * self.gains


class SensingModule:
    """Mirrors + WTA: turns wordline currents into a one-hot decision.

    Parameters
    ----------
    n_rows:
        Wordline count.
    params:
        Circuit parameters (energy constants).
    mirror_gain_sigma:
        Mirror mismatch; 0 for the ideal sensing used in most experiments.
    """

    def __init__(
        self,
        n_rows: int,
        params: Optional[CircuitParameters] = None,
        mirror_gain_sigma: float = 0.0,
        seed: RngLike = None,
    ):
        self.params = params or CircuitParameters()
        self.mirrors = CurrentMirror(
            n_rows,
            ratio=self.params.mirror_ratio,
            gain_sigma=mirror_gain_sigma,
            seed=seed,
        )
        self.wta = WinnerTakeAll()

    @property
    def n_rows(self) -> int:
        return self.mirrors.n_rows

    def decide(self, wordline_currents: np.ndarray) -> int:
        """Winning wordline index (the predicted event)."""
        return self.wta.winner(self.mirrors.copy(wordline_currents))

    def decide_batch(self, wordline_currents: np.ndarray) -> np.ndarray:
        """Winning wordline index per sample of a ``(n, n_rows)`` batch."""
        return self.wta.winner_batch(self.mirrors.copy_batch(wordline_currents))

    def one_hot(self, wordline_currents: np.ndarray) -> np.ndarray:
        """One-hot decision vector."""
        return self.wta.one_hot(self.mirrors.copy(wordline_currents))

    def one_hot_batch(self, wordline_currents: np.ndarray) -> np.ndarray:
        """Per-sample one-hot decisions for a ``(n, n_rows)`` batch."""
        return self.wta.one_hot_batch(self.mirrors.copy_batch(wordline_currents))

    def energy(self, wordline_currents: np.ndarray, delay: float) -> float:
        """Sensing energy for one inference (joules).

        Fixed per-row mirror/WTA charge energy plus the dynamic term from
        conducting the mirrored currents for the inference duration.
        """
        currents = np.asarray(wordline_currents, dtype=float)
        fixed = self.n_rows * (
            self.params.e_mirror_per_row + self.params.e_wta_per_row
        )
        dynamic = (
            2.0 * self.params.mirror_ratio * float(currents.sum()) * self.params.v_dd * delay
        )
        return fixed + dynamic
