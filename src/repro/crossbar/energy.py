"""Inference energy model (Fig. 6b/6d; Table 1's 17.20 fJ/inference).

Combines the array-side driver energies (:mod:`repro.crossbar.drivers`)
with the sensing-side mirror/WTA energies
(:class:`repro.crossbar.sensing.SensingModule`), mirroring the paper's
"Array" vs "Sensing" stacked bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crossbar.drivers import (
    bitline_switch_energy,
    conduction_energy,
    wordline_bias_energy,
)
from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.timing import DelayModel


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-inference energy split (joules), Fig. 6 style.

    ``array`` covers the WL/BL drivers and cell conduction; ``sensing``
    the current mirrors and WTA circuit.
    """

    bitline: float
    wordline: float
    conduction: float
    mirrors: float
    wta: float

    @property
    def array(self) -> float:
        return self.bitline + self.wordline + self.conduction

    @property
    def sensing(self) -> float:
        return self.mirrors + self.wta

    @property
    def total(self) -> float:
        return self.array + self.sensing


class EnergyModel:
    """Single-inference energy of the FeBiM macro."""

    def __init__(self, params: Optional[CircuitParameters] = None):
        self.params = params or CircuitParameters()
        self._delay_model = DelayModel(self.params)

    def inference_energy(
        self,
        rows: int,
        cols: int,
        n_active_bls: int,
        wordline_currents: np.ndarray,
        delay: Optional[float] = None,
    ) -> EnergyBreakdown:
        """Energy breakdown for one inference.

        Parameters
        ----------
        rows, cols:
            Array geometry.
        n_active_bls:
            Bitlines activated for this inference (n features + prior,
            or all columns in the Fig. 6 stress sweeps).
        wordline_currents:
            The accumulated I_WL vector of this inference (amperes).
        delay:
            Inference duration; computed from the delay model's worst
            case when omitted.
        """
        currents = np.asarray(wordline_currents, dtype=float)
        if delay is None:
            i_total = float(currents.sum())
            delay = self._delay_model.inference_delay(
                rows, cols, i_total=max(i_total, 1e-12)
            )
        params = self.params
        mirrors = rows * params.e_mirror_per_row + (
            2.0 * params.mirror_ratio * float(currents.sum()) * params.v_dd * delay
        )
        return EnergyBreakdown(
            bitline=bitline_switch_energy(params, rows, n_active_bls),
            wordline=wordline_bias_energy(params, rows, cols),
            conduction=conduction_energy(params, currents, delay),
            mirrors=mirrors,
            wta=rows * params.e_wta_per_row,
        )

    def stress_energy(self, rows: int, cols: int) -> EnergyBreakdown:
        """Fig. 6-style energy with *all* bitlines activated.

        Every cell conducts near mid-range (the sweeps program random
        states), so I_WL ~ cols * 0.55 uA per row.
        """
        i_wl = np.full(rows, cols * 0.55e-6)
        return self.inference_energy(rows, cols, n_active_bls=cols, wordline_currents=i_wl)
