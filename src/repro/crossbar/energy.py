"""Inference energy model (Fig. 6b/6d; Table 1's 17.20 fJ/inference).

Combines the array-side driver energies (:mod:`repro.crossbar.drivers`)
with the sensing-side mirror/WTA energies
(:class:`repro.crossbar.sensing.SensingModule`), mirroring the paper's
"Array" vs "Sensing" stacked bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crossbar.drivers import (
    bitline_switch_energy,
    conduction_energy,
    wordline_bias_energy,
)
from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.timing import DelayModel


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-inference energy split (joules), Fig. 6 style.

    ``array`` covers the WL/BL drivers and cell conduction; ``sensing``
    the current mirrors and WTA circuit.
    """

    bitline: float
    wordline: float
    conduction: float
    mirrors: float
    wta: float

    @property
    def array(self) -> float:
        return self.bitline + self.wordline + self.conduction

    @property
    def sensing(self) -> float:
        return self.mirrors + self.wta

    @property
    def total(self) -> float:
        return self.array + self.sensing


@dataclass(frozen=True)
class BatchEnergyBreakdown:
    """Energy split of a batch of inferences: one entry per sample.

    Mirrors :class:`EnergyBreakdown` with ``(n_samples,)`` arrays in
    every field; the derived ``array``/``sensing``/``total`` properties
    combine them with the same arithmetic, so ``batch.total[i]`` is
    bit-identical to the matching per-sample ``EnergyBreakdown.total``.
    """

    bitline: np.ndarray
    wordline: np.ndarray
    conduction: np.ndarray
    mirrors: np.ndarray
    wta: np.ndarray

    @property
    def array(self) -> np.ndarray:
        return self.bitline + self.wordline + self.conduction

    @property
    def sensing(self) -> np.ndarray:
        return self.mirrors + self.wta

    @property
    def total(self) -> np.ndarray:
        return self.array + self.sensing

    def __len__(self) -> int:
        return self.bitline.shape[0]

    def sample(self, i: int) -> EnergyBreakdown:
        """The ``i``-th sample's breakdown as a scalar :class:`EnergyBreakdown`."""
        return EnergyBreakdown(
            bitline=float(self.bitline[i]),
            wordline=float(self.wordline[i]),
            conduction=float(self.conduction[i]),
            mirrors=float(self.mirrors[i]),
            wta=float(self.wta[i]),
        )


class EnergyModel:
    """Single-inference energy of the FeBiM macro."""

    def __init__(self, params: Optional[CircuitParameters] = None):
        self.params = params or CircuitParameters()
        self._delay_model = DelayModel(self.params)

    def inference_energy(
        self,
        rows: int,
        cols: int,
        n_active_bls: int,
        wordline_currents: np.ndarray,
        delay: Optional[float] = None,
    ) -> EnergyBreakdown:
        """Energy breakdown for one inference.

        Parameters
        ----------
        rows, cols:
            Array geometry.
        n_active_bls:
            Bitlines activated for this inference (n features + prior,
            or all columns in the Fig. 6 stress sweeps).
        wordline_currents:
            The accumulated I_WL vector of this inference (amperes).
        delay:
            Inference duration; computed from the delay model's worst
            case when omitted.
        """
        currents = np.asarray(wordline_currents, dtype=float)
        if delay is None:
            i_total = float(currents.sum())
            delay = self._delay_model.inference_delay(
                rows, cols, i_total=max(i_total, 1e-12)
            )
        params = self.params
        mirrors = rows * params.e_mirror_per_row + (
            2.0 * params.mirror_ratio * float(currents.sum()) * params.v_dd * delay
        )
        return EnergyBreakdown(
            bitline=bitline_switch_energy(params, rows, n_active_bls),
            wordline=wordline_bias_energy(params, rows, cols),
            conduction=conduction_energy(params, currents, delay),
            mirrors=mirrors,
            wta=rows * params.e_wta_per_row,
        )

    def inference_energy_batch(
        self,
        rows: int,
        cols: int,
        n_active_bls: int,
        wordline_currents: np.ndarray,
        delay: Optional[np.ndarray] = None,
    ) -> BatchEnergyBreakdown:
        """Energy breakdowns for a batch of inferences in one pass.

        Parameters
        ----------
        rows, cols, n_active_bls:
            Geometry / activation count, shared by every sample.
        wordline_currents:
            Per-sample I_WL vectors, shape ``(n_samples, rows)``.
        delay:
            Per-sample inference durations, shape ``(n_samples,)``;
            computed from the delay model's worst case when omitted.

        The driver terms (bitline, wordline, WTA charge) depend only on
        the geometry, so they are constant across the batch; conduction
        and mirror terms vectorise over the per-sample currents and
        delays with the same operation order as :meth:`inference_energy`,
        keeping each sample's entries bit-identical to the scalar path.
        """
        currents = np.asarray(wordline_currents, dtype=float)
        if currents.ndim != 2 or currents.shape[1] != rows:
            raise ValueError(
                f"wordline_currents must have shape (n, {rows}), "
                f"got {currents.shape}"
            )
        if np.any(currents < 0):
            raise ValueError("wordline currents must be non-negative")
        n = currents.shape[0]
        sums = currents.sum(axis=1)
        if delay is None:
            # Match the scalar path: worst-case delay at the default
            # single-LSB gap of ``inference_delay``.
            delay = self._delay_model.inference_delay_batch(
                rows,
                cols,
                i_total=np.maximum(sums, 1e-12),
                delta_i=np.full(n, DelayModel.default_delta_i()),
            )
        else:
            delay = np.asarray(delay, dtype=float)
            if delay.shape != (n,):
                raise ValueError(
                    f"delay must have shape ({n},), got {delay.shape}"
                )
            if np.any(delay <= 0):
                raise ValueError("delay must be positive")
        params = self.params
        mirrors = rows * params.e_mirror_per_row + (
            2.0 * params.mirror_ratio * sums * params.v_dd * delay
        )
        conduction = sums * params.v_wl_read * delay
        return BatchEnergyBreakdown(
            bitline=np.full(n, bitline_switch_energy(params, rows, n_active_bls)),
            wordline=np.full(n, wordline_bias_energy(params, rows, cols)),
            conduction=conduction,
            mirrors=mirrors,
            wta=np.full(n, rows * params.e_wta_per_row),
        )

    def stress_energy(self, rows: int, cols: int) -> EnergyBreakdown:
        """Fig. 6-style energy with *all* bitlines activated.

        Every cell conducts near mid-range (the sweeps program random
        states), so I_WL ~ cols * 0.55 uA per row.
        """
        i_wl = np.full(rows, cols * 0.55e-6)
        return self.inference_energy(rows, cols, n_active_bls=cols, wordline_currents=i_wl)
