"""Column organisation of the Bayesian crossbar (Fig. 3).

The array has ``k`` rows (one per event/class) and, left to right:

* one optional *prior* column (``BL_0``), activated on every inference —
  omitted when the prior is uniform (the paper omits it for iris,
  Fig. 8b);
* ``n`` *likelihood blocks*, one per evidence node; evidence node ``i``
  with ``m_i`` discrete values owns ``m_i`` columns, and evidence value
  ``b`` activates the block's ``b``-th column.

The paper's classifier uses a uniform ``m = 2^Qf`` for every feature,
but general Bayesian networks mix evidence arities, so the layout
accepts either a single ``n_levels`` or a per-feature sequence.

This module is pure bookkeeping: it translates (feature, level) pairs to
flat column indices and evidence vectors to activation masks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import check_positive_int


class BayesianArrayLayout:
    """Prior-column + likelihood-block addressing.

    Parameters
    ----------
    n_features:
        Number of evidence nodes ``n``.
    n_levels:
        Discrete evidence values per node: a single int (uniform blocks)
        or a sequence of length ``n_features``.
    n_classes:
        Number of events ``k`` (rows).
    include_prior:
        Whether a prior column is materialised.
    """

    def __init__(
        self,
        n_features: int,
        n_levels: Union[int, Sequence[int]],
        n_classes: int,
        include_prior: bool = True,
    ):
        self.n_features = check_positive_int(n_features, "n_features")
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.include_prior = bool(include_prior)
        if isinstance(n_levels, (int, np.integer)):
            widths = (check_positive_int(int(n_levels), "n_levels"),) * self.n_features
        else:
            widths = tuple(
                check_positive_int(int(m), f"n_levels[{i}]")
                for i, m in enumerate(n_levels)
            )
            if len(widths) != self.n_features:
                raise ValueError(
                    f"n_levels sequence length {len(widths)} != "
                    f"n_features {self.n_features}"
                )
        self.block_widths: Tuple[int, ...] = widths
        offset = self.n_prior_cols
        starts = []
        for width in widths:
            starts.append(offset)
            offset += width
        self._block_starts = tuple(starts)
        self._total_cols = offset

    # ------------------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BayesianArrayLayout):
            return NotImplemented
        return (
            self.n_features == other.n_features
            and self.block_widths == other.block_widths
            and self.n_classes == other.n_classes
            and self.include_prior == other.include_prior
        )

    def __repr__(self) -> str:
        return (
            f"BayesianArrayLayout(features={self.n_features}, "
            f"widths={self.block_widths}, classes={self.n_classes}, "
            f"prior={self.include_prior})"
        )

    # ------------------------------------------------------------- geometry
    @property
    def n_levels(self) -> int:
        """Uniform block width; raises for heterogeneous layouts."""
        if len(set(self.block_widths)) != 1:
            raise ValueError(
                "layout has heterogeneous block widths; use block_widths"
            )
        return self.block_widths[0]

    @property
    def n_prior_cols(self) -> int:
        return 1 if self.include_prior else 0

    @property
    def total_cols(self) -> int:
        """Total bitlines: prior column + all likelihood blocks."""
        return self._total_cols

    @property
    def total_rows(self) -> int:
        return self.n_classes

    @property
    def prior_col(self) -> int:
        """Index of the prior column."""
        if not self.include_prior:
            raise ValueError("layout has no prior column (uniform prior omitted)")
        return 0

    def _check_feature(self, feature: int) -> None:
        if not 0 <= feature < self.n_features:
            raise ValueError(
                f"feature must lie in 0..{self.n_features - 1}, got {feature}"
            )

    def likelihood_col(self, feature: int, level: int) -> int:
        """Flat column index of evidence node ``feature`` at value ``level``."""
        self._check_feature(feature)
        width = self.block_widths[feature]
        if not 0 <= level < width:
            raise ValueError(
                f"level must lie in 0..{width - 1} for feature {feature}, "
                f"got {level}"
            )
        return self._block_starts[feature] + level

    def block_slice(self, feature: int) -> slice:
        """Column slice covering one likelihood block."""
        self._check_feature(feature)
        start = self._block_starts[feature]
        return slice(start, start + self.block_widths[feature])

    # ------------------------------------------------------------ activation
    def active_columns(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Boolean activation mask for one discretised sample.

        ``evidence_levels`` holds one level per feature; the prior column
        (when present) is always activated.
        """
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.shape != (self.n_features,):
            raise ValueError(
                f"evidence_levels must have shape ({self.n_features},), "
                f"got {evidence_levels.shape}"
            )
        mask = np.zeros(self.total_cols, dtype=bool)
        if self.include_prior:
            mask[self.prior_col] = True
        for feature, level in enumerate(evidence_levels):
            mask[self.likelihood_col(feature, int(level))] = True
        return mask

    def active_columns_batch(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Activation masks for a batch, shape ``(n_samples, total_cols)``."""
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.ndim != 2 or evidence_levels.shape[1] != self.n_features:
            raise ValueError(
                f"evidence_levels must have shape (n, {self.n_features}), "
                f"got {evidence_levels.shape}"
            )
        widths = np.asarray(self.block_widths)
        if np.any(evidence_levels < 0) or np.any(evidence_levels >= widths[None, :]):
            raise ValueError("evidence level out of range")
        n = evidence_levels.shape[0]
        masks = np.zeros((n, self.total_cols), dtype=bool)
        if self.include_prior:
            masks[:, self.prior_col] = True
        starts = np.asarray(self._block_starts)
        cols = starts[None, :] + evidence_levels
        masks[np.arange(n)[:, None], cols] = True
        return masks

    @property
    def activated_per_inference(self) -> int:
        """Bitlines activated per inference: one per feature (+ prior)."""
        return self.n_features + self.n_prior_cols

    def column_labels(self) -> List[str]:
        """Human-readable per-column labels (for state-map displays)."""
        labels = ["prior"] if self.include_prior else []
        for f, width in enumerate(self.block_widths):
            labels.extend(f"f{f}:b{v}" for v in range(width))
        return labels
