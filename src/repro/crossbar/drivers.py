"""Row/column driver energy primitives (the "array" energy of Fig. 6).

The paper's array energy consists of the WL- and BL-driver dissipation.
We model three charge-based components:

* bitline switching: an activated BL swings from ``V_off`` to ``V_on``
  against the gate capacitance of every attached cell;
* wordline pre-biasing: each WL is driven to the read bias against the
  drain capacitance of every attached cell;
* conduction: the accumulated wordline currents flow from the WL bias
  for the inference duration.
"""

from __future__ import annotations

import numpy as np

from repro.crossbar.parameters import CircuitParameters
from repro.utils.validation import check_positive, check_positive_int


def bitline_switch_energy(
    params: CircuitParameters, rows: int, n_active_bls: int
) -> float:
    """Energy to swing ``n_active_bls`` bitlines to ``V_on`` (joules)."""
    check_positive_int(rows, "rows")
    if n_active_bls < 0:
        raise ValueError(f"n_active_bls must be >= 0, got {n_active_bls}")
    c_bl = params.c_bl_per_cell * rows
    return n_active_bls * c_bl * params.bl_swing**2


def wordline_bias_energy(params: CircuitParameters, rows: int, cols: int) -> float:
    """Energy to drive every wordline to the read bias (joules)."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    c_wl = params.c_wl_per_cell * cols
    return rows * c_wl * params.v_wl_read**2


def conduction_energy(
    params: CircuitParameters, wordline_currents: np.ndarray, delay: float
) -> float:
    """Energy dissipated by cell currents during the inference (joules)."""
    check_positive(delay, "delay")
    currents = np.asarray(wordline_currents, dtype=float)
    if np.any(currents < 0):
        raise ValueError("wordline currents must be non-negative")
    return float(currents.sum()) * params.v_wl_read * delay


def write_pulse_energy(
    params: CircuitParameters, rows: int, n_pulses: int, c_gate: float = 0.05e-15
) -> float:
    """Programming energy of a pulse train on one bitline (joules).

    FeFET writes are field-driven (~fJ/bit, Sec. 2.1): the cost is
    charging the gate stack each pulse, at the full ``V_w`` for the
    selected row and ``V_w/2`` for the inhibited rows sharing the column.
    """
    check_positive_int(rows, "rows")
    if n_pulses < 0:
        raise ValueError(f"n_pulses must be >= 0, got {n_pulses}")
    e_selected = c_gate * params.v_write**2
    e_inhibited = (rows - 1) * c_gate * params.v_disturb**2
    return n_pulses * (e_selected + e_inhibited)
