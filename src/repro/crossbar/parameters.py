"""Shared circuit parameters and calibrated model constants.

Voltages follow Sec. 3.2 of the paper (``V_on`` = 0.5 V, ``V_off`` =
-0.5 V, ``V_w`` = 4 V write pulses, half-``V_w`` inhibit).  The parasitic
capacitances and the delay/energy coefficients are *behavioural
calibration constants*: they are chosen so that the model reproduces the
paper's reported operating points —

* iris-GNBC average inference energy ~17.2 fJ (Table 1),
* Fig. 6 delay range ~200-800 ps over 2-256 columns (2 rows) and
  ~200-1000 ps over 2-32 rows (32 columns),
* Fig. 6 energy magnitudes (tens of fJ column sweep, ~250 fJ row sweep)
  with the paper's array-vs-sensing split (array-dominated when wide,
  sensing-dominated when tall).

They are not extracted from a PDK; see DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CircuitParameters:
    """Operating point and calibrated parasitics of the FeBiM macro.

    Attributes
    ----------
    v_dd:
        Supply for the sensing module (volts).
    v_on, v_off:
        Activated / inhibited bitline (gate) read voltages.
    v_write:
        Gate write pulse amplitude ``V_w``; unselected rows see
        ``v_write / 2`` under the half-bias disturb-inhibit scheme.
    v_wl_read:
        Wordline (drain) read bias during inference.
    c_bl_per_cell:
        Bitline capacitance contributed by each attached cell (farads).
    c_wl_per_cell:
        Wordline capacitance contributed by each attached cell (farads).
    t_base, t_per_col, t_per_row, t_gap_coeff:
        Delay model constants (seconds): fixed overhead, per-column WL
        settling, per-row WTA common-node loading, and the worst-case
        current-gap resolution coefficient.
    e_mirror_per_row, e_wta_per_row:
        Fixed sensing charge-energy per row per inference (joules).
    mirror_ratio:
        Current-mirror attenuation into the WTA (dimensionless).
    cell_area:
        Layout area of one 1-FeFET cell at 45 nm (m^2); the paper lays
        out 0.076 um^2 per cell.
    """

    v_dd: float = 0.8
    v_on: float = 0.5
    v_off: float = -0.5
    v_write: float = 4.0
    v_wl_read: float = 0.1

    c_bl_per_cell: float = 0.05e-15
    c_wl_per_cell: float = 0.02e-15

    t_base: float = 140e-12
    t_per_col: float = 2.4e-12
    t_per_row: float = 24e-12
    t_gap_coeff: float = 5e-12

    e_mirror_per_row: float = 3.6e-15
    e_wta_per_row: float = 1.8e-15
    mirror_ratio: float = 0.02

    cell_area: float = 0.076e-12

    def __post_init__(self) -> None:
        if self.v_on <= self.v_off:
            raise ValueError(
                f"v_on ({self.v_on}) must exceed v_off ({self.v_off})"
            )
        for name in (
            "v_dd",
            "v_write",
            "v_wl_read",
            "c_bl_per_cell",
            "c_wl_per_cell",
            "t_base",
            "t_per_col",
            "t_per_row",
            "t_gap_coeff",
            "e_mirror_per_row",
            "e_wta_per_row",
            "mirror_ratio",
            "cell_area",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def v_disturb(self) -> float:
        """Half-bias seen by unselected rows during write (volts)."""
        return self.v_write / 2.0

    @property
    def bl_swing(self) -> float:
        """Bitline voltage swing when activating a column (volts)."""
        return self.v_on - self.v_off
