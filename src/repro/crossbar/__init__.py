"""FeFET crossbar array substrate (Sec. 3.2, Fig. 3).

* :class:`CircuitParameters` — operating voltages, parasitics and the
  calibrated delay/energy constants shared by all circuit models.
* :class:`FeFETCrossbar` — the core array: one multi-level FeFET per
  cell, wordline (drain) current accumulation, half-``V_w`` write-disturb
  accounting, device variation.
* :class:`BayesianArrayLayout` — the prior-column + per-feature
  likelihood-block column organisation.
* :class:`WinnerTakeAll` / :func:`wta_transient` — sensing: behavioural
  winner detection plus an ODE transient model (Fig. 5c).
* :class:`SensingModule` — current mirrors + WTA with energy accounting.
* :class:`DelayModel` / :class:`EnergyModel` — inference latency and
  energy (Fig. 6, Table 1), calibrated to the paper's reported
  magnitudes.
"""

from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.array import FeFETCrossbar
from repro.crossbar.layout import BayesianArrayLayout
from repro.crossbar.wta import WinnerTakeAll, WTATransientResult, wta_transient
from repro.crossbar.sensing import CurrentMirror, SensingModule
from repro.crossbar.timing import DelayModel
from repro.crossbar.energy import BatchEnergyBreakdown, EnergyBreakdown, EnergyModel
from repro.crossbar.transient import MacroTransientResult, macro_transient
from repro.crossbar.controller import (
    ProgrammingStats,
    ProgramVerifyController,
)

# NOTE: repro.crossbar.tiling builds on repro.core.engine and is exported
# from the top-level package instead, to keep this layer import-acyclic.

__all__ = [
    "MacroTransientResult",
    "macro_transient",
    "ProgrammingStats",
    "ProgramVerifyController",
    "CircuitParameters",
    "FeFETCrossbar",
    "BayesianArrayLayout",
    "WinnerTakeAll",
    "WTATransientResult",
    "wta_transient",
    "CurrentMirror",
    "SensingModule",
    "DelayModel",
    "EnergyModel",
    "EnergyBreakdown",
    "BatchEnergyBreakdown",
]
