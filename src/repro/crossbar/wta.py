"""Winner-take-all sensing (Sec. 3.2; validated in Fig. 5c).

Two levels of modelling:

* :class:`WinnerTakeAll` — the behavioural model used in application
  benchmarking: pick the wordline with maximum mirrored current (exact
  argmax, optionally with mirror mismatch applied upstream).
* :func:`wta_transient` — a dynamical model of the compact cross-
  inhibiting current-mode WTA (the CosIME-style circuit the paper
  adopts): cell output currents evolve under replicator-style
  competition for a shared bias current, so the largest input's output
  rises toward the full bias while losers collapse.  This reproduces the
  Fig. 5(c) transient: distinguishable winner in < ~300 ps for paper-like
  current gaps, with resolution time growing as the gap shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from repro.utils.validation import check_positive


class WinnerTakeAll:
    """Behavioural WTA: one-hot winner detection over wordline currents.

    Parameters
    ----------
    ties:
        ``"lowest"`` (default) resolves exact ties to the lowest index —
        deterministic, mirroring a fixed circuit asymmetry; ``"error"``
        raises instead, for tests that must not silently tie.
    """

    def __init__(self, ties: str = "lowest"):
        if ties not in ("lowest", "error"):
            raise ValueError(f"ties must be 'lowest' or 'error', got {ties!r}")
        self.ties = ties

    def winner(self, currents: np.ndarray) -> int:
        """Index of the maximum current."""
        currents = np.asarray(currents, dtype=float)
        if currents.ndim != 1 or currents.size == 0:
            raise ValueError("currents must be a non-empty 1-D array")
        top = int(np.argmax(currents))
        if self.ties == "error":
            if np.sum(currents == currents[top]) > 1:
                raise ValueError("tie between wordline currents")
        return top

    def one_hot(self, currents: np.ndarray) -> np.ndarray:
        """One-hot output vector (the circuit's I_out pattern)."""
        currents = np.asarray(currents, dtype=float)
        out = np.zeros_like(currents)
        out[self.winner(currents)] = 1.0
        return out

    def winner_batch(self, currents: np.ndarray) -> np.ndarray:
        """Winner index per sample for a ``(n_samples, n_inputs)`` batch.

        Vectorised argmax with the same tie semantics as :meth:`winner`:
        exact ties resolve to the lowest index (or raise for
        ``ties="error"``).  An empty batch returns an empty index array.
        """
        currents = np.asarray(currents, dtype=float)
        if currents.ndim != 2 or currents.shape[1] == 0:
            raise ValueError(
                "currents must be a (n_samples, n_inputs) array with at "
                f"least one input, got shape {currents.shape}"
            )
        winners = np.argmax(currents, axis=1)
        if self.ties == "error" and currents.shape[0]:
            top = currents[np.arange(currents.shape[0]), winners]
            if np.any(np.sum(currents == top[:, None], axis=1) > 1):
                raise ValueError("tie between wordline currents")
        return winners

    def one_hot_batch(self, currents: np.ndarray) -> np.ndarray:
        """Per-sample one-hot decisions, shape ``(n_samples, n_inputs)``."""
        currents = np.asarray(currents, dtype=float)
        winners = self.winner_batch(currents)
        out = np.zeros_like(currents)
        out[np.arange(currents.shape[0]), winners] = 1.0
        return out

    def margin(self, currents: np.ndarray) -> float:
        """Winner-to-runner-up current gap (amperes); 0 when < 2 inputs."""
        currents = np.asarray(currents, dtype=float)
        if currents.size < 2:
            return 0.0
        ordered = np.sort(currents)
        return float(ordered[-1] - ordered[-2])


@dataclass(frozen=True)
class WTATransientResult:
    """Transient solution of the WTA competition.

    Attributes
    ----------
    time:
        Time points (seconds).
    outputs:
        Output currents, shape ``(n_cells, len(time))`` (amperes).
    winner:
        Index of the cell that won.
    resolution_time:
        First time the winner's output exceeds ``resolve_fraction`` of
        the bias current while every loser is below the loser threshold;
        ``inf`` when unresolved within the simulated window.
    """

    time: np.ndarray
    outputs: np.ndarray
    winner: int
    resolution_time: float

    @property
    def resolved(self) -> bool:
        return np.isfinite(self.resolution_time)


def wta_transient(
    input_currents: np.ndarray,
    i_bias: float = 8e-6,
    tau: float = 25e-12,
    t_stop: float = 600e-12,
    n_points: int = 1201,
    resolve_fraction: float = 0.9,
    loser_fraction: float = 0.1,
    seed_spread: float = 1e-3,
) -> WTATransientResult:
    """Simulate the WTA cells' output-current competition.

    The state is each cell's share ``x_i`` of the bias current (outputs
    start nearly equal).  The dynamics are the current-mode competition

        tau dx_i/dt = x_i * (I_i - sum_j x_j I_j / sum_j x_j) / I_scale

    — cells whose input exceeds the population's weighted mean grow at
    the expense of the rest, which is the small-signal behaviour of a
    shared-source current-mode WTA.  ``I_scale`` is the mean input, so
    the resolution time scales with the *relative* gap, matching the
    worst-case (minimum adjacent-gap) delay measurements of Fig. 6.

    Parameters
    ----------
    input_currents:
        Wordline currents entering the WTA (amperes).
    i_bias:
        Total output bias current (the Fig. 5c output scale, ~8 uA).
    tau:
        Competition time constant (seconds).
    resolve_fraction, loser_fraction:
        Output thresholds declaring the winner resolved.
    seed_spread:
        Tiny initial asymmetry (fraction) so exact ties break
        deterministically toward the lowest index.
    """
    currents = np.asarray(input_currents, dtype=float)
    if currents.ndim != 1 or currents.size < 2:
        raise ValueError("need at least two input currents")
    if np.any(currents < 0):
        raise ValueError("input currents must be non-negative")
    check_positive(i_bias, "i_bias")
    check_positive(tau, "tau")
    check_positive(t_stop, "t_stop")
    if not 0.0 < loser_fraction < resolve_fraction < 1.0:
        raise ValueError("need 0 < loser_fraction < resolve_fraction < 1")

    n = currents.size
    i_scale = float(np.mean(currents)) or 1e-12
    x0 = np.full(n, 1.0 / n)
    # Deterministic tie-breaking asymmetry favouring lower indices.
    x0 *= 1.0 + seed_spread * np.linspace(1.0, 0.0, n)
    x0 /= x0.sum()

    def rhs(_t, x):
        x = np.maximum(x, 1e-12)
        mean_fitness = float(np.dot(x, currents) / x.sum())
        return x * (currents - mean_fitness) / (tau * i_scale)

    t_eval = np.linspace(0.0, t_stop, n_points)
    sol = solve_ivp(
        rhs, (0.0, t_stop), x0, t_eval=t_eval, method="RK45", rtol=1e-7, atol=1e-12
    )
    shares = np.clip(sol.y, 0.0, None)
    totals = shares.sum(axis=0)
    totals[totals == 0] = 1.0
    shares = shares / totals[None, :]
    outputs = i_bias * shares

    winner = int(np.argmax(shares[:, -1]))
    win_ok = shares[winner] >= resolve_fraction
    losers = np.delete(shares, winner, axis=0)
    lose_ok = (
        np.all(losers <= loser_fraction, axis=0)
        if losers.size
        else np.ones_like(win_ok, dtype=bool)
    )
    resolved = win_ok & lose_ok
    resolution_time = float(t_eval[np.argmax(resolved)]) if resolved.any() else float("inf")

    return WTATransientResult(
        time=t_eval, outputs=outputs, winner=winner, resolution_time=resolution_time
    )
