"""Inference delay model (Fig. 6a/6c).

Delay is measured as the time from bitline activation to a resolved WTA
winner in the worst case (minimum gap between adjacent wordline
currents).  The behavioural decomposition:

* fixed front-end overhead (clocking, BL drivers) — ``t_base``;
* wordline settling, proportional to the attached column count (wire/
  junction capacitance) — ``t_per_col * cols``;
* WTA common-node loading, proportional to the competing row count —
  ``t_per_row * rows``;
* gap-dependent WTA resolution, logarithmic in the ratio of the total
  competing current to the worst-case adjacent gap — ``t_gap_coeff *
  ln(I_total / delta_I)``.

Constants are calibrated so the Fig. 6 sweeps land on the paper's ranges
(200 -> ~800 ps over 2-256 columns at 2 rows; 200 -> ~1000 ps over 2-32
rows at 32 columns); see EXPERIMENTS.md for measured-vs-paper values.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crossbar.parameters import CircuitParameters
from repro.utils.validation import check_positive, check_positive_int


class DelayModel:
    """Worst-case single-inference latency of the FeBiM macro."""

    def __init__(self, params: Optional[CircuitParameters] = None):
        self.params = params or CircuitParameters()

    def wordline_settling(self, cols: int) -> float:
        """WL settling component (seconds)."""
        check_positive_int(cols, "cols")
        return self.params.t_per_col * cols

    def wta_loading(self, rows: int) -> float:
        """WTA common-node loading component (seconds)."""
        check_positive_int(rows, "rows")
        return self.params.t_per_row * rows

    @staticmethod
    def default_delta_i(i_cell_max: float = 1.0e-6, levels: int = 4) -> float:
        """The worst-case adjacent-gap default: one cell LSB (amperes).

        Shared by :meth:`inference_delay` (when ``delta_i`` is omitted)
        and the energy model's batch path, so the two can never drift.
        """
        return i_cell_max * 0.9 / max(levels - 1, 1)

    def gap_resolution(self, i_total: float, delta_i: float) -> float:
        """Gap-dependent WTA resolution component (seconds).

        ``i_total`` is the summed competing current, ``delta_i`` the
        worst-case gap between adjacent wordline currents (one LSB of the
        cell spec unless measured currents say otherwise).
        """
        check_positive(i_total, "i_total")
        check_positive(delta_i, "delta_i")
        ratio = max(i_total / delta_i, 1.0)
        return self.params.t_gap_coeff * float(np.log(ratio))

    def inference_delay(
        self,
        rows: int,
        cols: int,
        i_total: Optional[float] = None,
        delta_i: Optional[float] = None,
        i_cell_max: float = 1.0e-6,
        levels: int = 4,
    ) -> float:
        """Total worst-case inference delay (seconds).

        When ``i_total``/``delta_i`` are omitted, the worst case is
        constructed from the geometry: every activated cell conducting
        near mid-range and adjacent wordlines separated by a single cell
        LSB (``i_cell_max / (levels - 1)`` and change).
        """
        check_positive_int(rows, "rows")
        check_positive_int(cols, "cols")
        if i_total is None:
            i_total = rows * cols * 0.55 * i_cell_max
        if delta_i is None:
            delta_i = self.default_delta_i(i_cell_max, levels)
        return (
            self.params.t_base
            + self.wordline_settling(cols)
            + self.wta_loading(rows)
            + self.gap_resolution(i_total, delta_i)
        )

    def gap_resolution_batch(self, i_total: np.ndarray, delta_i: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`gap_resolution` over per-sample currents/gaps.

        Both arguments broadcast; every element equals the scalar method
        applied to the corresponding ``(i_total, delta_i)`` pair
        bit-for-bit (same ``max`` clamp, same ``log``).
        """
        i_total = np.asarray(i_total, dtype=float)
        delta_i = np.asarray(delta_i, dtype=float)
        if np.any(i_total <= 0):
            raise ValueError("i_total must be positive")
        if np.any(delta_i <= 0):
            raise ValueError("delta_i must be positive")
        ratio = np.maximum(i_total / delta_i, 1.0)
        return self.params.t_gap_coeff * np.log(ratio)

    def inference_delay_batch(
        self,
        rows: int,
        cols: int,
        i_total: np.ndarray,
        delta_i: np.ndarray,
    ) -> np.ndarray:
        """Per-sample worst-case delays for a batch of inferences.

        ``i_total``/``delta_i`` hold one entry per sample (shapes
        broadcast); the result stacks :meth:`inference_delay` over the
        samples without the per-sample Python overhead.  The summation
        order matches the scalar method exactly, keeping batched delays
        bit-identical to the legacy loop.
        """
        check_positive_int(rows, "rows")
        check_positive_int(cols, "cols")
        return (
            self.params.t_base
            + self.wordline_settling(cols)
            + self.wta_loading(rows)
            + self.gap_resolution_batch(i_total, delta_i)
        )

    def column_sweep(self, rows: int, col_counts) -> np.ndarray:
        """Delay per column count (the Fig. 6a series), seconds."""
        return np.array(
            [self.inference_delay(rows, int(c)) for c in col_counts]
        )

    def row_sweep(self, cols: int, row_counts) -> np.ndarray:
        """Delay per row count (the Fig. 6c series), seconds."""
        return np.array(
            [self.inference_delay(int(r), cols) for r in row_counts]
        )
