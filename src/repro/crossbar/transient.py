"""Macro-level inference transient: WL settling coupled into the WTA.

The behavioural :class:`~repro.crossbar.timing.DelayModel` gives the
*calibrated worst-case* latency; this module produces the actual
waveform a SPECTRE run would show (the paper's Fig. 5c, but for the
whole macro): each wordline's current rises with an RC time constant set
by its attached column capacitance, and those rising currents drive the
replicator-style WTA competition.  The result exposes *when* the winner
becomes distinguishable for a real activation pattern, including the
transient hazard where an early-settling loser briefly leads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.integrate import solve_ivp

from repro.crossbar.parameters import CircuitParameters
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MacroTransientResult:
    """Full-macro inference transient.

    Attributes
    ----------
    time:
        Time points (seconds).
    wordline_currents:
        Settling I_WL(t), shape ``(rows, len(time))``.
    wta_outputs:
        WTA output currents, same shape.
    winner:
        Final winner index.
    resolution_time:
        First time the winner holds >= ``resolve_fraction`` of the bias
        and keeps it to the end (guards against transient hazards).
    """

    time: np.ndarray
    wordline_currents: np.ndarray
    wta_outputs: np.ndarray
    winner: int
    resolution_time: float

    @property
    def resolved(self) -> bool:
        return np.isfinite(self.resolution_time)


def macro_transient(
    final_currents: np.ndarray,
    cols: int,
    params: Optional[CircuitParameters] = None,
    r_driver: float = 2e4,
    i_bias: float = 8e-6,
    tau_wta: float = 25e-12,
    t_stop: float = 1.2e-9,
    n_points: int = 1201,
    resolve_fraction: float = 0.9,
    settle_spread: float = 0.15,
) -> MacroTransientResult:
    """Simulate one full inference: WL settling + WTA competition.

    Parameters
    ----------
    final_currents:
        Steady-state wordline currents (amperes) — e.g. from
        :meth:`FeFETCrossbar.wordline_currents`.
    cols:
        Attached columns per wordline (sets the WL capacitance and hence
        the settling time constant ``tau = r_driver * cols * c_wl``).
    r_driver:
        Effective wordline driver/source resistance (ohms).
    settle_spread:
        Fractional spread of per-row settling constants (layout skew);
        deterministically alternates so the *losing* rows can settle
        first and create the transient-hazard scenario.
    """
    currents = np.asarray(final_currents, dtype=float)
    if currents.ndim != 1 or currents.size < 2:
        raise ValueError("need at least two wordline currents")
    if np.any(currents < 0):
        raise ValueError("currents must be non-negative")
    check_positive(cols, "cols")
    check_positive(t_stop, "t_stop")
    params = params or CircuitParameters()

    n = currents.size
    tau_wl = r_driver * cols * params.c_wl_per_cell
    # Deterministic per-row skew: even rows fast, odd rows slow.
    skew = 1.0 + settle_spread * np.where(np.arange(n) % 2 == 0, -1.0, 1.0)
    taus = np.maximum(tau_wl * skew, 1e-15)

    t_eval = np.linspace(0.0, t_stop, n_points)
    # I_WL(t): first-order settling toward the steady state.
    settling = currents[:, None] * (1.0 - np.exp(-t_eval[None, :] / taus[:, None]))

    i_scale = float(np.mean(currents)) or 1e-12
    x0 = np.full(n, 1.0 / n)
    x0 *= 1.0 + 1e-3 * np.linspace(1.0, 0.0, n)
    x0 /= x0.sum()

    def rhs(t, x):
        x = np.maximum(x, 1e-12)
        inst = currents * (1.0 - np.exp(-t / taus))
        mean_fitness = float(np.dot(x, inst) / x.sum())
        return x * (inst - mean_fitness) / (tau_wta * i_scale)

    sol = solve_ivp(
        rhs, (0.0, t_stop), x0, t_eval=t_eval, method="RK45", rtol=1e-7, atol=1e-12
    )
    shares = np.clip(sol.y, 0.0, None)
    totals = shares.sum(axis=0)
    totals[totals == 0] = 1.0
    shares /= totals[None, :]
    outputs = i_bias * shares

    winner = int(np.argmax(shares[:, -1]))
    held = shares[winner] >= resolve_fraction
    # Resolution = the start of the final contiguous held window.
    if held[-1]:
        idx = len(held) - 1
        while idx > 0 and held[idx - 1]:
            idx -= 1
        resolution_time = float(t_eval[idx])
    else:
        resolution_time = float("inf")

    return MacroTransientResult(
        time=t_eval,
        wordline_currents=settling,
        wta_outputs=outputs,
        winner=winner,
        resolution_time=resolution_time,
    )
