"""Command-line interface: ``febim <command>``.

Commands
--------
``train``    Train a GNBC on a bundled dataset, program the crossbar,
             report software/quantised/hardware accuracy and circuit
             metrics; optionally save the model artifact.
``eval``     Load a saved model artifact and score it on a dataset.
``table1``   Regenerate the Table 1 comparison.
``sweep``    Print the Fig. 6 delay/energy scalability sweeps.
``bench``    Measure batched read-path throughput (samples/sec sweep
             over batch sizes, vs the per-sample baseline loop).
             ``--backend`` runs the sweep on any registered array
             technology (fefet/ideal/cmos/memristor).
``serve``    Run a mixed-tenant online serving workload through the
             micro-batching scheduler and report served throughput,
             occupancy and latency against the offline ceiling.
             ``--deployment spec.json`` drives the traffic through a
             declarative replica deployment instead (cost/round-robin/
             sticky/mirror routing, per-replica telemetry).
``trace``    Run a traced workload and print sampled request traces —
             the admit/queue/execute (and failover) span decomposition
             with modeled device delay and energy on the execute span.
``events``   Replay the observability flight recorder from a bursty
             autoscale run: sheds, displacements, failovers and scale
             decisions in causal order, filterable and JSONL-dumpable.
``deploy``   Validate a deployment spec JSON against a registry,
             materialise and probe every replica, print the replica
             table (a dry-run apply).
``submit``   One-shot request against a registry directory: register
             (if needed), route, serve, print the result.
``cluster``  Drive a workload through a multi-process deployment
             (``placement: process`` — supervised worker subprocesses
             behind the wire protocol); ``--kill-worker`` SIGKILLs a
             worker mid-burst and reports the failover/respawn.
``reliability``  Run a Monte-Carlo fault or aging campaign (stuck
             cells, dead lines, retention bake) with a selectable
             mitigation strategy over a process pool.
``info``     Show calibrated device/circuit parameters.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

def _cmd_train(args: argparse.Namespace) -> int:
    from repro.analysis.efficiency import summarize_pipeline
    from repro.core.pipeline import FeBiMPipeline
    from repro.datasets import load_dataset, train_test_split
    from repro.devices.variation import VariationModel

    data = load_dataset(args.dataset)
    print(data.describe())
    X_tr, X_te, y_tr, y_te = train_test_split(
        data.data, data.target, test_size=args.test_size, seed=args.seed
    )
    variation = VariationModel.from_millivolts(args.sigma_vth_mv)
    pipe = FeBiMPipeline(
        q_f=args.qf, q_l=args.ql, variation=variation, seed=args.seed
    ).fit(X_tr, y_tr)
    rows, cols = pipe.engine_.shape
    print(f"crossbar: {rows} x {cols}, {pipe.engine_.spec.n_levels} states/cell")
    for mode in ("software", "quantized", "hardware"):
        print(f"accuracy [{mode:9s}] {pipe.score(X_te, y_te, mode=mode) * 100:6.2f} %")
    summary = summarize_pipeline(pipe, X_te, y_te)
    print(summary.format_lines())
    if args.save:
        from repro.io import save_model

        path = save_model(args.save, pipe.quantized_model_, pipe.engine_.spec)
        print(f"model artifact written to {path}")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.bayes.discretize import FeatureDiscretizer
    from repro.core.engine import FeBiMEngine
    from repro.datasets import load_dataset, train_test_split
    from repro.io import load_model

    model, spec = load_model(args.model)
    engine = FeBiMEngine(model, spec=spec, seed=args.seed)
    data = load_dataset(args.dataset)
    X_tr, X_te, y_tr, y_te = train_test_split(
        data.data, data.target, test_size=args.test_size, seed=args.seed
    )
    widths = {t.shape[1] for t in model.likelihood_levels}
    if len(widths) != 1:
        print("error: artifact has heterogeneous evidence widths", file=sys.stderr)
        return 2
    disc = FeatureDiscretizer(widths.pop()).fit(X_tr)
    acc = engine.score(disc.transform(X_te), y_te)
    print(f"crossbar {engine.shape[0]} x {engine.shape[1]}")
    print(f"hardware accuracy on {args.dataset}: {acc * 100:.2f} %")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1_comparison import (
        format_table1_experiment,
        run_table1,
    )

    print(format_table1_experiment(run_table1(seed=args.seed)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.fig6_scalability import format_fig6, run_fig6

    print(format_fig6(run_fig6()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.throughput import (
        format_throughput,
        run_throughput,
        throughput_to_dict,
    )

    try:
        batch_sizes = [int(b) for b in args.batch_sizes.split(",") if b.strip()]
    except ValueError:
        print("error: --batch-sizes must be comma-separated integers", file=sys.stderr)
        return 2
    if not batch_sizes or any(b < 1 for b in batch_sizes):
        print("error: --batch-sizes needs at least one integer >= 1", file=sys.stderr)
        return 2
    result = run_throughput(
        dataset=args.dataset,
        batch_sizes=batch_sizes,
        repeats=args.repeats,
        q_f=args.qf,
        q_l=args.ql,
        include_loop=not args.no_baseline,
        seed=args.seed,
        backend=args.backend,
        kernel=args.kernel,
    )
    if args.json:
        print(json.dumps(throughput_to_dict(result), indent=2))
    else:
        print(format_throughput(result))
    return 0


def _write_metrics(path: str, metrics) -> None:
    """Write a metrics time-series (``MetricsPoint.to_dict`` rows) as
    JSONL — the ``--metrics-out`` sink."""
    import json

    with open(path, "w") as fh:
        for point in metrics:
            fh.write(json.dumps(point, allow_nan=False) + "\n")


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serving.scheduler import BatchPolicy
    from repro.serving.workload import format_serving, run_serving_workload

    if args.slo:
        from repro.serving.workload import (
            format_autoscale_run,
            run_autoscale_workload,
        )

        # --metrics-out needs the observability plane armed; the
        # maintenance thread then samples the ring on its cadence.
        trace_rate = args.trace_rate
        if args.metrics_out and trace_rate <= 0:
            trace_rate = 0.05
        result = run_autoscale_workload(seed=args.seed, trace_rate=trace_rate)
        if args.metrics_out:
            _write_metrics(args.metrics_out, result.metrics)
            print(f"metrics time-series written to {args.metrics_out}")
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            print(format_autoscale_run(result))
        return 0 if result.failed == 0 else 1

    if args.deployment:
        if args.metrics_out or args.trace_rate > 0:
            print(
                "error: --metrics-out / --trace-rate are not supported with "
                "--deployment (use the plain or --slo workload)",
                file=sys.stderr,
            )
            return 2
        from repro.io import load_deployment
        from repro.serving.registry import ModelRegistry
        from repro.serving.workload import (
            format_deployment_run,
            run_deployment_workload,
        )

        if not args.registry:
            print(
                "error: --deployment needs --registry (the directory the "
                "deployed model is registered in)",
                file=sys.stderr,
            )
            return 2
        try:
            deployment = load_deployment(args.deployment)
            result = run_deployment_workload(
                ModelRegistry(args.registry, backend=args.backend),
                deployment,
                n_requests=args.requests,
                submitters=args.submitters,
                policy=BatchPolicy(
                    max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
                ),
                seed=args.seed,
            )
        except (ValueError, KeyError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            print(format_deployment_run(result))
        return 0 if result.errors == 0 else 1

    result = run_serving_workload(
        dataset=args.dataset,
        n_models=args.models,
        n_requests=args.requests,
        submitters=args.submitters,
        policy=BatchPolicy(max_batch=args.max_batch, max_wait_ms=args.max_wait_ms),
        q_f=args.qf,
        q_l=args.ql,
        registry_root=args.registry,
        seed=args.seed,
        backend=args.backend,
        trace_rate=args.trace_rate,
        metrics_period_s=0.1 if args.metrics_out else None,
    )
    if args.metrics_out:
        _write_metrics(args.metrics_out, result.metrics)
        print(f"metrics time-series written to {args.metrics_out}")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(format_serving(result))
    if args.report and not args.json:
        snapshot = result.telemetry
        print(f"drain clean: {snapshot.in_flight == 0}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.serving.observability import format_trace_dicts

    if not 0.0 < args.rate <= 1.0:
        print("error: --rate must lie in (0, 1]", file=sys.stderr)
        return 2
    if args.slo:
        from repro.serving.workload import run_autoscale_workload

        result = run_autoscale_workload(seed=args.seed, trace_rate=args.rate)
    else:
        from repro.serving.workload import run_serving_workload

        result = run_serving_workload(
            n_models=args.models,
            n_requests=args.requests,
            submitters=args.submitters,
            seed=args.seed,
            trace_rate=args.rate,
        )
    traces = list(result.traces)
    if args.out:
        with open(args.out, "w") as fh:
            for trace in traces:
                fh.write(json.dumps(trace) + "\n")
        print(f"{len(traces)} traces written to {args.out}")
        return 0
    if args.limit is not None:
        traces = traces[: args.limit]
    if args.json:
        for trace in traces:
            print(json.dumps(trace))
    else:
        print(format_trace_dicts(traces))
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    import json

    from repro.serving.observability import EVENT_KINDS, format_events
    from repro.serving.workload import run_autoscale_workload

    kinds = None
    if args.kinds:
        kinds = {k.strip() for k in args.kinds.split(",") if k.strip()}
        unknown = kinds - EVENT_KINDS
        if unknown:
            print(
                f"error: unknown event kinds: {', '.join(sorted(unknown))} "
                f"(taxonomy: {', '.join(sorted(EVENT_KINDS))})",
                file=sys.stderr,
            )
            return 2
    result = run_autoscale_workload(
        seed=args.seed,
        trace_rate=args.rate,
        spike_factor=args.spike_factor,
    )
    events = [
        e for e in result.flight if kinds is None or e["kind"] in kinds
    ]
    if args.out:
        with open(args.out, "w") as fh:
            for event in events:
                fh.write(json.dumps(event, allow_nan=False) + "\n")
        print(f"{len(events)} events written to {args.out}")
        return 0
    if args.json:
        for event in events:
            print(json.dumps(event, allow_nan=False))
    else:
        print(format_events(events))
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    import json

    from repro.serving.workload import format_health_run, run_health_workload

    if not 0.0 < args.warn_ratio <= 1.0:
        print("error: --warn-ratio must lie in (0, 1]", file=sys.stderr)
        return 2
    if args.drift_rate <= 0.0:
        print("error: --drift-rate must be > 0", file=sys.stderr)
        return 2
    result = run_health_workload(
        warn_ratio=args.warn_ratio,
        drift_rate=args.drift_rate,
        seed=args.seed,
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, allow_nan=False)
            fh.write("\n")
        print(f"health run written to {args.out}")
        return 0
    if args.json:
        print(json.dumps(result.to_dict(), allow_nan=False))
    else:
        print(format_health_run(result))
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    import json

    from repro.io import load_deployment
    from repro.serving.registry import ModelRegistry
    from repro.serving.server import FeBiMServer

    try:
        deployment = load_deployment(args.spec)
    except (ValueError, OSError) as exc:
        print(f"error: invalid deployment spec: {exc}", file=sys.stderr)
        return 2
    registry = ModelRegistry(args.registry, backend=args.backend)
    if deployment.model not in registry:
        known = ", ".join(sorted(registry.list_models())) or "<none>"
        print(
            f"error: deployment model {deployment.model!r} is not in the "
            f"registry (registered: {known})",
            file=sys.stderr,
        )
        return 2
    if args.validate_only:
        print(f"spec OK: {deployment.describe()}")
        return 0
    # Dry-run apply: materialise and probe every replica exactly as a
    # live server would, then report the replica table.
    with FeBiMServer(registry, seed=args.seed) as server:
        try:
            applied = server.deploy(deployment)
        except (ValueError, KeyError) as exc:
            print(f"error: deployment failed to apply: {exc}", file=sys.stderr)
            return 2
        statuses = [s.to_dict() for s in server.router.status(deployment.model)]
    if args.json:
        print(
            json.dumps(
                {
                    "deployment": deployment.to_dict(),
                    "version": applied.version,
                    "replicas": statuses,
                },
                indent=2,
            )
        )
    else:
        print(f"applied: {deployment.model}@v{applied.version} "
              f"policy={deployment.policy.kind}")
        for status in statuses:
            print(
                f"  {status['replica']:26s} {status['state']:8s} "
                f"unit delay {status['unit_delay_s'] * 1e9:8.1f} ns  "
                f"weight {status['weight']:g}"
            )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.serving.registry import ModelRegistry
    from repro.serving.scheduler import BatchPolicy
    from repro.serving.server import FeBiMServer

    try:
        levels = [int(v) for v in args.levels.split(",") if v.strip()]
    except ValueError:
        print("error: --levels must be comma-separated integers", file=sys.stderr)
        return 2
    if not levels:
        print("error: --levels needs at least one integer", file=sys.stderr)
        return 2
    registry = ModelRegistry(args.registry, backend=args.backend)
    if args.model not in registry:
        known = ", ".join(sorted(registry.list_models())) or "<none>"
        print(
            f"error: no model {args.model!r} in registry "
            f"(registered: {known})",
            file=sys.stderr,
        )
        return 2
    with FeBiMServer(
        registry,
        policy=BatchPolicy(max_batch=args.max_batch, max_wait_ms=args.max_wait_ms),
        seed=args.seed,
    ) as server:
        try:
            result = server.predict(
                args.model, levels, version=args.version, timeout=60.0
            )
        except (ValueError, KeyError) as exc:
            print(f"error: request rejected: {exc}", file=sys.stderr)
            return 2
        payload = {
            "model": result.model,
            "prediction": int(result.prediction),
            "delay_s": result.delay,
            "energy_j": result.energy_total,
            "batch_size": result.batch_size,
            "queue_wait_ms": result.queue_wait_s * 1e3,
        }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"model       {payload['model']}")
        print(f"prediction  {payload['prediction']}")
        print(f"delay       {payload['delay_s'] * 1e9:.2f} ns")
        print(f"energy      {payload['energy_j'] * 1e15:.2f} fJ")
        print(
            f"served in a batch of {payload['batch_size']} after "
            f"{payload['queue_wait_ms']:.2f} ms queued"
        )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.io import load_deployment
    from repro.serving.deployment import PlacementSpec
    from repro.serving.registry import ModelRegistry
    from repro.serving.scheduler import BatchPolicy
    from repro.serving.workload import format_cluster_run, run_cluster_workload

    try:
        deployment = load_deployment(args.spec)
    except (ValueError, OSError) as exc:
        print(f"error: invalid deployment spec: {exc}", file=sys.stderr)
        return 2
    if args.workers is not None:
        # Force a spec onto the process placement without editing the
        # file — handy for trying a local spec across worker counts.
        try:
            placement = PlacementSpec(kind="process", workers=args.workers).validate()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        deployment = dataclasses.replace(deployment, placement=placement)
    if deployment.placement is None or deployment.placement.kind != "process":
        print(
            "error: the cluster workload needs 'placement': {'kind': "
            "'process'} in the spec (or --workers N to force it)",
            file=sys.stderr,
        )
        return 2
    registry = ModelRegistry(args.registry, backend=args.backend)
    try:
        result = run_cluster_workload(
            registry,
            deployment,
            n_requests=args.requests,
            submitters=args.submitters,
            policy=BatchPolicy(
                max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
            ),
            seed=args.seed,
            kill_worker=args.kill_worker,
        )
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"cluster run written to {args.out}")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    elif not args.out:
        print(format_cluster_run(result))
    return 0 if result.errors == 0 else 1


def _parse_float_list(text: str, flag: str) -> List[float]:
    try:
        values = [float(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise ValueError(f"{flag} must be comma-separated numbers") from None
    if not values:
        raise ValueError(f"{flag} needs at least one number")
    return values


def _cmd_reliability(args: argparse.Namespace) -> int:
    import json

    from repro.reliability.campaign import (
        CampaignConfig,
        aging_points,
        fault_rate_points,
        format_campaign,
        run_campaign,
    )
    from repro.devices.retention import RetentionModel

    # Every usage error follows the CLI contract: message on stderr,
    # exit code 2 — never a traceback or a bare SystemExit(1).
    try:
        if args.ages is not None:
            ages = _parse_float_list(args.ages, "--ages")
            if any(a < 0 for a in ages):
                raise ValueError("--ages must be >= 0")
            points = aging_points(ages)
        else:
            rates = _parse_float_list(args.rates, "--rates")
            if any(not 0.0 <= r <= 1.0 for r in rates):
                raise ValueError("--rates must lie in [0, 1]")
            points = fault_rate_points(rates)
        config = CampaignConfig(
            points=points,
            dataset=args.dataset,
            trials=args.trials,
            q_f=args.qf,
            q_l=args.ql,
            mitigation=args.mitigation,
            spare_rows=args.spare_rows,
            max_rows=args.max_rows,
            retention=RetentionModel(drift_rate=args.drift_rate_mv * 1e-3),
            backend=args.backend,
            shared_model=args.shared_model,
        )
        result = run_campaign(config, seed=args.seed, workers=args.workers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(format_campaign(result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report, write_report

    if args.output:
        path = write_report(
            args.output, epochs=args.epochs, seed=args.seed, fast=args.fast
        )
        print(f"report written to {path}")
    else:
        print(generate_report(epochs=args.epochs, seed=args.seed, fast=args.fast))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.crossbar.parameters import CircuitParameters
    from repro.devices import FeFET, MultiLevelCellSpec, PulseProgrammer

    params = CircuitParameters()
    device = FeFET()
    print("operating point")
    print(f"  V_on/V_off/V_w      {params.v_on} / {params.v_off} / {params.v_write} V")
    print(f"  memory window       [{device.vth_low}, {device.vth_high}] V")
    print(f"  cell area           {params.cell_area * 1e12:.3f} um^2 (45 nm)")
    spec = MultiLevelCellSpec()
    currents = ", ".join(f"{c * 1e6:.1f}" for c in spec.level_currents())
    print(f"  2-bit state currents  [{currents}] uA at V_on")
    table = PulseProgrammer(device, spec).pulse_count_map()
    print(f"  write pulse counts  {table}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.backends import backend_names

    parser = argparse.ArgumentParser(
        prog="febim",
        description="FeBiM: FeFET in-memory Bayesian inference engine "
        "(DAC 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--backend",
            default="fefet",
            choices=backend_names(),
            help="array technology to run on (default fefet)",
        )

    train = sub.add_parser("train", help="train, program and score a GNBC")
    train.add_argument("--dataset", default="iris", choices=["iris", "wine", "cancer"])
    train.add_argument("--qf", type=int, default=4, help="feature bits (default 4)")
    train.add_argument("--ql", type=int, default=2, help="likelihood bits (default 2)")
    train.add_argument("--test-size", type=float, default=0.7)
    train.add_argument("--sigma-vth-mv", type=float, default=0.0)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", metavar="PATH", help="write the model artifact JSON")
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("eval", help="score a saved model artifact")
    evaluate.add_argument("model", help="artifact path from 'train --save'")
    evaluate.add_argument("--dataset", default="iris", choices=["iris", "wine", "cancer"])
    evaluate.add_argument("--test-size", type=float, default=0.7)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.set_defaults(func=_cmd_eval)

    table1 = sub.add_parser("table1", help="regenerate the Table 1 comparison")
    table1.add_argument("--seed", type=int, default=0)
    table1.set_defaults(func=_cmd_table1)

    sweep = sub.add_parser("sweep", help="print the Fig. 6 scalability sweeps")
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser(
        "bench", help="measure batched read-path throughput (samples/sec)"
    )
    bench.add_argument("--dataset", default="iris", choices=["iris", "wine", "cancer"])
    bench.add_argument(
        "--batch-sizes",
        default="1,16,64,256",
        help="comma-separated batch sizes to sweep (default 1,16,64,256)",
    )
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--qf", type=int, default=4)
    bench.add_argument("--ql", type=int, default=2)
    bench.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the slow per-sample baseline loop",
    )
    bench.add_argument("--seed", type=int, default=0)
    add_backend_flag(bench)
    bench.add_argument(
        "--kernel",
        default="reference",
        choices=["reference", "gemm", "fused", "auto"],
        help="read kernel: reference (bit-identical default), gemm, "
        "fused, or auto (per-shape autotuner; choices land in --json)",
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the table",
    )
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run a mixed-tenant online serving workload (micro-batching)",
    )
    serve.add_argument(
        "--dataset",
        default="iris",
        choices=["iris", "wine", "cancer", "synthetic"],
        help="tenant training data; 'synthetic' draws many-class blobs",
    )
    serve.add_argument("--models", type=int, default=2, help="tenant count")
    serve.add_argument("--requests", type=int, default=2048)
    serve.add_argument("--submitters", type=int, default=4)
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument("--qf", type=int, default=4)
    serve.add_argument("--ql", type=int, default=2)
    serve.add_argument(
        "--registry", metavar="DIR", help="persist tenants here (default: temp dir)"
    )
    serve.add_argument(
        "--deployment",
        metavar="SPEC.json",
        help="drive the traffic through this deployment spec instead of "
        "auto-trained tenants (needs --registry with the model registered; "
        "see 'febim deploy')",
    )
    serve.add_argument(
        "--slo",
        action="store_true",
        help="run the SLO-driven autoscale demo instead: a bursty "
        "open-loop trace against a bounded-queue deployment whose "
        "controller grows/shrinks the replica set (exit 0 iff no "
        "request *failed*; load-shed is expected under the spike)",
    )
    serve.add_argument("--seed", type=int, default=0)
    add_backend_flag(serve)
    serve.add_argument(
        "--report",
        action="store_true",
        help="append the drain-clean verdict to the report",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the report",
    )
    serve.add_argument(
        "--trace-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="sample this fraction of requests into traces "
        "(arms observability; traces land in the --json output)",
    )
    serve.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run's telemetry time-series as JSONL "
        "(arms observability; sampled every 100 ms, or on the "
        "maintenance cadence with --slo)",
    )
    serve.set_defaults(func=_cmd_serve)

    trace = sub.add_parser(
        "trace",
        help="run a traced serving workload and print sampled request "
        "traces (admit/queue/execute span decomposition)",
    )
    trace.add_argument(
        "--rate",
        type=float,
        default=0.1,
        help="fraction of requests to trace (default 0.1)",
    )
    trace.add_argument(
        "--slo",
        action="store_true",
        help="trace the bursty autoscale workload instead of the plain "
        "mixed-tenant stream",
    )
    trace.add_argument("--models", type=int, default=2, help="tenant count")
    trace.add_argument("--requests", type=int, default=256)
    trace.add_argument("--submitters", type=int, default=4)
    trace.add_argument(
        "--limit",
        type=int,
        metavar="N",
        help="print only the first N traces",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--json", action="store_true", help="emit one JSON object per trace"
    )
    trace.add_argument(
        "--out", metavar="PATH", help="write the traces as JSONL instead"
    )
    trace.set_defaults(func=_cmd_trace)

    events = sub.add_parser(
        "events",
        help="replay the flight recorder from a bursty autoscale run "
        "(sheds, failovers, scale decisions in causal order)",
    )
    events.add_argument(
        "--kinds",
        metavar="K1,K2",
        help="comma-separated event kinds to keep (default: all)",
    )
    events.add_argument(
        "--rate",
        type=float,
        default=0.05,
        help="trace sample rate while the recorder runs (default 0.05)",
    )
    events.add_argument(
        "--spike-factor",
        type=float,
        default=12.0,
        help="arrival-rate multiplier during the spike (default 12)",
    )
    events.add_argument("--seed", type=int, default=0)
    events.add_argument(
        "--json", action="store_true", help="emit one JSON object per event"
    )
    events.add_argument(
        "--out", metavar="PATH", help="write the events as JSONL instead"
    )
    events.set_defaults(func=_cmd_events)

    health = sub.add_parser(
        "health",
        help="age a live deployment at a drift corner and print the "
        "per-replica device-health timeline (margin collapse -> "
        "early warning -> heal -> recovery)",
    )
    health.add_argument(
        "--warn-ratio",
        type=float,
        default=0.7,
        help="signal-ratio floor that arms the heal ladder in the "
        "early-warning phase (default 0.7)",
    )
    health.add_argument(
        "--drift-rate",
        type=float,
        default=0.2,
        help="retention drift per decade, volts (default 0.2: a leaky "
        "stack corner)",
    )
    health.add_argument("--seed", type=int, default=0)
    health.add_argument(
        "--json", action="store_true", help="emit the full run as one JSON object"
    )
    health.add_argument(
        "--out", metavar="PATH", help="write the run as JSON instead"
    )
    health.set_defaults(func=_cmd_health)

    deploy = sub.add_parser(
        "deploy",
        help="validate a deployment spec and dry-run apply it (replica table)",
    )
    deploy.add_argument("registry", help="registry directory holding the model")
    deploy.add_argument("spec", help="deployment spec JSON (see repro.io.save_deployment)")
    deploy.add_argument(
        "--validate-only",
        action="store_true",
        help="check the spec without materialising any replica",
    )
    deploy.add_argument("--seed", type=int, default=0)
    add_backend_flag(deploy)
    deploy.add_argument("--json", action="store_true", help="emit JSON")
    deploy.set_defaults(func=_cmd_deploy)

    submit = sub.add_parser(
        "submit", help="serve one request from a registry directory"
    )
    submit.add_argument("registry", help="registry directory (see 'serve --registry')")
    submit.add_argument("model", help="registered model name")
    submit.add_argument(
        "--levels",
        required=True,
        help="comma-separated discretised evidence levels, e.g. 3,0,1,2",
    )
    submit.add_argument("--version", type=int, help="pin a version (default latest)")
    submit.add_argument("--max-batch", type=int, default=64)
    submit.add_argument("--max-wait-ms", type=float, default=2.0)
    submit.add_argument("--seed", type=int, default=0)
    add_backend_flag(submit)
    submit.add_argument("--json", action="store_true", help="emit JSON")
    submit.set_defaults(func=_cmd_submit)

    cluster = sub.add_parser(
        "cluster",
        help="drive a workload through a multi-process (placement: "
        "process) cluster, optionally SIGKILLing a worker mid-burst",
    )
    cluster.add_argument("registry", help="registry directory holding the model")
    cluster.add_argument(
        "spec", help="deployment spec JSON (see repro.io.save_deployment)"
    )
    cluster.add_argument(
        "--workers",
        type=int,
        help="force 'process' placement with this many workers, "
        "overriding the spec's placement block",
    )
    cluster.add_argument("--requests", type=int, default=256)
    cluster.add_argument("--submitters", type=int, default=4)
    cluster.add_argument(
        "--kill-worker",
        action="store_true",
        help="SIGKILL one worker a quarter into the burst and report "
        "the supervised failover (the chaos acceptance scenario)",
    )
    cluster.add_argument("--max-batch", type=int, default=32)
    cluster.add_argument("--max-wait-ms", type=float, default=2.0)
    cluster.add_argument("--seed", type=int, default=0)
    add_backend_flag(cluster)
    cluster.add_argument("--json", action="store_true", help="emit JSON")
    cluster.add_argument(
        "--out", metavar="PATH", help="write the run as JSON instead"
    )
    cluster.set_defaults(func=_cmd_cluster)

    reliability = sub.add_parser(
        "reliability",
        help="run a Monte-Carlo fault/aging campaign with mitigation",
    )
    reliability.add_argument(
        "--dataset", default="iris", choices=["iris", "wine", "cancer"]
    )
    reliability.add_argument(
        "--rates",
        default="0,0.002,0.01,0.05",
        help="comma-separated stuck-cell fault rates to sweep (split "
        "evenly between stuck-on and stuck-off; default 0,0.002,0.01,0.05)",
    )
    reliability.add_argument(
        "--ages",
        metavar="SECONDS",
        help="sweep retention bake ages (seconds) instead of fault rates",
    )
    reliability.add_argument(
        "--drift-rate-mv",
        type=float,
        default=5.0,
        help="retention drift per decade for a half-switched state "
        "(mV; default the calibrated 5.0)",
    )
    reliability.add_argument("--trials", type=int, default=20)
    reliability.add_argument(
        "--workers",
        type=int,
        default=1,
        help="campaign process-pool width (results are bit-identical "
        "at any worker count)",
    )
    reliability.add_argument(
        "--mitigation",
        default="none",
        choices=["none", "refresh", "spare-rows", "retire-tiles"],
    )
    reliability.add_argument(
        "--spare-rows",
        type=int,
        default=2,
        help="spare wordlines manufactured per array (spare-rows mode)",
    )
    reliability.add_argument(
        "--max-rows",
        type=int,
        help="tile row limit — builds tiled engines (required for "
        "retire-tiles)",
    )
    reliability.add_argument("--qf", type=int, default=4)
    reliability.add_argument("--ql", type=int, default=2)
    reliability.add_argument("--seed", type=int, default=0)
    add_backend_flag(reliability)
    reliability.add_argument(
        "--shared-model",
        action="store_true",
        help="train/quantise once per campaign, fresh hardware per "
        "trial (isolates hardware variance, ~2x faster; default "
        "retrains per trial for golden compatibility)",
    )
    reliability.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the table",
    )
    reliability.set_defaults(func=_cmd_reliability)

    report = sub.add_parser(
        "report", help="regenerate the full evaluation (all figures + Table 1)"
    )
    report.add_argument("--epochs", type=int, default=20)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--fast", action="store_true", help="skip the slow grids")
    report.add_argument("--output", metavar="PATH", help="write to a file")
    report.set_defaults(func=_cmd_report)

    info = sub.add_parser("info", help="show calibrated device/circuit parameters")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``febim`` console script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
