"""Command-line interface: ``febim <command>``.

Commands
--------
``train``    Train a GNBC on a bundled dataset, program the crossbar,
             report software/quantised/hardware accuracy and circuit
             metrics; optionally save the model artifact.
``eval``     Load a saved model artifact and score it on a dataset.
``table1``   Regenerate the Table 1 comparison.
``sweep``    Print the Fig. 6 delay/energy scalability sweeps.
``bench``    Measure batched read-path throughput (samples/sec sweep
             over batch sizes, vs the per-sample baseline loop).
``info``     Show calibrated device/circuit parameters.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

def _cmd_train(args: argparse.Namespace) -> int:
    from repro.analysis.efficiency import summarize_pipeline
    from repro.core.pipeline import FeBiMPipeline
    from repro.datasets import load_dataset, train_test_split
    from repro.devices.variation import VariationModel

    data = load_dataset(args.dataset)
    print(data.describe())
    X_tr, X_te, y_tr, y_te = train_test_split(
        data.data, data.target, test_size=args.test_size, seed=args.seed
    )
    variation = VariationModel.from_millivolts(args.sigma_vth_mv)
    pipe = FeBiMPipeline(
        q_f=args.qf, q_l=args.ql, variation=variation, seed=args.seed
    ).fit(X_tr, y_tr)
    rows, cols = pipe.engine_.shape
    print(f"crossbar: {rows} x {cols}, {pipe.engine_.spec.n_levels} states/cell")
    for mode in ("software", "quantized", "hardware"):
        print(f"accuracy [{mode:9s}] {pipe.score(X_te, y_te, mode=mode) * 100:6.2f} %")
    summary = summarize_pipeline(pipe, X_te, y_te)
    print(summary.format_lines())
    if args.save:
        from repro.io import save_model

        path = save_model(args.save, pipe.quantized_model_, pipe.engine_.spec)
        print(f"model artifact written to {path}")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.bayes.discretize import FeatureDiscretizer
    from repro.core.engine import FeBiMEngine
    from repro.datasets import load_dataset, train_test_split
    from repro.io import load_model

    model, spec = load_model(args.model)
    engine = FeBiMEngine(model, spec=spec, seed=args.seed)
    data = load_dataset(args.dataset)
    X_tr, X_te, y_tr, y_te = train_test_split(
        data.data, data.target, test_size=args.test_size, seed=args.seed
    )
    widths = {t.shape[1] for t in model.likelihood_levels}
    if len(widths) != 1:
        print("error: artifact has heterogeneous evidence widths", file=sys.stderr)
        return 2
    disc = FeatureDiscretizer(widths.pop()).fit(X_tr)
    acc = engine.score(disc.transform(X_te), y_te)
    print(f"crossbar {engine.shape[0]} x {engine.shape[1]}")
    print(f"hardware accuracy on {args.dataset}: {acc * 100:.2f} %")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1_comparison import (
        format_table1_experiment,
        run_table1,
    )

    print(format_table1_experiment(run_table1(seed=args.seed)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.fig6_scalability import format_fig6, run_fig6

    print(format_fig6(run_fig6()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.throughput import format_throughput, run_throughput

    try:
        batch_sizes = [int(b) for b in args.batch_sizes.split(",") if b.strip()]
    except ValueError:
        print("error: --batch-sizes must be comma-separated integers", file=sys.stderr)
        return 2
    if not batch_sizes or any(b < 1 for b in batch_sizes):
        print("error: --batch-sizes needs at least one integer >= 1", file=sys.stderr)
        return 2
    result = run_throughput(
        dataset=args.dataset,
        batch_sizes=batch_sizes,
        repeats=args.repeats,
        q_f=args.qf,
        q_l=args.ql,
        include_loop=not args.no_baseline,
        seed=args.seed,
    )
    print(format_throughput(result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report, write_report

    if args.output:
        path = write_report(
            args.output, epochs=args.epochs, seed=args.seed, fast=args.fast
        )
        print(f"report written to {path}")
    else:
        print(generate_report(epochs=args.epochs, seed=args.seed, fast=args.fast))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.crossbar.parameters import CircuitParameters
    from repro.devices import FeFET, MultiLevelCellSpec, PulseProgrammer

    params = CircuitParameters()
    device = FeFET()
    print("operating point")
    print(f"  V_on/V_off/V_w      {params.v_on} / {params.v_off} / {params.v_write} V")
    print(f"  memory window       [{device.vth_low}, {device.vth_high}] V")
    print(f"  cell area           {params.cell_area * 1e12:.3f} um^2 (45 nm)")
    spec = MultiLevelCellSpec()
    currents = ", ".join(f"{c * 1e6:.1f}" for c in spec.level_currents())
    print(f"  2-bit state currents  [{currents}] uA at V_on")
    table = PulseProgrammer(device, spec).pulse_count_map()
    print(f"  write pulse counts  {table}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="febim",
        description="FeBiM: FeFET in-memory Bayesian inference engine "
        "(DAC 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train, program and score a GNBC")
    train.add_argument("--dataset", default="iris", choices=["iris", "wine", "cancer"])
    train.add_argument("--qf", type=int, default=4, help="feature bits (default 4)")
    train.add_argument("--ql", type=int, default=2, help="likelihood bits (default 2)")
    train.add_argument("--test-size", type=float, default=0.7)
    train.add_argument("--sigma-vth-mv", type=float, default=0.0)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", metavar="PATH", help="write the model artifact JSON")
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("eval", help="score a saved model artifact")
    evaluate.add_argument("model", help="artifact path from 'train --save'")
    evaluate.add_argument("--dataset", default="iris", choices=["iris", "wine", "cancer"])
    evaluate.add_argument("--test-size", type=float, default=0.7)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.set_defaults(func=_cmd_eval)

    table1 = sub.add_parser("table1", help="regenerate the Table 1 comparison")
    table1.add_argument("--seed", type=int, default=0)
    table1.set_defaults(func=_cmd_table1)

    sweep = sub.add_parser("sweep", help="print the Fig. 6 scalability sweeps")
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser(
        "bench", help="measure batched read-path throughput (samples/sec)"
    )
    bench.add_argument("--dataset", default="iris", choices=["iris", "wine", "cancer"])
    bench.add_argument(
        "--batch-sizes",
        default="1,16,64,256",
        help="comma-separated batch sizes to sweep (default 1,16,64,256)",
    )
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--qf", type=int, default=4)
    bench.add_argument("--ql", type=int, default=2)
    bench.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the slow per-sample baseline loop",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(func=_cmd_bench)

    report = sub.add_parser(
        "report", help="regenerate the full evaluation (all figures + Table 1)"
    )
    report.add_argument("--epochs", type=int, default=20)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--fast", action="store_true", help="skip the slow grids")
    report.add_argument("--output", metavar="PATH", help="write to a file")
    report.set_defaults(func=_cmd_report)

    info = sub.add_parser("info", help="show calibrated device/circuit parameters")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``febim`` console script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
