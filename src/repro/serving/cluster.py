"""Cluster front end: supervised worker processes behind one serving API.

``placement: process`` hosting.  A :class:`ClusterServer` owns no
engines — it spawns worker subprocesses (:mod:`repro.serving.worker`),
each a full in-process serving stack hosting a slice of every
deployment's replicas, and keeps for itself exactly the two things
that must be global: **routing** and **supervision**.

Routing runs the same pure policy core (:mod:`repro.serving.policy`)
the in-process :class:`~repro.serving.router.Router` runs, over
replica *handles* instead of live replicas — so ``local`` and
``process`` placement make identical decisions.  Replica indices are
cluster-global and minted by the front end: a worker applies its slice
with explicit indices, pinning the per-replica stream seeds, so the
engines a worker materialises are bit-identical to the ones a
single-process deployment would have built.

Supervision is the worker-level heal ladder, run on the
:class:`~repro.serving.server.MaintenanceThread` cadence exactly like
replica health:

* **rung 1 — wait**: a worker is alive while heartbeats arrive; every
  sweep records a ``worker_heartbeat`` event with the age of the last
  one.
* **rung 2 — replace**: a dead connection or a heartbeat older than
  ``lost_after_s`` marks the worker lost (``worker_lost``): its
  in-flight requests fail over to surviving workers immediately
  (recorded ``failover`` events, zero client-visible errors while any
  survivor can serve), its replicas are re-placed onto survivors with
  their *original indices* (same stream seed — the cluster analogue of
  the replace rung's "fresh hardware, same stream", recorded as
  ``replace`` events), and a fresh process is respawned under the same
  worker id (``worker_respawn``).
* **rung 3 — evict**: a worker that burned through ``max_respawns``
  stays down for good; its capacity remains on the survivors.

Shutdown is graceful: drain messages wait out every worker's queues
before ``shutdown`` frames and process joins.

Worker observability is merged, not lost: every event a worker's
telemetry emits arrives as an ``event`` frame and is replayed into the
front end's recorder tagged ``worker=<id>``, so ``febim events`` and
the metrics exporter see the whole cluster.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import socket
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.serving import policy as routing_policy
from repro.serving.deployment import (
    Deployment,
    DeploymentError,
    ReplicaSpec,
    RoutingPolicy,
)
from repro.serving.observability.events import EVENT_KINDS
from repro.serving.policy import DOWN, DRAINING, HEALTHY, RETIRED
from repro.serving.registry import ModelRegistry
from repro.serving.router import MirroredResult, ReplicaStatus
from repro.serving.scheduler import BatchPolicy, Overloaded
from repro.serving.server import MaintenanceThread
from repro.serving.telemetry import Telemetry, TelemetrySnapshot
from repro.serving.transport.protocol import (
    MessageConnection,
    ProtocolError,
    decode_error,
    decode_result,
    make,
)
from repro.serving.worker import worker_main

#: Replica-handle bookkeeping states private to the front end (a
#: replica between owners).  Deliberately outside the policy core's
#: taxonomy: ``serviceable`` never routes to them, ``measure_pressure``
#: never counts them.
UNPLACED = "unplaced"
PLACING = "placing"

#: Heartbeats older than this many periods mean the worker is lost.
LOST_AFTER_PERIODS = 4


class WorkerLost(RuntimeError):
    """A request or control call could not complete: its worker died."""


class _Pending:
    """One in-flight frame awaiting its reply.

    ``on_result(message)`` / ``on_error(exc)`` carry all the
    continuation logic — request failover, mirror vote recording, and
    control-call futures all reduce to this one shape, so the reader
    loop and the worker-loss sweep resolve every kind identically.
    """

    __slots__ = ("on_result", "on_error", "worker_id", "replica")

    def __init__(self, on_result, on_error, worker_id, replica=None):
        self.on_result = on_result
        self.on_error = on_error
        self.worker_id = worker_id
        self.replica = replica


class _WorkerHandle:
    """Front-end view of one worker process."""

    def __init__(self, worker_id: str, process):
        self.worker_id = worker_id
        self.process = process
        self.conn: Optional[MessageConnection] = None
        self.state = "starting"  # starting | up | lost | evicted | stopped
        self.last_heartbeat: Optional[float] = None
        self.respawns = 0
        self.models: set = set()  # deployments this worker hosts a slice of
        self.hello = threading.Event()

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid


class _ReplicaHandle:
    """Front-end view of one replica, wherever it currently lives.

    Duck-types the policy core's candidate surface (``index`` /
    ``state`` / ``unit_delay`` / ``weight`` / ``pending``) so
    arbitration code is shared verbatim with the in-process router.
    ``pending`` counts *front-end* in-flight requests — the quantity
    the cost policy needs, maintained without a round trip.
    """

    def __init__(self, model: str, index: int, spec: ReplicaSpec,
                 worker_id: str, label: str, unit_delay: float):
        self.model = model
        self.index = index
        self.spec = spec
        self.worker_id = worker_id
        self.label = label
        self.state = HEALTHY
        self.unit_delay = unit_delay
        self.pending = 0
        self.drain_step = 0
        self.drain_steps = 0

    @property
    def weight(self) -> float:
        return self.spec.weight


class _ClusterDeployment:
    """One applied deployment's cluster-wide routing view."""

    def __init__(self, spec: Deployment, version: int,
                 replicas: List[_ReplicaHandle]):
        self.spec = spec
        self.version = version
        self.replicas = replicas
        self.rr_counter = itertools.count()
        self.next_index = (
            max(r.index for r in replicas) + 1 if replicas else 0
        )

    @property
    def name(self) -> str:
        return self.spec.model

    @property
    def route(self) -> str:
        return f"{self.name}@v{self.version}"


class _NullMonitor:
    """No single-engine canaries on the front end (workers own the
    engines); satisfies the MaintenanceThread monitor surface."""

    def installed(self):
        return []

    def check(self, name, version):  # pragma: no cover — installed() is empty
        raise KeyError(name)


class _ClusterRouterAdapter:
    """The router-shaped facade supervision and autoscale drive.

    :class:`~repro.serving.autoscale.AutoscaleController` and
    :class:`MaintenanceThread` only ever touch ``deployment_for`` /
    ``status`` / ``add_replica`` / ``retire_replica`` / ``check_all``
    — this adapter maps each onto the cluster, so both reuse the
    single-process control loops unchanged.
    """

    def __init__(self, cluster: "ClusterServer"):
        self._cluster = cluster

    def deployment_for(self, name: str, version=None):
        return self._cluster.deployment_for(name, version)

    def status(self, name: str) -> List[ReplicaStatus]:
        return self._cluster.status(name)

    def add_replica(self, name: str, spec: ReplicaSpec,
                    wear=None, index=None) -> ReplicaStatus:
        return self._cluster.add_replica(name, spec, index=index)

    def retire_replica(self, name: str, index: int,
                       timeout=None, drain_steps: int = 1) -> ReplicaStatus:
        return self._cluster.retire_replica(name, index, timeout=timeout)

    def deployments(self) -> Dict[str, Deployment]:
        return self._cluster.deployments()

    def check_all(self):
        """The supervision sweep, riding the maintenance slot replica
        health uses in-process."""
        return self._cluster.check_workers()


class ClusterServer:
    """Multi-process serving front end (``placement: process``).

    Parameters mirror :class:`~repro.serving.server.FeBiMServer` where
    they overlap — ``registry`` (a path or :class:`ModelRegistry`;
    workers re-open the same root), ``policy`` (micro-batch bounds,
    applied inside each worker), ``seed`` / ``max_rows`` (engine
    materialisation, identical to local placement) — plus the
    cluster-only knobs:

    heartbeat_period_s:
        Worker liveness cadence; a worker is lost after
        ``LOST_AFTER_PERIODS`` silent periods.
    maintenance_period_s:
        Supervision sweep cadence (``None`` disables the background
        thread — call :meth:`check_workers` manually, e.g. in tests).
    max_respawns:
        Respawn budget per worker id before the evict rung.
    spawn_timeout_s:
        Bound on worker start-up and on blocking control calls.

    Use as a context manager for guaranteed worker teardown::

        with ClusterServer(root, seed=0) as cluster:
            cluster.deploy(dep)           # dep.placement.kind == "process"
            cluster.predict("iris", levels)
    """

    def __init__(
        self,
        registry: Union[ModelRegistry, str],
        policy: Optional[BatchPolicy] = None,
        seed: Optional[int] = None,
        max_rows: Optional[int] = None,
        heartbeat_period_s: float = 0.25,
        maintenance_period_s: Optional[float] = 0.25,
        max_respawns: int = 2,
        spawn_timeout_s: float = 60.0,
    ):
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.policy = policy or BatchPolicy()
        self.seed = seed
        self.max_rows = max_rows
        self.heartbeat_period_s = float(heartbeat_period_s)
        self.lost_after_s = LOST_AFTER_PERIODS * self.heartbeat_period_s
        self.max_respawns = int(max_respawns)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.telemetry = Telemetry(self.policy.max_batch)
        self.observability = None
        self.maintenance: Optional[MaintenanceThread] = None
        self.router = _ClusterRouterAdapter(self)
        self._autoscalers: Dict[str, object] = {}
        self._lock = threading.RLock()
        self._workers: Dict[str, _WorkerHandle] = {}
        self._deployments: Dict[str, _ClusterDeployment] = {}
        self._pending: Dict[str, _Pending] = {}
        self._ids = itertools.count()
        self._closed = False
        self._ctx = multiprocessing.get_context("spawn")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(32)
        self._address = self._listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        self._accept_thread.start()
        if maintenance_period_s is not None:
            self.enable_maintenance(maintenance_period_s)

    # ----------------------------------------------------------- connections
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed — shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._greet, args=(MessageConnection(sock),),
                daemon=True,
            ).start()

    def _greet(self, conn: MessageConnection) -> None:
        """Match an inbound connection to its worker via the hello frame."""
        try:
            hello = conn.recv()
        except (ProtocolError, OSError):
            conn.close()
            return
        if hello is None or hello.get("kind") != "hello":
            conn.close()
            return
        worker_id = hello.get("worker")
        with self._lock:
            handle = self._workers.get(worker_id)
            if handle is None or handle.state != "starting":
                conn.close()  # unknown or duplicate hello
                return
            handle.conn = conn
            handle.state = "up"
            handle.last_heartbeat = time.monotonic()
            respawned = handle.respawns > 0
        threading.Thread(
            target=self._reader_loop, args=(handle, conn),
            name=f"cluster-reader-{worker_id}", daemon=True,
        ).start()
        if respawned:
            self.telemetry.record_worker_respawn()
            self.telemetry.emit(
                "worker_respawn", worker=worker_id, pid=hello.get("pid"),
                respawns=handle.respawns,
            )
        else:
            self.telemetry.record_worker_started()
            self.telemetry.emit(
                "worker_start", worker=worker_id, pid=hello.get("pid"),
            )
        handle.hello.set()

    def _reader_loop(self, handle: _WorkerHandle,
                     conn: MessageConnection) -> None:
        while True:
            try:
                message = conn.recv()
            except (ProtocolError, OSError):
                message = None
            if message is None:
                # Only the handle's *current* connection reports the
                # loss — a respawn has already replaced a stale one.
                if handle.conn is conn:
                    self._on_worker_lost(handle, "connection closed")
                return
            try:
                self._on_message(handle, message)
            except Exception:  # noqa: BLE001 — the reader must survive
                pass

    def _on_message(self, handle: _WorkerHandle, message: dict) -> None:
        kind = message["kind"]
        if kind == "heartbeat":
            handle.last_heartbeat = time.monotonic()
            self._fold_heartbeat(message)
            return
        if kind == "event":
            event_kind = message.get("event_kind")
            if event_kind in EVENT_KINDS:
                detail = {
                    str(k): v
                    for k, v in (message.get("detail") or {}).items()
                    if k != "worker"
                }
                self.telemetry.emit(
                    event_kind, worker=message.get("worker"), **detail
                )
            return
        entry = None
        request_id = message.get("id")
        if request_id is not None:
            with self._lock:
                entry = self._pending.pop(request_id, None)
        if entry is None:
            return  # reply raced a worker-loss resolution; already handled
        if kind == "error":
            entry.on_error(decode_error(message.get("error", {})))
        else:
            entry.on_result(message)

    def _fold_heartbeat(self, message: dict) -> None:
        """Refresh per-replica unit delays from a worker's liveness frame.

        State stays front-end-owned: the front end marks down / retires
        / re-places; the worker reports cost so routing tracks real
        queue economics."""
        with self._lock:
            for view in message.get("replicas", ()):
                dep = self._deployments.get(view.get("model"))
                if dep is None:
                    continue
                for replica in dep.replicas:
                    if (
                        replica.index == view.get("index")
                        and replica.worker_id == message.get("worker")
                    ):
                        replica.unit_delay = float(
                            view.get("unit_delay_s", replica.unit_delay)
                        )

    # -------------------------------------------------------------- spawning
    def _worker_config(self) -> dict:
        return {
            "registry_root": str(self.registry.root),
            "backend": self.registry.backend,
            "backend_options": dict(self.registry.backend_options),
            "seed": self.seed,
            "max_rows": self.max_rows,
            "max_batch": self.policy.max_batch,
            "max_wait_ms": self.policy.max_wait_ms,
            "heartbeat_period_s": self.heartbeat_period_s,
        }

    def _spawn(self, handle: _WorkerHandle) -> None:
        handle.hello = threading.Event()
        handle.state = "starting"
        handle.conn = None
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(handle.worker_id, self._address, self._worker_config()),
            name=f"febim-{handle.worker_id}",
            daemon=True,
        )
        handle.process.start()

    def _ensure_workers(self, count: int) -> List[_WorkerHandle]:
        """The first ``count`` workers, spawned and hello'd."""
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            handles = []
            for i in range(count):
                worker_id = f"w{i}"
                handle = self._workers.get(worker_id)
                if handle is None:
                    handle = _WorkerHandle(worker_id, None)
                    self._workers[worker_id] = handle
                    self._spawn(handle)
                handles.append(handle)
        deadline = time.monotonic() + self.spawn_timeout_s
        for handle in handles:
            if not handle.hello.wait(max(deadline - time.monotonic(), 0.0)):
                raise RuntimeError(
                    f"worker {handle.worker_id} did not connect within "
                    f"{self.spawn_timeout_s:g}s"
                )
        return handles

    def _up_workers(self) -> List[_WorkerHandle]:
        with self._lock:
            return [h for h in self._workers.values() if h.state == "up"]

    # --------------------------------------------------------- control calls
    def _call(self, handle: _WorkerHandle, kind: str,
              timeout: Optional[float] = None, **fields) -> dict:
        """One blocking acked control frame to a worker."""
        conn = handle.conn
        if handle.state != "up" or conn is None:
            raise WorkerLost(f"worker {handle.worker_id} is not up")
        call_id = f"c{next(self._ids)}"
        future: "Future[dict]" = Future()
        with self._lock:
            self._pending[call_id] = _Pending(
                future.set_result, future.set_exception, handle.worker_id
            )
        try:
            conn.send(make(kind, id=call_id, **fields))
        except Exception as exc:
            with self._lock:
                self._pending.pop(call_id, None)
            raise WorkerLost(
                f"worker {handle.worker_id} went away mid-call: {exc}"
            )
        return future.result(self.spawn_timeout_s if timeout is None
                             else timeout)

    # ------------------------------------------------------------ deployment
    def deploy(self, deployment: Deployment) -> _ClusterDeployment:
        """Apply a ``placement: process`` deployment across the workers.

        Spawns (or reuses) ``placement.workers`` worker processes,
        partitions the replica indices round-robin across them, and
        sends each worker its slice with explicit cluster-wide indices
        — the workers materialise exactly the engines a local apply
        would have, validated and probed before the deployment goes
        live.  A deployment carrying an ``slo`` gets a cluster-wide
        autoscale controller, exactly like the in-process server.
        """
        deployment.validate()
        placement = deployment.placement
        if placement is None or placement.kind != "process":
            raise DeploymentError(
                "ClusterServer hosts 'process' placements; use FeBiMServer "
                "(or serve_deployment) for local ones"
            )
        version = self.registry.resolve_version(
            deployment.model, deployment.version
        )
        workers = self._ensure_workers(placement.workers)
        slices: Dict[str, List[Tuple[int, ReplicaSpec]]] = {}
        for index, spec in enumerate(deployment.replicas):
            worker = workers[index % len(workers)]
            slices.setdefault(worker.worker_id, []).append((index, spec))
        specs_by_index = dict(enumerate(deployment.replicas))
        handles: List[_ReplicaHandle] = []
        for worker in workers:
            assigned = slices.get(worker.worker_id)
            if not assigned:
                continue
            indices = [index for index, _ in assigned]
            sub = self._sub_deployment(
                deployment, [spec for _, spec in assigned], version
            )
            reply = self._call(
                worker, "apply", deployment=sub.to_dict(), indices=indices
            )
            worker.models.add(deployment.model)
            for row in reply["replicas"]:
                index = int(row["index"])
                handles.append(_ReplicaHandle(
                    model=deployment.model,
                    index=index,
                    spec=specs_by_index[index],
                    worker_id=worker.worker_id,
                    label=row["replica"],
                    unit_delay=float(row["unit_delay_s"]),
                ))
        handles.sort(key=lambda r: r.index)
        applied = _ClusterDeployment(deployment, version, handles)
        with self._lock:
            self._deployments[deployment.model] = applied
        self._autoscalers.pop(deployment.model, None)
        if deployment.slo is not None:
            self.enable_autoscale(deployment.model)
        return applied

    @staticmethod
    def _sub_deployment(deployment: Deployment, specs: List[ReplicaSpec],
                        version: int) -> Deployment:
        """A worker's slice of ``deployment``.

        The policy collapses to ``cost``: arbitration is the front
        end's job, a worker only executes index-addressed requests (and
        a one-replica slice of a mirror spec would not even validate).
        The ``slo`` rides along — admission bounds and priority lanes
        apply inside each worker's schedulers exactly as locally.
        """
        return Deployment(
            model=deployment.model,
            replicas=tuple(specs),
            policy=RoutingPolicy(),
            version=version,
            slo=deployment.slo,
            placement=None,
        )

    def deployment_for(self, name: str,
                       version=None) -> Optional[_ClusterDeployment]:
        with self._lock:
            dep = self._deployments.get(name)
        if dep is None:
            return None
        if version is not None and int(version) != dep.version:
            return None
        return dep

    def deployments(self) -> Dict[str, Deployment]:
        with self._lock:
            return {name: dep.spec for name, dep in self._deployments.items()}

    def status(self, name: str) -> List[ReplicaStatus]:
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        with self._lock:
            return [
                ReplicaStatus(
                    replica=r.label,
                    backend=r.spec.backend,
                    state=r.state,
                    weight=r.spec.weight,
                    unit_delay_s=r.unit_delay,
                    pending=r.pending,
                    index=r.index,
                )
                for r in dep.replicas
            ]

    # ------------------------------------------------------------ elasticity
    def add_replica(self, name: str, spec: ReplicaSpec,
                    index: Optional[int] = None) -> ReplicaStatus:
        """Grow ``name`` by one replica on the least-loaded worker."""
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        with self._lock:
            if index is None:
                index = dep.next_index
            dep.next_index = max(dep.next_index, index + 1)
            replica = _ReplicaHandle(
                model=name, index=index, spec=spec, worker_id="",
                label=f"{name}@v{dep.version}/r{index}[{spec.backend}]",
                unit_delay=float("inf"),
            )
            replica.state = UNPLACED
            dep.replicas.append(replica)
        placed = self._place(dep, replica)
        if not placed:
            with self._lock:
                dep.replicas.remove(replica)
            raise RuntimeError(
                f"no live worker could host a new replica of {name!r}"
            )
        return self.status(name)[-1]

    def retire_replica(self, name: str, index: int,
                       timeout: Optional[float] = None) -> ReplicaStatus:
        """Shrink ``name``: drain and remove one replica (via its worker)."""
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        with self._lock:
            replica = next(
                (r for r in dep.replicas if r.index == index), None
            )
            if replica is None:
                raise KeyError(
                    f"deployment {name!r} has no replica with index {index}"
                )
            candidates = routing_policy.serviceable(dep.replicas)
            if replica in candidates and len(candidates) <= 1:
                raise DeploymentError(
                    f"refusing to retire the last serviceable replica of "
                    f"{name!r}"
                )
            replica.state = DRAINING
            worker = self._workers.get(replica.worker_id)
        if worker is not None and worker.state == "up":
            try:
                self._call(
                    worker, "retire_replica", timeout=timeout,
                    model=name, index=index,
                )
            except WorkerLost:
                pass  # the worker died mid-retire; the replica goes anyway
        with self._lock:
            replica.state = RETIRED
            if replica in dep.replicas:
                dep.replicas.remove(replica)
        return ReplicaStatus(
            replica=replica.label,
            backend=replica.spec.backend,
            state=RETIRED,
            weight=replica.spec.weight,
            unit_delay_s=replica.unit_delay,
            pending=replica.pending,
            index=replica.index,
        )

    def enable_autoscale(self, name: str, pool=None, **controller_kwargs):
        """Cluster-wide autoscaling: the stock controller over the
        router adapter — scale-ups place on the least-loaded worker,
        scale-downs retire through the owning worker."""
        from repro.serving.autoscale import AutoscaleController

        controller = AutoscaleController(
            self, name, pool=pool, **controller_kwargs
        )
        self._autoscalers[name] = controller
        return controller

    def autoscaler(self, name: str):
        return self._autoscalers.get(name)

    # --------------------------------------------------------------- routing
    def _candidates(self, dep: _ClusterDeployment) -> List[_ReplicaHandle]:
        candidates = routing_policy.serviceable(dep.replicas)
        if not candidates:
            raise RuntimeError(
                f"deployment {dep.name!r} v{dep.version} has no serviceable "
                f"replicas (all evicted)"
            )
        return candidates

    def _pick(self, dep: _ClusterDeployment,
              client: Optional[object]) -> _ReplicaHandle:
        candidates = self._candidates(dep)
        kind = dep.spec.policy.kind
        if kind == "sticky":
            draining = [r for r in dep.replicas if r.state == DRAINING]
            return routing_policy.pick_sticky(candidates, client, draining)
        return routing_policy.pick_replica(
            kind, candidates,
            rr_tick=next(dep.rr_counter) if kind == "round_robin" else 0,
        )

    # --------------------------------------------------------------- serving
    def submit(self, name: str, evidence_levels, version=None,
               client: Optional[object] = None) -> "Future":
        """Route one sample to a worker-hosted replica; returns a future.

        The same contract as the in-process path: internal replica and
        *worker* failures fail over transparently; the future errors
        only when every serviceable replica failed the request.
        """
        dep = self.deployment_for(name, version)
        if dep is None:
            raise KeyError(
                f"no process deployment for model {name!r}"
                + ("" if version is None else f" at version {version}")
            )
        levels = np.asarray(evidence_levels, dtype=int)
        if levels.ndim != 1:
            raise ValueError(
                f"submit takes one 1-D sample, got shape {levels.shape}"
            )
        wire_levels = [int(v) for v in levels]
        self.telemetry.record_submitted()
        if dep.spec.policy.kind == "mirror":
            return self._submit_mirror(dep, wire_levels)
        slo = dep.spec.slo
        priority = 0 if slo is None else slo.priority_for(
            None if client is None else str(client)
        )
        replica = self._pick(dep, client)
        future: "Future" = Future()
        self._attempt(
            dep, replica, wire_levels, future, {replica}, (),
            priority, time.monotonic(),
        )
        return future

    def submit_many(self, name: str, evidence_levels, version=None,
                    client: Optional[object] = None) -> List["Future"]:
        levels = np.asarray(evidence_levels, dtype=int)
        if levels.ndim != 2:
            raise ValueError(
                f"submit_many takes (n, features) samples, got {levels.shape}"
            )
        return [
            self.submit(name, row, version=version, client=client)
            for row in levels
        ]

    def predict(self, name: str, evidence_levels, version=None,
                timeout: Optional[float] = None,
                client: Optional[object] = None):
        return self.submit(
            name, evidence_levels, version=version, client=client
        ).result(timeout)

    def _attempt(self, dep, replica, levels, future, attempted,
                 failed_chain, priority, t0) -> None:
        with self._lock:
            sent_worker = replica.worker_id
            handle = self._workers.get(sent_worker)
            conn = None if handle is None else handle.conn
            if handle is None or handle.state != "up" or conn is None:
                handle = None
            else:
                replica.pending += 1
        if handle is None:
            self._failover(
                dep, levels, future, attempted,
                failed_chain + ((replica, sent_worker),),
                WorkerLost(f"worker for {replica.label} is not up"),
                priority, t0,
            )
            return
        request_id = f"r{next(self._ids)}"

        def on_result(message: dict) -> None:
            with self._lock:
                replica.pending -= 1
            result = decode_result(message["result"])
            if not future.set_running_or_notify_cancel():
                return
            self.telemetry.record_replica_served(replica.label)
            self.telemetry.record_failover(len(attempted) - 1)
            for bad, seen_worker in failed_chain:
                self._mark_down(bad, seen_worker)
            self.telemetry.record_completed(
                dep.name, latencies_s=[time.monotonic() - t0]
            )
            future.set_result(result)

        def on_error(exc: BaseException) -> None:
            with self._lock:
                replica.pending -= 1
            if isinstance(exc, Overloaded):
                # Busy, not broken — the worker's scheduler shed the
                # request unattempted; count the shed for the
                # autoscaler's pressure signal and spill to a sibling.
                self.telemetry.record_shed()
                chain = failed_chain
            else:
                chain = failed_chain + ((replica, sent_worker),)
            self._failover(
                dep, levels, future, attempted, chain, exc, priority, t0
            )

        with self._lock:
            self._pending[request_id] = _Pending(
                on_result, on_error, replica.worker_id, replica
            )
        try:
            conn.send(make(
                "request",
                id=request_id,
                model=dep.name,
                replica_index=replica.index,
                levels=levels,
                priority=priority,
            ))
        except Exception:
            # The connection died under us.  The loss path fails over
            # every pending on this worker — but if it already ran
            # (reader EOF won the race) our just-registered entry was
            # not in its orphan scan, so resolve it here explicitly.
            self._on_worker_lost(handle, "send failed")
            with self._lock:
                entry = self._pending.pop(request_id, None)
            if entry is not None:
                entry.on_error(
                    WorkerLost(f"worker {handle.worker_id} send failed")
                )

    def _failover(self, dep, levels, future, attempted, failed_chain,
                  exc, priority, t0) -> None:
        with self._lock:
            candidates = routing_policy.serviceable(dep.replicas)
            fallback = next(
                (r for r in candidates if r not in attempted), None
            )
        if fallback is None:
            if future.set_running_or_notify_cancel():
                if not isinstance(exc, Overloaded):
                    self.telemetry.record_failed(1)
                future.set_exception(exc)
            return
        attempted.add(fallback)
        self.telemetry.emit(
            "failover",
            model=dep.name,
            to_replica=fallback.label,
            reason=type(exc).__name__,
            attempts=len(attempted),
        )
        self._attempt(
            dep, fallback, levels, future, attempted, failed_chain,
            priority, t0,
        )

    def _mark_down(self, replica: _ReplicaHandle,
                   seen_worker: Optional[str] = None) -> None:
        """Mark a replica down — unless the failure evidence is stale.

        ``seen_worker`` is the worker the failure was observed on; if
        the replica has since been re-placed onto a different worker
        (the loss path raced ahead of this callback), the observation
        says nothing about the replica's *new* home, so it stays up.
        """
        with self._lock:
            if seen_worker is not None and replica.worker_id != seen_worker:
                return
            flipped = replica.state == HEALTHY
            if flipped:
                replica.state = DOWN
        if flipped:
            self.telemetry.emit("replica_down", replica=replica.label)

    # ---------------------------------------------------------------- mirror
    def _submit_mirror(self, dep: _ClusterDeployment,
                       levels: List[int]) -> "Future[MirroredResult]":
        policy = dep.spec.policy
        candidates = routing_policy.mirror_candidates(
            self._candidates(dep), policy.mirror_fanout
        )
        client_future: "Future[MirroredResult]" = Future()
        votes: Dict[int, Optional[object]] = {}
        overloaded: set = set()
        seen_workers: Dict[int, str] = {}
        remaining = [len(candidates)]
        vote_lock = threading.Lock()
        t0 = time.monotonic()

        def record_vote(index: int, result) -> None:
            with vote_lock:
                votes[index] = result
                remaining[0] -= 1
                if remaining[0]:
                    return
            self._resolve_mirror(
                dep, candidates, votes, overloaded, client_future, t0,
                seen_workers,
            )

        for replica in candidates:
            self._mirror_attempt(dep, replica, levels, record_vote,
                                 overloaded, seen_workers)
        return client_future

    def _mirror_attempt(self, dep, replica, levels, record_vote,
                        overloaded, seen_workers) -> None:
        with self._lock:
            seen_workers[replica.index] = replica.worker_id
            handle = self._workers.get(replica.worker_id)
            conn = None if handle is None else handle.conn
            up = handle is not None and handle.state == "up" and conn
            if up:
                replica.pending += 1
        if not up:
            record_vote(replica.index, None)
            return
        request_id = f"r{next(self._ids)}"

        def on_result(message: dict) -> None:
            with self._lock:
                replica.pending -= 1
            record_vote(replica.index, decode_result(message["result"]))

        def on_error(exc: BaseException) -> None:
            with self._lock:
                replica.pending -= 1
            if isinstance(exc, Overloaded):
                self.telemetry.record_shed()
                overloaded.add(replica.index)
            record_vote(replica.index, None)

        with self._lock:
            self._pending[request_id] = _Pending(
                on_result, on_error, replica.worker_id, replica
            )
        try:
            conn.send(make(
                "request",
                id=request_id,
                model=dep.name,
                replica_index=replica.index,
                levels=levels,
                priority=0,
            ))
        except Exception:
            self._on_worker_lost(handle, "send failed")
            with self._lock:
                entry = self._pending.pop(request_id, None)
            if entry is not None:
                entry.on_error(
                    WorkerLost(f"worker {handle.worker_id} send failed")
                )

    def _resolve_mirror(self, dep, candidates, votes, overloaded,
                        client_future, t0, seen_workers) -> None:
        if not client_future.set_running_or_notify_cancel():
            return
        succeeded = [
            (replica, votes[replica.index])
            for replica in candidates
            if votes.get(replica.index) is not None
        ]
        if not succeeded:
            self.telemetry.record_failed(1)
            client_future.set_exception(RuntimeError(
                f"mirror vote failed: no replica of {dep.name!r} answered"
            ))
            return
        for replica in candidates:
            if votes.get(replica.index) is None and (
                replica.index not in overloaded
            ):
                self._mark_down(replica, seen_workers.get(replica.index))
        weighted = dep.spec.policy.mirror_weighted
        winner, _ = routing_policy.resolve_votes(
            [
                (
                    int(result.prediction),
                    result.margin if weighted else 1.0,
                )
                for _, result in succeeded
            ],
            weighted=weighted,
        )
        agreed = sum(
            1 for _, result in succeeded if int(result.prediction) == winner
        )
        agreement = agreed / len(candidates)
        for replica, _ in succeeded:
            self.telemetry.record_replica_served(replica.label)
        self.telemetry.record_mirror_vote(unanimous=agreement == 1.0)
        self.telemetry.record_completed(
            dep.name, latencies_s=[time.monotonic() - t0]
        )
        client_future.set_result(MirroredResult(
            model=dep.route,
            prediction=winner,
            votes=tuple(
                (
                    replica.label,
                    None
                    if votes.get(replica.index) is None
                    else int(votes[replica.index].prediction),
                )
                for replica in candidates
            ),
            agreement=agreement,
            delay=max(r.delay for _, r in succeeded),
            energy_total=sum(r.energy_total for _, r in succeeded),
            queue_wait_s=max(r.queue_wait_s for _, r in succeeded),
            batch_size=max(r.batch_size for _, r in succeeded),
        ))

    # ------------------------------------------------------------ supervision
    def _on_worker_lost(self, handle: _WorkerHandle, reason: str) -> None:
        """Rung 2 of the worker heal ladder: reroute, re-place, respawn.

        Idempotent per incarnation — the reader's EOF and the sweep's
        heartbeat timeout race here, one of them wins the state flip.
        """
        with self._lock:
            if self._closed or handle.state != "up":
                return
            handle.state = "lost"
            conn, handle.conn = handle.conn, None
            orphans = [
                (request_id, entry)
                for request_id, entry in self._pending.items()
                if entry.worker_id == handle.worker_id
            ]
            for request_id, _ in orphans:
                self._pending.pop(request_id, None)
            displaced: List[_ReplicaHandle] = []
            for dep in self._deployments.values():
                for replica in dep.replicas:
                    if replica.worker_id == handle.worker_id:
                        replica.state = UNPLACED
                        replica.pending = 0
                        displaced.append(replica)
        if conn is not None:
            conn.close()
        self.telemetry.record_worker_lost()
        self.telemetry.emit(
            "worker_lost",
            worker=handle.worker_id,
            reason=reason,
            replicas=[r.label for r in displaced],
            in_flight=len(orphans),
        )
        # Orphaned requests fail over right now — they must not wait a
        # supervision sweep to resolve.
        for _, entry in orphans:
            try:
                entry.on_error(
                    WorkerLost(f"worker {handle.worker_id} {reason}")
                )
            except Exception:  # noqa: BLE001 — one orphan must not block the rest
                pass
        # Displaced replicas re-place immediately too, while the sweep
        # owns the (slower) respawn.
        if not self._closed:
            self._reconcile_placement()

    def _reconcile_placement(self) -> None:
        """Re-home unplaced replicas onto the least-loaded live workers.

        The cluster replace rung: the replica keeps its index, hence
        its stream seed — the survivor materialises the *same engine
        bits* the lost worker held."""
        with self._lock:
            unplaced = [
                (dep, replica)
                for dep in self._deployments.values()
                for replica in dep.replicas
                if replica.state == UNPLACED
            ]
        for dep, replica in unplaced:
            self._place(dep, replica)

    def _place(self, dep: _ClusterDeployment,
               replica: _ReplicaHandle) -> bool:
        with self._lock:
            up = [h for h in self._workers.values() if h.state == "up"]
            if not up:
                return False
            loads: Dict[str, int] = {h.worker_id: 0 for h in up}
            for d in self._deployments.values():
                for r in d.replicas:
                    if r.worker_id in loads and r.state not in (
                        UNPLACED, PLACING,
                    ):
                        loads[r.worker_id] += 1
            target = min(up, key=lambda h: (loads[h.worker_id], h.worker_id))
            replica.state = PLACING
            replica.worker_id = target.worker_id
            hosts_model = dep.name in target.models
        try:
            if hosts_model:
                reply = self._call(
                    target, "add_replica",
                    model=dep.name,
                    replica=replica.spec.to_dict(),
                    index=replica.index,
                )
                row = reply["replica"]
            else:
                sub = self._sub_deployment(
                    dep.spec, [replica.spec], dep.version
                )
                reply = self._call(
                    target, "apply",
                    deployment=sub.to_dict(),
                    indices=[replica.index],
                )
                target.models.add(dep.name)
                row = reply["replicas"][0]
        except Exception:  # noqa: BLE001 — the sweep retries placement
            with self._lock:
                if replica.state == PLACING:
                    replica.state = UNPLACED
            return False
        with self._lock:
            replica.label = row["replica"]
            replica.unit_delay = float(row["unit_delay_s"])
            replica.state = HEALTHY
        self.telemetry.emit(
            "replace",
            replica=replica.label,
            worker=target.worker_id,
            model=dep.name,
        )
        return True

    def check_workers(self) -> List[dict]:
        """One supervision sweep (the MaintenanceThread calls this on
        its cadence through the router adapter's ``check_all``).

        Returns a per-worker report list, mirroring ``check_all``'s
        report-per-subject shape."""
        now = time.monotonic()
        with self._lock:
            handles = list(self._workers.values())
        reports = []
        for handle in handles:
            if handle.state == "up":
                age = (
                    float("inf") if handle.last_heartbeat is None
                    else now - handle.last_heartbeat
                )
                if age > self.lost_after_s:
                    self._on_worker_lost(
                        handle,
                        f"heartbeat silent for {age:.2f}s "
                        f"(bound {self.lost_after_s:.2f}s)",
                    )
                else:
                    self.telemetry.emit(
                        "worker_heartbeat",
                        worker=handle.worker_id,
                        age_s=round(age, 4),
                    )
            if handle.state == "lost" and not self._closed:
                if handle.respawns >= self.max_respawns:
                    handle.state = "evicted"
                else:
                    handle.respawns += 1
                    handle.models = set()
                    self._spawn(handle)
            reports.append({
                "worker": handle.worker_id,
                "state": handle.state,
                "respawns": handle.respawns,
            })
        if not self._closed:
            self._reconcile_placement()
        return reports

    # ------------------------------------------------------------ observability
    def enable_observability(self, observability=None, **kwargs):
        """Arm the flight recorder + metrics ring over the whole cluster.

        Worker-side events stream in over the wire and land in this
        recorder tagged ``worker=<id>``; front-end routing and
        supervision events land directly.  (Per-request tracing stays a
        worker-local concern — spans never cross the boundary.)
        """
        from repro.serving.observability import Observability

        if observability is not None and kwargs:
            raise ValueError(
                "pass kwargs only when the bundle is created here"
            )
        if observability is None:
            observability = Observability(**kwargs)
        self.observability = observability
        self.telemetry.recorder = observability.recorder
        return observability

    def disable_observability(self) -> None:
        self.observability = None
        self.telemetry.recorder = None

    def sample_metrics(self):
        observability = self.observability
        if observability is None:
            return None
        with self._lock:
            replicas = sum(
                len(dep.replicas) for dep in self._deployments.values()
            )
        return observability.metrics.sample(
            self.telemetry.snapshot(), replicas=replicas
        )

    # ------------------------------------------------------------ maintenance
    def enable_maintenance(self, period_s: float) -> MaintenanceThread:
        """Start (or restart) the supervision sweep thread — worker
        liveness, respawn, re-placement and autoscale stepping on one
        cadence, reusing the stock MaintenanceThread loop."""
        self.stop_maintenance()
        self.maintenance = MaintenanceThread(
            _NullMonitor(),
            period_s,
            telemetry=self.telemetry,
            router=self.router,
            controllers=lambda: list(self._autoscalers.values()),
            metrics_hook=self.sample_metrics,
        )
        return self.maintenance

    def stop_maintenance(self, timeout: Optional[float] = None) -> bool:
        if self.maintenance is None:
            return True
        if not self.maintenance.stop(timeout):
            return False
        self.maintenance = None
        return True

    # -------------------------------------------------------------- lifecycle
    def stats(self) -> TelemetrySnapshot:
        return self.telemetry.snapshot()

    def worker_pids(self) -> Dict[str, Optional[int]]:
        """Live worker process ids (chaos/ops surface)."""
        with self._lock:
            return {
                h.worker_id: h.pid
                for h in self._workers.values()
                if h.state in ("starting", "up")
            }

    def kill_worker(self, worker_id: str) -> None:
        """Chaos hook: SIGKILL one worker process, no warning —
        exactly what a crashed host looks like to the front end."""
        with self._lock:
            handle = self._workers.get(worker_id)
            pid = None if handle is None else handle.pid
        if pid is None:
            raise KeyError(f"no live worker {worker_id!r}")
        os.kill(pid, signal.SIGKILL)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait out every in-flight request and worker queue."""
        deadline = None if timeout is None else time.monotonic() + timeout
        complete = True
        for handle in self._up_workers():
            remaining = (
                None if deadline is None
                else max(deadline - time.monotonic(), 0.1)
            )
            try:
                reply = self._call(handle, "drain", timeout=remaining)
                complete = complete and bool(reply.get("complete", False))
            except Exception:  # noqa: BLE001 — a dying worker has no queue left
                pass
        while self._pending_requests():
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.01)
        return complete

    def _pending_requests(self) -> int:
        with self._lock:
            return sum(
                1 for entry in self._pending.values()
                if entry.replica is not None
            )

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Graceful teardown: stop supervision, drain, shut workers down."""
        with self._lock:
            if self._closed:
                return
        self.stop_maintenance(timeout)
        if drain:
            self.drain(timeout)
        with self._lock:
            self._closed = True
            handles = list(self._workers.values())
        for handle in handles:
            conn = handle.conn
            if conn is not None:
                try:
                    conn.send(make("shutdown"))
                except Exception:  # noqa: BLE001
                    pass
        for handle in handles:
            process = handle.process
            # A process whose start() itself failed cannot be joined.
            if process is None or getattr(process, "_popen", None) is None:
                continue
            process.join(2.0 if timeout is None else timeout)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
            handle.state = "stopped"
        for handle in handles:
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for entry in leftovers:
            try:
                entry.on_error(WorkerLost("cluster closed"))
            except Exception:  # noqa: BLE001
                pass

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:
        with self._lock:
            up = sum(1 for h in self._workers.values() if h.state == "up")
            total = len(self._workers)
            deployments = len(self._deployments)
        return (
            f"ClusterServer({up}/{total} workers up, "
            f"{deployments} deployments)"
        )
