"""Declarative deployments: one model, many replicas, one routing policy.

PR 4 left the serving layer one constructor change away from
replication: the registry knows the array technology per artifact, but
:class:`~repro.serving.server.FeBiMServer` could route a request to
exactly one cached engine.  A :class:`Deployment` closes that gap
declaratively — it names a registered model, lists the
:class:`ReplicaSpec` arrays that should serve it (each on its own
backend technology, with its own backend options and capacity weight)
and picks a :class:`RoutingPolicy` for the
:class:`~repro.serving.router.Router` to arbitrate with.

The spec is plain data: JSON-serialisable through :mod:`repro.io`
(``save_deployment`` / ``load_deployment``), hashable nowhere, and
validated *before* any array is programmed — an unknown backend, a
backend option gated behind a capability the technology does not
declare, or a mirror policy over a single replica is rejected at
``validate()`` time with the offending replica named, never discovered
mid-traffic.

Cross-technology serving is an explicit decision here, exactly as the
registry's backend pin demands: a replica's ``backend`` overrides the
artifact's registered technology because the operator wrote it into
the deployment spec, not because two directories got mixed up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.backends.base import Capability
from repro.backends.registry import backend_capabilities, get_backend_class

#: Routing policy kinds shipped in-tree (see :mod:`repro.serving.router`).
POLICY_KINDS = ("cost", "round_robin", "sticky", "mirror")

#: Placement kinds: where a deployment's replicas are hosted.
PLACEMENT_KINDS = ("local", "process")

#: Backend constructor options that are only meaningful behind a
#: declared capability: a spec naming one of these for a technology
#: that does not declare the capability is invalid up front.
OPTION_CAPABILITIES = {
    "advance_streams": Capability.STREAM_ADVANCE,
    "spare_rows": Capability.SPARE_ROWS,
}

#: Current deployment-spec schema version.
DEPLOYMENT_FORMAT_VERSION = 1


class DeploymentError(ValueError):
    """A deployment spec failed validation (bad replica, policy, ...)."""


def _reject_unknown_keys(data: dict, allowed: set, what: str) -> None:
    """Hand-edited specs must fail with the problem named: a misspelt
    field silently falling back to its default (``min_agrement`` ->
    exact agreement demanded) is worse than a parse error."""
    unknown = set(data) - allowed
    if unknown:
        raise DeploymentError(
            f"{what} has unknown field(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica array in a deployment.

    Attributes
    ----------
    backend:
        Array technology (a :mod:`repro.backends` registry name) this
        replica is programmed on.
    backend_options:
        Extra backend constructor arguments for this replica only
        (e.g. ``{"n_cycles": 255}`` or ``{"advance_streams": True}``
        for a memristor replica).
    weight:
        Relative capacity weight; the ``cost`` policy divides a
        replica's load-adjusted cost by it, so a weight-2 replica
        absorbs roughly twice the traffic of a weight-1 one at equal
        unit cost.
    """

    backend: str
    backend_options: dict = field(default_factory=dict)
    weight: float = 1.0

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "backend_options": dict(self.backend_options),
            "weight": self.weight,
        }

    @staticmethod
    def from_dict(data: dict) -> "ReplicaSpec":
        if not isinstance(data, dict):
            raise DeploymentError(
                f"replica spec must be a JSON object, got {type(data).__name__}"
            )
        _reject_unknown_keys(
            data, {"backend", "backend_options", "weight"}, "replica spec"
        )
        options = data.get("backend_options", {})
        if not isinstance(options, dict):
            raise DeploymentError(
                f"backend_options must be an object, got {options!r}"
            )
        return ReplicaSpec(
            backend=data.get("backend", ""),
            backend_options=dict(options),
            weight=float(data.get("weight", 1.0)),
        )


@dataclass(frozen=True)
class RoutingPolicy:
    """How the router arbitrates a request across a deployment's replicas.

    Attributes
    ----------
    kind:
        One of :data:`POLICY_KINDS`:

        * ``"cost"`` — cheapest healthy replica by the backend's own
          ``inference_cost_batch`` unit delay, scaled by live queue
          occupancy and divided by the replica weight;
        * ``"round_robin"`` — healthy replicas in turn;
        * ``"sticky"`` — per-tenant affinity: a request's ``client``
          identity hashes to a stable replica while that replica stays
          healthy;
        * ``"mirror"`` — fan out to ``mirror_fanout`` healthy replicas
          and majority-vote the predictions (a reliability mode; the
          vote is the served answer).
    mirror_fanout:
        Replicas each mirrored request fans out to (0 = all healthy
        replicas).  Ignored by the other kinds.
    min_agreement:
        Canary agreement (vs each replica's own pristine baseline)
        below which a health check fails; relax below 1.0 for
        stochastic replicas (e.g. memristor with ``advance_streams``).
    mirror_weighted:
        Mirror only: weight each replica's vote by the winner/runner-up
        read margin of its own answer (the ``read_margin_batch``
        quantity, recovered from the serving read's sensed currents)
        instead of one-replica-one-vote — a confident minority can
        outvote a hesitant majority.  Deterministic tie-break (lower
        class label) preserved; when every margin collapses to zero the
        head count decides.
    """

    kind: str = "cost"
    mirror_fanout: int = 0
    min_agreement: float = 1.0
    mirror_weighted: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "mirror_fanout": self.mirror_fanout,
            "min_agreement": self.min_agreement,
            "mirror_weighted": self.mirror_weighted,
        }

    @staticmethod
    def from_dict(data: dict) -> "RoutingPolicy":
        if not isinstance(data, dict):
            raise DeploymentError(
                f"routing policy must be a JSON object, got {type(data).__name__}"
            )
        _reject_unknown_keys(
            data,
            {"kind", "mirror_fanout", "min_agreement", "mirror_weighted"},
            "routing policy",
        )
        return RoutingPolicy(
            kind=data.get("kind", "cost"),
            mirror_fanout=int(data.get("mirror_fanout", 0)),
            min_agreement=float(data.get("min_agreement", 1.0)),
            mirror_weighted=bool(data.get("mirror_weighted", False)),
        )


def validate_replica_spec(
    replica: ReplicaSpec, index: int, min_agreement: float = 1.0
) -> ReplicaSpec:
    """Static validation of one replica spec against the backend registry.

    Shared by :meth:`Deployment.validate` and the router's runtime
    ``add_replica`` path (an autoscaler-placed replica obeys exactly
    the same rules as one written in the spec).  Raises
    :class:`DeploymentError` naming replica ``index``; returns the
    spec for chaining.
    """
    try:
        get_backend_class(replica.backend)
    except ValueError as exc:
        raise DeploymentError(f"replica {index}: {exc}") from None
    if not replica.weight > 0:
        raise DeploymentError(
            f"replica {index}: weight must be > 0, got {replica.weight}"
        )
    declared = backend_capabilities(replica.backend)
    for option, capability in OPTION_CAPABILITIES.items():
        wants = replica.backend_options.get(option)
        if wants and capability not in declared:
            raise DeploymentError(
                f"replica {index}: option {option!r} needs capability "
                f"{capability!r}, which backend "
                f"{replica.backend!r} does not declare"
            )
    if (
        replica.backend_options.get("advance_streams")
        and min_agreement >= 1.0
    ):
        # Fresh Bernoulli draws cannot match a pinned baseline
        # bit-for-bit: an exact-agreement health policy would
        # "heal" the stochastic replica on every sweep (each
        # replacement also resets its stream state).  Demand an
        # explicit tolerance instead of churning silently.
        raise DeploymentError(
            f"replica {index}: advance_streams draws fresh bitstreams "
            f"per read, so health checks cannot demand exact "
            f"agreement — set RoutingPolicy(min_agreement < 1.0)"
        )
    return replica


@dataclass(frozen=True)
class SLOPolicy:
    """Service-level objectives the autoscale controller closes the loop on.

    Attaching one to a :class:`Deployment` does two things at apply
    time: every replica's scheduler queue becomes *bounded*
    (``max_queue_depth``, enabling load-shed / backpressure / priority
    lanes — see :mod:`repro.serving.scheduler`), and the server's
    maintenance thread may run an
    :class:`~repro.serving.autoscale.AutoscaleController` that grows
    the deployment toward ``max_replicas`` under pressure and shrinks
    it back to ``min_replicas`` when calm.

    Attributes
    ----------
    target_p95_ms:
        p95 end-to-end latency objective in milliseconds (``None`` =
        scale on queue pressure only).
    max_queue_depth:
        Bound on each replica's per-model queue (``None`` = unbounded:
        admission control off, autoscaling on queue depth disabled).
    min_replicas / max_replicas:
        The controller never shrinks below / grows above these.
    backpressure:
        When true, ``Router.submit`` blocks the *first* attempt while
        the chosen replica's queue is full instead of shedding
        (failover attempts never block — see the router docstring).
    priorities:
        Per-tenant priority lanes: client identity -> lane (higher
        sheds last).  Clients not listed get ``default_priority``.
    default_priority:
        Lane for unlisted (and anonymous) clients.
    """

    target_p95_ms: Optional[float] = None
    max_queue_depth: Optional[int] = None
    min_replicas: int = 1
    max_replicas: int = 1
    backpressure: bool = False
    priorities: Dict[str, int] = field(default_factory=dict)
    default_priority: int = 0

    def priority_for(self, client: Optional[str]) -> int:
        """The priority lane for ``client`` (``None`` = anonymous)."""
        if client is None:
            return self.default_priority
        return self.priorities.get(client, self.default_priority)

    def validate(self) -> "SLOPolicy":
        if int(self.min_replicas) < 1:
            raise DeploymentError(
                f"slo: min_replicas must be >= 1, got {self.min_replicas}"
            )
        if int(self.max_replicas) < int(self.min_replicas):
            raise DeploymentError(
                f"slo: max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if self.max_queue_depth is not None and int(self.max_queue_depth) < 1:
            raise DeploymentError(
                f"slo: max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.target_p95_ms is not None and not self.target_p95_ms > 0:
            raise DeploymentError(
                f"slo: target_p95_ms must be > 0, got {self.target_p95_ms}"
            )
        for client, lane in self.priorities.items():
            if not isinstance(client, str) or not client:
                raise DeploymentError(
                    f"slo: priority keys must be non-empty client "
                    f"strings, got {client!r}"
                )
            if not isinstance(lane, int):
                raise DeploymentError(
                    f"slo: priority for {client!r} must be an int lane, "
                    f"got {lane!r}"
                )
        return self

    def to_dict(self) -> dict:
        return {
            "target_p95_ms": self.target_p95_ms,
            "max_queue_depth": self.max_queue_depth,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "backpressure": self.backpressure,
            "priorities": dict(self.priorities),
            "default_priority": self.default_priority,
        }

    @staticmethod
    def from_dict(data: dict) -> "SLOPolicy":
        if not isinstance(data, dict):
            raise DeploymentError(
                f"slo policy must be a JSON object, got {type(data).__name__}"
            )
        _reject_unknown_keys(
            data,
            {
                "target_p95_ms",
                "max_queue_depth",
                "min_replicas",
                "max_replicas",
                "backpressure",
                "priorities",
                "default_priority",
            },
            "slo policy",
        )
        target = data.get("target_p95_ms")
        depth = data.get("max_queue_depth")
        priorities = data.get("priorities", {})
        if not isinstance(priorities, dict):
            raise DeploymentError(
                f"slo priorities must be an object, got {priorities!r}"
            )
        return SLOPolicy(
            target_p95_ms=None if target is None else float(target),
            max_queue_depth=None if depth is None else int(depth),
            min_replicas=int(data.get("min_replicas", 1)),
            max_replicas=int(data.get("max_replicas", 1)),
            backpressure=bool(data.get("backpressure", False)),
            priorities={str(k): int(v) for k, v in priorities.items()},
            default_priority=int(data.get("default_priority", 0)),
        )


@dataclass(frozen=True)
class PlacementSpec:
    """Where a deployment's replicas are hosted.

    Attributes
    ----------
    kind:
        ``"local"`` — replicas live in the calling process, served by
        the in-process :class:`~repro.serving.router.Router` exactly as
        before (the default when no placement is written at all; the
        submit hot path is untouched).  ``"process"`` — replicas are
        partitioned across supervised worker subprocesses, each owning
        its own schedulers and engines, reached over the versioned wire
        protocol (:mod:`repro.serving.transport`) and served through a
        :class:`~repro.serving.cluster.ClusterServer` front end.
    workers:
        Worker subprocesses to spawn for ``"process"`` placement
        (replicas are spread round-robin across them); ignored by
        ``"local"``.
    """

    kind: str = "local"
    workers: int = 2

    def validate(self) -> "PlacementSpec":
        if self.kind not in PLACEMENT_KINDS:
            raise DeploymentError(
                f"unknown placement kind {self.kind!r} "
                f"(known: {', '.join(PLACEMENT_KINDS)})"
            )
        if int(self.workers) < 1:
            raise DeploymentError(
                f"placement workers must be >= 1, got {self.workers}"
            )
        return self

    def to_dict(self) -> dict:
        return {"kind": self.kind, "workers": self.workers}

    @staticmethod
    def from_dict(data: dict) -> "PlacementSpec":
        if not isinstance(data, dict):
            raise DeploymentError(
                f"placement spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        _reject_unknown_keys(data, {"kind", "workers"}, "placement spec")
        return PlacementSpec(
            kind=data.get("kind", "local"),
            workers=int(data.get("workers", 2)),
        )


@dataclass(frozen=True)
class Deployment:
    """A validated-on-apply serving plan for one model.

    Attributes
    ----------
    model:
        Registered model name the deployment serves.
    replicas:
        The arrays serving it (at least one).
    policy:
        Arbitration policy across them.
    version:
        Pinned model version (``None`` resolves to latest at apply
        time, like every other serving call).
    slo:
        Optional :class:`SLOPolicy`; enables admission control and
        autoscaling for this deployment.
    placement:
        Optional :class:`PlacementSpec`; ``None`` means local
        (in-process) hosting, byte-for-byte the pre-placement
        behaviour.
    """

    model: str
    replicas: Tuple[ReplicaSpec, ...]
    policy: RoutingPolicy = RoutingPolicy()
    version: Optional[int] = None
    slo: Optional[SLOPolicy] = None
    placement: Optional[PlacementSpec] = None

    def __post_init__(self) -> None:
        # Normalise a list into the frozen tuple form so callers can
        # write Deployment(model, [ReplicaSpec(...)]).
        object.__setattr__(self, "replicas", tuple(self.replicas))

    # ------------------------------------------------------------ validation
    def validate(self) -> "Deployment":
        """Check the spec against the backend registry and capabilities.

        Raises :class:`DeploymentError` naming the offending replica /
        field; returns ``self`` so apply sites can chain.  This is the
        *static* half of validation (no registry access); the router
        additionally resolves the model name/version when the
        deployment is applied.
        """
        if not isinstance(self.model, str) or not self.model:
            raise DeploymentError(
                f"deployment model must be a non-empty string, got {self.model!r}"
            )
        if self.version is not None and int(self.version) < 1:
            raise DeploymentError(
                f"deployment version must be >= 1, got {self.version}"
            )
        if not self.replicas:
            raise DeploymentError("deployment needs at least one replica")
        for i, replica in enumerate(self.replicas):
            validate_replica_spec(replica, i, self.policy.min_agreement)
        if self.slo is not None:
            self.slo.validate()
            if len(self.replicas) > int(self.slo.max_replicas):
                raise DeploymentError(
                    f"deployment starts with {len(self.replicas)} replicas "
                    f"but slo.max_replicas is {self.slo.max_replicas}"
                )
        if self.policy.kind not in POLICY_KINDS:
            raise DeploymentError(
                f"unknown routing policy {self.policy.kind!r} "
                f"(known: {', '.join(POLICY_KINDS)})"
            )
        if self.policy.mirror_fanout < 0:
            raise DeploymentError(
                f"mirror_fanout must be >= 0, got {self.policy.mirror_fanout}"
            )
        if not 0.0 <= self.policy.min_agreement <= 1.0:
            raise DeploymentError(
                f"min_agreement must lie in [0, 1], got "
                f"{self.policy.min_agreement}"
            )
        if self.policy.kind == "mirror":
            if len(self.replicas) < 2:
                raise DeploymentError(
                    "mirror policy needs at least 2 replicas to vote"
                )
            if self.policy.mirror_fanout == 1:
                raise DeploymentError(
                    "mirror_fanout=1 is a vote of one; use 0 (all) or >= 2"
                )
        elif self.policy.mirror_weighted:
            raise DeploymentError(
                f"mirror_weighted only applies to the mirror policy, "
                f"not {self.policy.kind!r}"
            )
        if self.placement is not None:
            self.placement.validate()
        return self

    # --------------------------------------------------------------- JSON IO
    def to_dict(self) -> dict:
        """Plain-JSON form (see :func:`repro.io.save_deployment`)."""
        data = {
            "format_version": DEPLOYMENT_FORMAT_VERSION,
            "model": self.model,
            "version": self.version,
            "replicas": [r.to_dict() for r in self.replicas],
            "policy": self.policy.to_dict(),
        }
        if self.slo is not None:
            data["slo"] = self.slo.to_dict()
        if self.placement is not None:
            data["placement"] = self.placement.to_dict()
        return data

    @staticmethod
    def from_dict(data: dict) -> "Deployment":
        """Rebuild and *validate* a deployment from its dict form.

        Raises :class:`DeploymentError` on any malformed or
        capability-invalid spec — a hand-edited file must fail with the
        problem named, never a raw ``KeyError`` deep in the router.
        """
        if not isinstance(data, dict):
            raise DeploymentError(
                f"deployment spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        fmt = data.get("format_version", DEPLOYMENT_FORMAT_VERSION)
        if fmt != DEPLOYMENT_FORMAT_VERSION:
            raise DeploymentError(
                f"unsupported deployment format version {fmt!r} (this "
                f"build reads version {DEPLOYMENT_FORMAT_VERSION})"
            )
        _reject_unknown_keys(
            data,
            {
                "format_version", "model", "version", "replicas",
                "policy", "slo", "placement",
            },
            "deployment spec",
        )
        replicas = data.get("replicas")
        if not isinstance(replicas, list) or not replicas:
            raise DeploymentError(
                "deployment spec needs a non-empty 'replicas' list"
            )
        version = data.get("version")
        slo = data.get("slo")
        placement = data.get("placement")
        try:
            deployment = Deployment(
                model=data.get("model", ""),
                replicas=tuple(ReplicaSpec.from_dict(r) for r in replicas),
                policy=RoutingPolicy.from_dict(data.get("policy", {})),
                version=None if version is None else int(version),
                slo=None if slo is None else SLOPolicy.from_dict(slo),
                placement=(
                    None
                    if placement is None
                    else PlacementSpec.from_dict(placement)
                ),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, DeploymentError):
                raise
            raise DeploymentError(
                f"malformed deployment spec: {exc!r}"
            ) from exc
        return deployment.validate()

    def describe(self) -> str:
        """One-line human summary (CLI / logs)."""
        replicas = ", ".join(
            f"r{i}:{r.backend}"
            + (f"(w={r.weight:g})" if r.weight != 1.0 else "")
            for i, r in enumerate(self.replicas)
        )
        pin = "latest" if self.version is None else f"v{self.version}"
        slo = ""
        if self.slo is not None:
            slo = (
                f" slo[{self.slo.min_replicas}-{self.slo.max_replicas}"
                + (
                    f", p95<{self.slo.target_p95_ms:g}ms"
                    if self.slo.target_p95_ms is not None
                    else ""
                )
                + "]"
            )
        placement = ""
        if self.placement is not None and self.placement.kind != "local":
            placement = (
                f" placement={self.placement.kind}"
                f"x{self.placement.workers}"
            )
        return (
            f"{self.model}@{pin} -> [{replicas}] policy={self.policy.kind}"
            f"{slo}{placement}"
        )


def single_replica_deployment(
    model: str,
    backend: str,
    backend_options: Optional[dict] = None,
    version: Optional[int] = None,
) -> Deployment:
    """The implicit legacy tenancy model as an explicit spec.

    ``server.register(...)`` / ``submit(...)`` callers are served
    through exactly this shape: one replica on the registry's own
    backend, cost policy (degenerate over one replica).
    """
    return Deployment(
        model=model,
        replicas=(
            ReplicaSpec(backend=backend, backend_options=backend_options or {}),
        ),
        policy=RoutingPolicy(kind="cost"),
        version=version,
    )
