"""Worker process host: one subprocess owning a slice of a deployment.

A worker is a full in-process serving stack — registry, schedulers,
router, engines — wrapped in a message loop.  The cluster front end
(:mod:`repro.serving.cluster`) makes every *routing* decision; the
worker only *executes*: it applies the sub-deployment it is told to
own (with explicit cluster-wide replica indices, so the per-replica
stream seeds — and therefore the engine bits — match what a
single-process deployment would have materialised), serves the
requests shipped to its replicas, and reports back.

Three threads per worker:

* the **message loop** (main thread) dispatches control and request
  frames; request execution itself is asynchronous — the scheduler's
  batch workers resolve futures whose done-callbacks send the
  ``result``/``error`` frame, so a slow batch never blocks control
  traffic;
* the **heartbeat thread** sends per-replica liveness
  (state/pending/unit delay) on the supervision cadence — the front
  end's replica views, and the signal whose absence triggers failover;
* the scheduler's own batch workers (inherited from the in-process
  stack, untouched).

Worker-side observability is not lost: a :class:`_EventForwarder`
attached as the worker telemetry's flight recorder ships every emitted
event (sheds, failovers, heal-ladder rungs) upstream as ``event``
frames, which the front end replays into its own recorder tagged with
the worker id — ``febim trace`` / ``febim events`` on the front end
see the whole cluster.

The module-level :func:`worker_main` entry point is what
``multiprocessing`` (spawn context — no forked locks, a clean
interpreter) launches; everything it needs travels in a picklable
config dict.
"""

from __future__ import annotations

import os
import socket
import threading
import traceback
from typing import Dict, Optional

from repro.serving.deployment import Deployment, ReplicaSpec
from repro.serving.registry import ModelRegistry
from repro.serving.router import Router, result_margin
from repro.serving.scheduler import BatchPolicy
from repro.serving.server import FeBiMServer
from repro.serving.transport.protocol import (
    MessageConnection,
    ProtocolError,
    encode_error,
    encode_result,
    make,
)


def _jsonable(value):
    """Best-effort JSON-safe projection of an event detail value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        if isinstance(value, float) and value != value:
            return None  # NaN has no strict-JSON spelling
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class _EventForwarder:
    """Duck-typed flight recorder that ships events upstream.

    Attached as ``telemetry.recorder`` inside the worker: every
    :meth:`~repro.serving.telemetry.Telemetry.emit` call site in the
    scheduler/router/health layers transparently becomes an ``event``
    frame.  Send failures are swallowed — a dying connection must not
    take the serving path down with it; the front end notices the loss
    through the heartbeat/reader channel instead.
    """

    def __init__(self, conn: MessageConnection, worker_id: str):
        self._conn = conn
        self._worker_id = worker_id

    def record(self, kind: str, **detail) -> None:
        try:
            self._conn.send(make(
                "event",
                worker=self._worker_id,
                event_kind=kind,
                detail=_jsonable(detail),
            ))
        except Exception:
            pass


class WorkerHost:
    """The message loop around one worker's in-process serving stack."""

    def __init__(self, worker_id: str, conn: MessageConnection, config: dict):
        self.worker_id = worker_id
        self.conn = conn
        self.config = config
        policy = BatchPolicy(
            max_batch=int(config.get("max_batch", 32)),
            max_wait_ms=float(config.get("max_wait_ms", 2.0)),
        )
        registry = ModelRegistry(
            config["registry_root"],
            backend=config.get("backend", "fefet"),
            backend_options=config.get("backend_options"),
        )
        self.server = FeBiMServer(
            registry,
            policy=policy,
            seed=config.get("seed"),
            max_rows=config.get("max_rows"),
        )
        self.server.telemetry.recorder = _EventForwarder(conn, worker_id)
        self.heartbeat_period_s = float(config.get("heartbeat_period_s", 0.25))
        self._closed = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------- lifecycle
    def run(self) -> None:
        """Serve frames until ``shutdown`` or the connection dies."""
        self.conn.send(make("hello", worker=self.worker_id, pid=os.getpid()))
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"worker-{self.worker_id}-heartbeat",
            daemon=True,
        )
        self._heartbeat_thread.start()
        try:
            while not self._closed.is_set():
                try:
                    message = self.conn.recv()
                except (ProtocolError, OSError):
                    break
                if message is None:  # front end went away; die with it
                    break
                if not self._dispatch(message):
                    break
        finally:
            self._closed.set()
            try:
                self.server.close(drain=False)
            except Exception:
                pass
            self.conn.close()

    def _heartbeat_loop(self) -> None:
        while not self._closed.wait(self.heartbeat_period_s):
            try:
                self.conn.send(make(
                    "heartbeat",
                    worker=self.worker_id,
                    replicas=self._replica_views(),
                ))
            except Exception:
                return  # connection gone; the message loop is dying too

    def _replica_views(self) -> list:
        views = []
        for name in self.server.router.deployments():
            try:
                statuses = self.server.router.status(name)
            except KeyError:
                continue
            for status in statuses:
                views.append({
                    "model": name,
                    "index": status.index,
                    "state": status.state,
                    "pending": status.pending,
                    "unit_delay_s": status.unit_delay_s,
                })
        return views

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, message: dict) -> bool:
        """Handle one frame; ``False`` ends the message loop."""
        kind = message["kind"]
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            self._send_error(
                message.get("id"),
                ProtocolError(f"worker cannot handle {kind!r} frames"),
            )
            return True
        try:
            return handler(message) is not False
        except Exception as exc:  # noqa: BLE001 — reply, never crash the loop
            self._send_error(message.get("id"), exc)
            return True

    def _send_error(self, request_id, exc: BaseException) -> None:
        try:
            self.conn.send(make(
                "error",
                id=request_id,
                worker=self.worker_id,
                error=encode_error(exc),
            ))
        except Exception:
            pass

    # -------------------------------------------------- deployment control
    def _on_apply(self, message: dict):
        """Host a sub-deployment: this worker's replica slice, with the
        cluster-wide indices that pin each replica's stream seed."""
        spec = Deployment.from_dict(message["deployment"])
        indices = [int(i) for i in message["indices"]]
        applied = self.server.router.apply(spec, indices=indices)
        if spec.slo is not None:
            # The *front end* owns elasticity for the whole cluster; a
            # worker-local autoscaler would fight it replica by replica.
            self.server._autoscalers.pop(spec.model, None)
        self.conn.send(make(
            "applied",
            id=message.get("id"),
            worker=self.worker_id,
            model=spec.model,
            version=applied.version,
            replicas=[
                s.to_dict() for s in self.server.router.status(spec.model)
            ],
        ))

    def _on_add_replica(self, message: dict):
        spec = ReplicaSpec.from_dict(message["replica"])
        status = self.server.router.add_replica(
            message["model"], spec, index=int(message["index"])
        )
        self.conn.send(make(
            "replica_added",
            id=message.get("id"),
            worker=self.worker_id,
            model=message["model"],
            replica=status.to_dict(),
        ))

    def _on_retire_replica(self, message: dict):
        status = self.server.router.retire_replica(
            message["model"],
            int(message["index"]),
            drain_steps=int(message.get("drain_steps", 1)),
        )
        self.conn.send(make(
            "replica_retired",
            id=message.get("id"),
            worker=self.worker_id,
            model=message["model"],
            replica=status.to_dict(),
        ))

    # -------------------------------------------------------- request plane
    def _on_request(self, message: dict):
        """Execute one routed request on the replica the front end chose.

        The reply is sent from the scheduler worker's done-callback —
        the message loop is already back on ``recv`` while the batch
        coalesces, so a worker pipelines many in-flight requests.
        """
        request_id = message["id"]
        model = message["model"]
        dep = self.server.router.deployment_for(model)
        if dep is None:
            raise KeyError(f"worker hosts no deployment for {model!r}")
        replica = Router._replica_by_index(dep, int(message["replica_index"]))
        levels = [int(v) for v in message["levels"]]
        inner = replica.scheduler.submit(
            replica.key, levels, priority=int(message.get("priority", 0))
        )

        def done(f) -> None:
            if f.cancelled():
                self._send_error(
                    request_id, RuntimeError("request cancelled in worker")
                )
                return
            exc = f.exception()
            if exc is not None:
                self._send_error(request_id, exc)
                return
            result = f.result()
            margin = result_margin(result)
            self.server.telemetry.record_replica_served(replica.label)
            try:
                self.conn.send(make(
                    "result",
                    id=request_id,
                    worker=self.worker_id,
                    result=encode_result(
                        result,
                        margin=margin,
                        replica=replica.label,
                        worker=self.worker_id,
                    ),
                ))
            except Exception:
                pass

        inner.add_done_callback(done)

    # ------------------------------------------------------------- shutdown
    def _on_drain(self, message: dict):
        drained = self.server.drain(timeout=message.get("timeout"))
        self.conn.send(make(
            "drained",
            id=message.get("id"),
            worker=self.worker_id,
            complete=bool(drained),
        ))

    def _on_shutdown(self, message: dict):
        return False  # run()'s finally closes the stack


def worker_main(worker_id: str, address, config: dict) -> None:
    """Spawn entry point: connect back to the front end and serve.

    Runs in a fresh interpreter (spawn context), so everything arrives
    through picklable arguments; exceptions escaping the host are
    printed (the front end's reader sees the EOF and supervises).
    """
    sock = socket.create_connection(tuple(address))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    conn = MessageConnection(sock)
    try:
        WorkerHost(worker_id, conn, config).run()
    except Exception:
        traceback.print_exc()
        raise
