"""Named, versioned model storage that materialises programmed engines.

The registry is the serving layer's source of truth for *what* can be
served.  Models are persisted through :mod:`repro.io.serialize` — one
plain-JSON artifact per version under ``root/<name>/v<NNNN>.json`` — so
a registry directory survives process restarts and can be shipped
between machines like any other artifact directory.

Materialisation is the expensive half: programming a crossbar replays
the whole pulse-train write sequence.  :meth:`ModelRegistry.get_engine`
therefore keeps a small LRU cache of *programmed* engines keyed by
``(name, version, max_rows, seed)``; re-registering a name invalidates
every cached engine of that name so stale weights can never serve a
request after an update.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.backends.registry import get_backend_class
from repro.core.engine import FeBiMEngine
from repro.core.quantization import QuantizedBayesianModel
from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.tiling import TiledFeBiM
from repro.devices.fefet import MultiLevelCellSpec
from repro.devices.variation import VariationModel
from repro.io.serialize import DEFAULT_BACKEND, load_artifact, save_model
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int

#: Registered names must be filesystem- and URL-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_VERSION_RE = re.compile(r"^v(\d{4,})\.json$")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            "model name must be 1-64 chars of [A-Za-z0-9._-] starting "
            f"alphanumeric, got {name!r}"
        )
    return name


class ModelRegistry:
    """Versioned quantised-model store with an LRU of programmed engines.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created if missing).
    engine_cache_size:
        Maximum number of programmed engines kept alive at once.  The
        cache evicts least-recently-used; an evicted engine is simply
        re-programmed on the next request for it.
    backend:
        The array technology this registry serves (a
        :mod:`repro.backends` registry name; ``"fefet"`` by default).
        Every registration stamps the artifact with it, and
        :meth:`load` *rejects* an artifact registered for a different
        backend instead of silently programming the wrong array type.
        Artifacts written before the field existed count as
        ``"fefet"``.
    backend_options:
        Extra backend constructor arguments applied to every engine
        this registry materialises (e.g. ``{"n_cycles": 255}`` for a
        memristor registry).  Part of the registry's serving
        configuration, like ``backend`` itself: models validated on a
        non-default configuration must be served by a registry opened
        with the same options.

    Notes
    -----
    All public methods are thread-safe: the serving scheduler resolves
    engines from its worker thread while registrations arrive from
    others.  Engine construction itself happens *outside* the registry
    lock so a slow programming pass never blocks registrations — the
    only consequence is that two concurrent first requests for the same
    engine may both program it, with one result winning the cache slot.
    """

    def __init__(
        self,
        root: Union[str, Path],
        engine_cache_size: int = 8,
        backend: str = DEFAULT_BACKEND,
        backend_options: Optional[dict] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.engine_cache_size = check_positive_int(
            engine_cache_size, "engine_cache_size"
        )
        get_backend_class(backend)  # fail fast on unknown names
        self.backend = str(backend)
        self.backend_options = dict(backend_options or {})
        self._lock = threading.RLock()
        self._engines: "OrderedDict[tuple, object]" = OrderedDict()
        # latest-version cache: version=None resolution sits on the
        # serving hot path (every submit routes through it), and a
        # directory scan per request is a syscall tax the scheduler
        # shouldn't pay.  Maintained by register()/unregister() and
        # dropped by invalidate(); registrations made by *other
        # processes* become visible after invalidate(name).
        self._latest: Dict[str, int] = {}

    # ---------------------------------------------------------- persistence
    def _model_dir(self, name: str) -> Path:
        return self.root / _check_name(name)

    def register(
        self,
        name: str,
        model: QuantizedBayesianModel,
        spec: Optional[MultiLevelCellSpec] = None,
    ) -> int:
        """Persist ``model`` as the next version of ``name``.

        Returns the new version number (1 for a first registration).
        Any cached engines for ``name`` — all versions — are dropped, so
        subsequent ``version=None`` lookups serve the new weights.
        """
        _check_name(name)
        with self._lock:
            directory = self._model_dir(name)
            directory.mkdir(parents=True, exist_ok=True)
            version = (self.versions(name)[-1] + 1) if self.versions(name) else 1
            save_model(
                directory / f"v{version:04d}.json",
                model,
                spec,
                backend=self.backend,
            )
            self._invalidate_locked(name)
            self._latest[name] = version
        return version

    def versions(self, name: str) -> List[int]:
        """Registered version numbers of ``name``, ascending (may be [])."""
        directory = self._model_dir(name)
        if not directory.is_dir():
            return []
        found = []
        for entry in directory.iterdir():
            match = _VERSION_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        """The highest registered version of ``name`` (cached).

        Raises
        ------
        KeyError
            If ``name`` has no registered versions.
        """
        with self._lock:
            cached = self._latest.get(name)
            if cached is not None:
                return cached
            versions = self.versions(name)
            if not versions:
                raise KeyError(f"no model registered under {name!r}")
            self._latest[name] = versions[-1]
            return versions[-1]

    def list_models(self) -> Dict[str, List[int]]:
        """Every registered name mapped to its version list."""
        out = {}
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and self.versions(entry.name):
                out[entry.name] = self.versions(entry.name)
        return out

    def load(
        self,
        name: str,
        version: Optional[int] = None,
        *,
        backend: Optional[str] = None,
    ) -> Tuple[QuantizedBayesianModel, MultiLevelCellSpec]:
        """Load ``(model, spec)`` for a version (latest by default).

        ``backend`` names the technology the caller will program the
        model onto.  Left ``None`` (the legacy form) it defaults to the
        registry's own backend and the artifact's registered backend
        must match it; passing it explicitly is the deployment path —
        a replica spec naming a different technology than the artifact
        was registered for is an *explicit* cross-technology decision
        (written into the deployment by an operator), so the pin check
        is waived.

        Raises
        ------
        ValueError
            If the artifact was registered for a different backend than
            this registry serves (and no explicit override was given) —
            programming a model quantised for one array technology onto
            another must be an explicit decision, never an accident of
            sharing a directory.
        """
        version = self.resolve_version(name, version)
        path = self._model_dir(name) / f"v{version:04d}.json"
        if not path.is_file():
            raise KeyError(f"model {name!r} has no version {version}")
        model, spec, artifact = load_artifact(path)
        if backend is None and artifact != self.backend:
            raise ValueError(
                f"model {name!r} v{version} was registered for backend "
                f"{artifact!r} but this registry serves {self.backend!r}; "
                f"open the registry with backend={artifact!r}, re-register "
                f"the model, or name the backend explicitly in a "
                f"deployment replica spec"
            )
        return model, spec

    def unregister(self, name: str) -> None:
        """Delete every version of ``name`` and its cached engines."""
        with self._lock:
            directory = self._model_dir(name)
            for version in self.versions(name):
                (directory / f"v{version:04d}.json").unlink()
            if directory.is_dir() and not any(directory.iterdir()):
                directory.rmdir()
            self._invalidate_locked(name)

    def resolve_version(self, name: str, version: Optional[int]) -> int:
        if version is None:
            return self.latest_version(name)
        return int(version)

    # -------------------------------------------------------- materialisation
    def get_engine(
        self,
        name: str,
        version: Optional[int] = None,
        *,
        max_rows: Optional[int] = None,
        seed: RngLike = None,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        mirror_gain_sigma: float = 0.0,
        backend: Optional[str] = None,
        backend_options: Optional[dict] = None,
        fresh: bool = False,
    ):
        """A programmed engine for ``name``/``version`` (latest by default).

        ``fresh=True`` skips the cache *read* and materialises anew —
        the replacement rung of the repair ladders.  The replacement
        takes over the cache slot, so later lookups of the same
        configuration serve the new hardware; other cached engines of
        the model are untouched (unlike :meth:`invalidate`).

        Returns a flat :class:`FeBiMEngine`, or a
        :class:`~repro.crossbar.tiling.TiledFeBiM` when ``max_rows`` is
        given (hierarchical WTA for many-class models).

        ``backend``/``backend_options`` override the registry's serving
        configuration for this engine only — the deployment path, where
        each replica names its own technology (see
        :meth:`load` for the pin-check semantics).  Left ``None`` they
        resolve to the registry defaults, so a single-replica
        deployment on the registry backend shares the *same cache
        entry* (and therefore the same programmed engine object) as a
        legacy lookup.

        Engines are cached (LRU) when the configuration is hashable and
        reproducible: ``seed`` of ``None``/``int`` and default
        ``variation``/``params``/``mirror_gain_sigma``.  Any other
        configuration builds a fresh uncached engine — a Generator seed
        has stream position, so caching it would serve different noise
        than a fresh materialisation.
        """
        version = self.resolve_version(name, version)
        backend_name = self.backend if backend is None else str(backend)
        options = dict(
            self.backend_options if backend_options is None else backend_options
        )
        try:
            options_key = tuple(sorted(options.items()))
            hash(options_key)
        except TypeError:
            options_key = None  # unhashable option values: uncacheable
        cacheable = (
            (seed is None or isinstance(seed, int))
            and variation is None
            and params is None
            and mirror_gain_sigma == 0.0
            and options_key is not None
        )
        key = (name, version, max_rows, seed, backend_name, options_key)
        if cacheable and not fresh:
            with self._lock:
                if key in self._engines:
                    self._engines.move_to_end(key)
                    return self._engines[key]

        model, spec = self.load(name, version, backend=backend)
        if max_rows is None:
            engine = FeBiMEngine(
                model,
                spec=spec,
                variation=variation,
                params=params,
                mirror_gain_sigma=mirror_gain_sigma,
                seed=seed,
                backend=backend_name,
                backend_options=options,
            )
        else:
            engine = TiledFeBiM(
                model,
                max_rows=max_rows,
                spec=spec,
                variation=variation,
                params=params,
                seed=seed,
                backend=backend_name,
                backend_options=options,
            )
        if cacheable:
            with self._lock:
                self._engines[key] = engine
                self._engines.move_to_end(key)
                while len(self._engines) > self.engine_cache_size:
                    self._engines.popitem(last=False)
        return engine

    # ------------------------------------------------------------ cache admin
    def _invalidate_locked(self, name: str) -> None:
        self._latest.pop(name, None)
        for key in [k for k in self._engines if k[0] == name]:
            del self._engines[key]

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop cached engines and version lookups for ``name`` (all
        names when ``None``) — e.g. after another process wrote into
        the registry directory."""
        with self._lock:
            if name is None:
                self._engines.clear()
                self._latest.clear()
            else:
                self._invalidate_locked(name)

    def cached_engines(self) -> List[tuple]:
        """Cache keys currently alive, least- to most-recently used."""
        with self._lock:
            return list(self._engines)

    def __contains__(self, name: str) -> bool:
        return bool(self.versions(name))

    def __repr__(self) -> str:
        return (
            f"ModelRegistry({str(self.root)!r}, backend={self.backend!r}, "
            f"{len(self.list_models())} models, "
            f"{len(self._engines)}/{self.engine_cache_size} engines cached)"
        )
