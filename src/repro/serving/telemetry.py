"""Serving telemetry: counters, batch occupancy and latency percentiles.

The online layer (:mod:`repro.serving.scheduler` /
:mod:`repro.serving.server`) records every request and every executed
micro-batch here.  Counters are plain integers behind one lock —
recording must stay cheap because it sits on the per-request hot path —
and latency percentiles come from a bounded ring buffer of recent
end-to-end latencies (a full history would grow without bound under the
sustained traffic the server is built for).

Two accounting subtleties worth naming:

* **Occupancy is aggregated per batch, not globally.**  Each replica
  runs its own scheduler, and deployments may mix ``max_batch`` values;
  dividing a global average fill by one global ``max_batch`` would
  report >100% or diluted occupancy.  ``record_batch`` therefore folds
  each batch's *own* ``size / max_batch`` into a running sum, and the
  snapshot reports the mean of those per-batch fractions.
* **Shed requests balance the in-flight ledger.**  An admission-control
  shed (:class:`~repro.serving.scheduler.Overloaded`) counts as
  ``shed`` — neither completed nor failed — and ``in_flight`` subtracts
  it, so a load-shedding server still reports zero in-flight once
  drained.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.utils.validation import check_positive_int

#: Default number of recent latency samples kept for percentile queries.
LATENCY_WINDOW = 8192


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A consistent point-in-time view of the serving counters.

    Attributes
    ----------
    submitted:
        Requests accepted by :meth:`MicroBatchScheduler.submit`.
    completed:
        Requests whose future resolved with a result.
    failed:
        Requests whose future resolved with an exception.
    cancelled:
        Requests cancelled by a non-draining shutdown.
    batches:
        Micro-batches executed.
    avg_batch:
        Mean samples per executed batch (0.0 before the first batch).
    occupancy:
        ``avg_batch / max_batch`` — how full the coalescing window ran.
    p50_latency_s / p95_latency_s:
        Median / tail end-to-end latency (submit -> result) over the
        recent window, in seconds (``nan`` before the first completion).
    per_model:
        Completed-request count per routing key.
    health_checks / canary_failures:
        Canary sweeps run by the :class:`~repro.serving.health.
        HealthMonitor` and the canary predictions that disagreed with
        their pristine baseline across them.
    refreshes / replacements:
        Automatic repairs the monitor triggered: in-place reprograms
        and full engine re-materialisations.
    maintenance_sweeps:
        Background sweeps completed by the server's maintenance
        thread (each sweep runs every installed canary check).
    per_replica:
        Completed-request count per deployment replica (keys like
        ``"iris@v1#r0[ideal]"``) — the counter the routing-policy
        acceptance gates assert against.
    failovers:
        Requests transparently resubmitted to another replica after
        their first replica failed (the client saw no error).
    replica_evictions:
        Replicas the router's heal ladder gave up on and removed from
        the routing set (refresh and replace both failed).
    mirror_votes / mirror_disagreements:
        Mirrored requests resolved by majority vote, and how many of
        those had at least one replica disagreeing with the majority.
    shed_requests:
        Requests rejected or evicted by admission control (typed
        :class:`~repro.serving.scheduler.Overloaded`) — deliberate
        load-shed, not failures.
    scale_ups / scale_downs:
        Replicas added / retired by the autoscale controller.
    lane_depth:
        Currently queued requests per priority lane, across schedulers
        (lanes that drained back to zero are pruned).
    workers_started / workers_lost / worker_respawns:
        Cluster-plane supervision counters (process placement only):
        worker processes that came up, were declared dead, and were
        respawned by the :class:`~repro.serving.cluster.ClusterServer`.
    """

    submitted: int
    completed: int
    failed: int
    cancelled: int
    batches: int
    max_batch: int
    avg_batch: float
    occupancy: float
    p50_latency_s: float
    p95_latency_s: float
    per_model: Dict[str, int] = field(default_factory=dict)
    health_checks: int = 0
    canary_failures: int = 0
    refreshes: int = 0
    replacements: int = 0
    maintenance_sweeps: int = 0
    per_replica: Dict[str, int] = field(default_factory=dict)
    failovers: int = 0
    replica_evictions: int = 0
    mirror_votes: int = 0
    mirror_disagreements: int = 0
    shed_requests: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    lane_depth: Dict[int, int] = field(default_factory=dict)
    workers_started: int = 0
    workers_lost: int = 0
    worker_respawns: int = 0

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet resolved either way."""
        return (
            self.submitted
            - self.completed
            - self.failed
            - self.cancelled
            - self.shed_requests
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (for ``febim serve --json``).

        Latency percentiles are NaN before the first completion;
        ``json.dumps`` would happily emit the non-standard ``NaN``
        token, which strict parsers reject — serialise as ``null``.
        """

        def _ms(seconds: float) -> Optional[float]:
            return None if seconds != seconds else seconds * 1e3

        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "avg_batch": self.avg_batch,
            "occupancy": self.occupancy,
            "p50_latency_ms": _ms(self.p50_latency_s),
            "p95_latency_ms": _ms(self.p95_latency_s),
            "per_model": dict(self.per_model),
            "health_checks": self.health_checks,
            "canary_failures": self.canary_failures,
            "refreshes": self.refreshes,
            "replacements": self.replacements,
            "maintenance_sweeps": self.maintenance_sweeps,
            "per_replica": dict(self.per_replica),
            "failovers": self.failovers,
            "replica_evictions": self.replica_evictions,
            "mirror_votes": self.mirror_votes,
            "mirror_disagreements": self.mirror_disagreements,
            "shed_requests": self.shed_requests,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "lane_depth": {str(k): v for k, v in sorted(self.lane_depth.items())},
            "workers_started": self.workers_started,
            "workers_lost": self.workers_lost,
            "worker_respawns": self.worker_respawns,
        }

    def format_lines(self) -> str:
        """Human-readable report block (for ``febim serve --report``)."""
        lines = [
            f"requests   submitted {self.submitted}  completed {self.completed}"
            f"  failed {self.failed}  cancelled {self.cancelled}",
            f"batches    {self.batches}  avg fill {self.avg_batch:.1f}/"
            f"{self.max_batch} ({self.occupancy * 100:.0f}% occupancy)",
            f"latency    p50 {self.p50_latency_s * 1e3:.2f} ms   "
            f"p95 {self.p95_latency_s * 1e3:.2f} ms",
        ]
        if self.health_checks:
            lines.append(
                f"health     {self.health_checks} checks  "
                f"{self.canary_failures} canary failures  "
                f"{self.refreshes} refreshes  "
                f"{self.replacements} replacements  "
                f"{self.maintenance_sweeps} sweeps"
            )
        if self.failovers or self.replica_evictions or self.mirror_votes:
            lines.append(
                f"routing    {self.failovers} failovers  "
                f"{self.replica_evictions} evictions  "
                f"{self.mirror_votes} mirror votes "
                f"({self.mirror_disagreements} split)"
            )
        if self.shed_requests or self.scale_ups or self.scale_downs:
            lines.append(
                f"slo        {self.shed_requests} shed  "
                f"{self.scale_ups} scale-ups  "
                f"{self.scale_downs} scale-downs"
            )
        if self.workers_started or self.workers_lost or self.worker_respawns:
            lines.append(
                f"cluster    {self.workers_started} workers started  "
                f"{self.workers_lost} lost  "
                f"{self.worker_respawns} respawned"
            )
        for lane in sorted(self.lane_depth):
            lines.append(
                f"  lane {lane:2d} depth {self.lane_depth[lane]}"
            )
        for name in sorted(self.per_model):
            lines.append(f"  model {name:20s} {self.per_model[name]} served")
        for replica in sorted(self.per_replica):
            lines.append(
                f"  replica {replica:20s} {self.per_replica[replica]} served"
            )
        return "\n".join(lines)


class Telemetry:
    """Thread-safe serving counters shared by scheduler and server.

    Parameters
    ----------
    max_batch:
        The scheduler's coalescing limit, used for occupancy.
    window:
        Ring-buffer capacity for latency percentile queries.
    """

    def __init__(self, max_batch: int, window: int = LATENCY_WINDOW):
        self.max_batch = check_positive_int(max_batch, "max_batch")
        check_positive_int(window, "window")
        #: Optional :class:`~repro.serving.observability.FlightRecorder`.
        #: Left ``None`` until observability is armed, so :meth:`emit`
        #: is a single attribute check on the hot path.
        self.recorder = None
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._batches = 0
        self._batched_samples = 0
        self._occupancy_sum = 0.0
        self._per_model: Dict[str, int] = {}
        self._latencies = deque(maxlen=window)
        self._health_checks = 0
        self._canary_failures = 0
        self._refreshes = 0
        self._replacements = 0
        self._maintenance_sweeps = 0
        self._per_replica: Dict[str, int] = {}
        self._failovers = 0
        self._replica_evictions = 0
        self._mirror_votes = 0
        self._mirror_disagreements = 0
        self._shed = 0
        self._scale_ups = 0
        self._scale_downs = 0
        self._lane_depth: Dict[int, int] = {}
        self._workers_started = 0
        self._workers_lost = 0
        self._worker_respawns = 0

    # ------------------------------------------------------------- recording
    def emit(self, kind: str, **detail) -> None:
        """Forward one typed event to the attached flight recorder.

        Telemetry is the object every layer (scheduler, router, health
        monitor, autoscale controller) already holds, so it doubles as
        the event bus: call sites ``emit`` next to their ``record_*``
        call and pass the detail only they know (victim lane, replica
        label, triggering snapshot).  With no recorder attached this is
        one ``None`` check — the disabled path stays allocation-free.
        """
        recorder = self.recorder
        if recorder is not None:
            recorder.record(kind, **detail)

    def record_submitted(self, n: int = 1, lane: Optional[int] = None) -> None:
        """``n`` requests admitted; with ``lane`` set, the per-lane
        depth gauge rises until :meth:`record_lane_drained` (or a
        dequeued shed) takes them back out."""
        with self._lock:
            self._submitted += n
            if lane is not None:
                self._lane_depth[lane] = self._lane_depth.get(lane, 0) + n

    def record_shed(
        self, n: int = 1, lane: int = 0, dequeued: bool = False
    ) -> None:
        """``n`` requests rejected by admission control.

        ``dequeued=True`` means the victims were already queued (their
        admission bumped the lane gauge, which must come back down);
        door rejections never entered a lane.
        """
        with self._lock:
            self._shed += n
            if dequeued:
                depth = self._lane_depth.get(lane, 0) - n
                if depth > 0:
                    self._lane_depth[lane] = depth
                else:
                    self._lane_depth.pop(lane, None)

    def record_lane_drained(self, lane: int, n: int = 1) -> None:
        """``n`` queued requests left ``lane`` (batched or cancelled)."""
        with self._lock:
            depth = self._lane_depth.get(lane, 0) - n
            if depth > 0:
                self._lane_depth[lane] = depth
            else:
                self._lane_depth.pop(lane, None)

    def record_scale_up(self) -> None:
        """One replica added by the autoscale controller."""
        with self._lock:
            self._scale_ups += 1

    def record_scale_down(self) -> None:
        """One replica retired by the autoscale controller."""
        with self._lock:
            self._scale_downs += 1

    def record_batch(
        self,
        model: str,
        size: int,
        latencies_s: Optional[np.ndarray] = None,
        max_batch: Optional[int] = None,
    ) -> None:
        """One executed micro-batch of ``size`` completed requests.

        ``max_batch`` is the *executing scheduler's* coalescing limit;
        occupancy is accumulated against it (falling back to this
        telemetry's own ``max_batch``) so mixed-``max_batch``
        deployments aggregate correctly.
        """
        with self._lock:
            self._batches += 1
            self._batched_samples += size
            self._occupancy_sum += size / (max_batch or self.max_batch)
            self._completed += size
            self._per_model[model] = self._per_model.get(model, 0) + size
            if latencies_s is not None:
                self._latencies.extend(float(v) for v in latencies_s)

    def record_completed(
        self,
        model: str,
        n: int = 1,
        latencies_s: Optional[np.ndarray] = None,
    ) -> None:
        """``n`` requests completed *without* a local micro-batch.

        The cluster front end's accounting hook: the executing batch
        ran in a worker process (counted in the worker's own
        telemetry), so the front end records completion and end-to-end
        latency only — never phantom batches or occupancy.
        """
        with self._lock:
            self._completed += n
            self._per_model[model] = self._per_model.get(model, 0) + n
            if latencies_s is not None:
                self._latencies.extend(float(v) for v in latencies_s)

    def record_failed(self, n: int) -> None:
        with self._lock:
            self._failed += n

    def record_cancelled(self, n: int) -> None:
        with self._lock:
            self._cancelled += n

    def record_health_check(self, failed_canaries: int = 0) -> None:
        """One canary sweep with ``failed_canaries`` baseline mismatches."""
        with self._lock:
            self._health_checks += 1
            self._canary_failures += failed_canaries

    def record_refresh(self) -> None:
        """One automatic in-place reprogram triggered by the monitor."""
        with self._lock:
            self._refreshes += 1

    def record_replacement(self) -> None:
        """One automatic engine re-materialisation (fresh hardware)."""
        with self._lock:
            self._replacements += 1

    def record_maintenance_sweep(self) -> None:
        """One completed background maintenance sweep."""
        with self._lock:
            self._maintenance_sweeps += 1

    def record_replica_served(self, replica: str, n: int = 1) -> None:
        """``n`` requests answered by deployment replica ``replica``."""
        with self._lock:
            self._per_replica[replica] = self._per_replica.get(replica, 0) + n

    def record_failover(self, n: int = 1) -> None:
        """``n`` replica attempts whose transparent resubmission served
        the client (requests that failed everywhere are errors, not
        failovers)."""
        if n <= 0:
            return
        with self._lock:
            self._failovers += n

    def record_replica_eviction(self) -> None:
        """One replica removed from routing by the heal ladder."""
        with self._lock:
            self._replica_evictions += 1

    def record_mirror_vote(self, unanimous: bool) -> None:
        """One mirrored request resolved by majority vote."""
        with self._lock:
            self._mirror_votes += 1
            if not unanimous:
                self._mirror_disagreements += 1

    def record_worker_started(self) -> None:
        """One cluster worker process connected and said hello."""
        with self._lock:
            self._workers_started += 1

    def record_worker_lost(self) -> None:
        """One cluster worker declared dead by the supervisor."""
        with self._lock:
            self._workers_lost += 1

    def record_worker_respawn(self) -> None:
        """One lost worker's replacement process came up."""
        with self._lock:
            self._worker_respawns += 1

    # --------------------------------------------------------------- reading
    def snapshot(self) -> TelemetrySnapshot:
        """Consistent snapshot of every counter."""
        with self._lock:
            avg = self._batched_samples / self._batches if self._batches else 0.0
            if self._latencies:
                lat = np.fromiter(self._latencies, dtype=float)
                p50, p95 = np.percentile(lat, [50.0, 95.0])
            else:
                p50 = p95 = float("nan")
            return TelemetrySnapshot(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                cancelled=self._cancelled,
                batches=self._batches,
                max_batch=self.max_batch,
                avg_batch=avg,
                occupancy=(
                    self._occupancy_sum / self._batches if self._batches else 0.0
                ),
                p50_latency_s=float(p50),
                p95_latency_s=float(p95),
                per_model=dict(self._per_model),
                health_checks=self._health_checks,
                canary_failures=self._canary_failures,
                refreshes=self._refreshes,
                replacements=self._replacements,
                maintenance_sweeps=self._maintenance_sweeps,
                per_replica=dict(self._per_replica),
                failovers=self._failovers,
                replica_evictions=self._replica_evictions,
                mirror_votes=self._mirror_votes,
                mirror_disagreements=self._mirror_disagreements,
                shed_requests=self._shed,
                scale_ups=self._scale_ups,
                scale_downs=self._scale_downs,
                lane_depth=dict(self._lane_depth),
                workers_started=self._workers_started,
                workers_lost=self._workers_lost,
                worker_respawns=self._worker_respawns,
            )
