"""Micro-batching request scheduler over the batched inference core.

PR 1 made the *offline* read path fast by amortising every layer over
dense batches; an online server receives single-sample requests that
would each pay the full per-call overhead again.  This module closes
the gap with the classic serving idiom: a thread-safe queue per routing
key, a worker that coalesces whatever is pending into one
``infer_batch`` call, and per-request futures that resolve to views
into the shared batch report.

Coalescing policy (:class:`BatchPolicy`)
----------------------------------------

A queue is flushed as soon as either bound is hit:

* ``max_batch`` requests are waiting (the batch is full), or
* the *oldest* waiting request has aged ``max_wait_ms`` (latency bound).

Under heavy traffic the scheduler therefore runs full batches at the
offline throughput ceiling; under trickle traffic no request waits more
than ``max_wait_ms`` beyond its own service time.

Admission control
-----------------

By default a queue is unbounded (the legacy behaviour).  With
``max_queue_depth`` set, the scheduler refuses to let a backlog grow
past the bound; an arrival at a full queue is resolved by priority:

* a *lower-priority* queued request is shed to make room (its future
  fails with :class:`Overloaded` — a typed, fast rejection the caller
  can distinguish from a real failure), or
* the arrival itself is rejected with :class:`Overloaded` when nothing
  cheaper is queued, or
* with ``block=True`` the submitter waits for space instead
  (backpressure; ``timeout`` bounds the wait).

Within a queue, requests live in *priority lanes*: batches fill from
the highest lane first (FIFO within a lane), and sheds always take the
newest request of the lowest lane — a low-priority tenant degrades
before a high-priority one ever notices.  All-default traffic lands in
lane 0 and behaves exactly as the unbounded FIFO did.

Determinism
-----------

With the default (noise-free) variation model the crossbar read is a
pure function of the programmed state, so a served result is
bit-identical to calling ``infer_batch`` directly on the same engine —
regardless of which requests happened to share its micro-batch.  This
is enforced by ``tests/property/test_serving_equivalence.py``.  With
``sigma_read > 0`` the noise stream is consumed in batch order, so
per-request draws depend on traffic interleaving (exactly as a real
macro's thermal noise would).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterator, List, Optional

import numpy as np

from repro.kernels.scratch import default_pool
from repro.reliability.observability import sample_margin
from repro.serving.observability.trace import Span, Trace, Tracer
from repro.serving.telemetry import Telemetry


def _span_currents(report) -> np.ndarray:
    """Per-sample current signature from either batch-report flavour
    (mirrors the health module's ``_report_currents``; duplicated to
    keep the scheduler free of a health-layer import)."""
    currents = getattr(report, "wordline_currents", None)
    if currents is None:
        currents = report.tile_currents
    return np.asarray(currents, dtype=float)
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing knobs for the micro-batch scheduler.

    Attributes
    ----------
    max_batch:
        Largest number of requests fused into one ``infer_batch`` call.
    max_wait_ms:
        Longest a request may sit in the queue waiting for company
        before its batch is launched anyway (milliseconds).
    """

    max_batch: int = 64
    max_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        check_positive_int(self.max_batch, "max_batch")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")


@dataclass(frozen=True)
class ServedResult:
    """One request's slice of the micro-batch it was served in.

    Holds a reference into the shared batch report instead of eagerly
    copying per-sample fields — resolving thousands of futures per
    second must not cost a per-request report materialisation.

    Attributes
    ----------
    model:
        Routing key the request was served under.
    batch_size:
        How many requests shared the micro-batch.
    queue_wait_s:
        Time spent queued before the batch launched (seconds).
    """

    model: str
    batch_size: int
    queue_wait_s: float
    _report: object
    _index: int

    @property
    def prediction(self) -> int:
        """The winning class label."""
        return self._report.predictions[self._index]

    @property
    def delay(self) -> float:
        """Worst-case circuit inference latency of this sample (s)."""
        return float(self._report.delay[self._index])

    @property
    def energy_total(self) -> float:
        """Total inference energy attributed to this sample (J)."""
        return float(self._report.energy.total[self._index])

    def report(self):
        """The full scalar per-sample report (flat or tiled flavour)."""
        return self._report.sample(self._index)


class SchedulerClosed(RuntimeError):
    """Raised by :meth:`MicroBatchScheduler.submit` after shutdown."""


class Overloaded(RuntimeError):
    """Typed admission rejection: the bounded queue is full.

    Raised synchronously by :meth:`MicroBatchScheduler.submit` when the
    arrival itself is refused (nothing lower-priority to shed, or a
    blocking submit timed out), and set on the future of a queued
    request that was shed to admit a higher-priority arrival.  A shed
    is *not* a failure — the request was never attempted — so the
    router's failover path retries it elsewhere without marking the
    overloaded replica down.
    """

    def __init__(
        self,
        message: str,
        key: Optional[Hashable] = None,
        depth: int = 0,
        lane: int = 0,
    ):
        super().__init__(message)
        self.key = key
        self.depth = depth
        self.lane = lane


class _Request:
    __slots__ = (
        "levels", "future", "enqueued_at", "lane",
        "trace", "trace_owned", "queue_span",
    )

    def __init__(self, levels: np.ndarray, enqueued_at: float, lane: int = 0):
        self.levels = levels
        self.future: "Future[ServedResult]" = Future()
        self.enqueued_at = enqueued_at
        self.lane = lane
        # Tracing state: ``trace`` is the sampled Trace riding this
        # request (almost always None), ``trace_owned`` says whether
        # this scheduler must finish it (False when the router passed
        # it in and finishes it after routing resolves), and
        # ``queue_span`` is the currently-open lane-wait span.
        self.trace: Optional[Trace] = None
        self.trace_owned = False
        self.queue_span: Optional[Span] = None


class _LaneQueue:
    """One routing key's pending requests, split into priority lanes.

    Flush order is highest lane first, FIFO within a lane; sheds take
    the *newest* request of the *lowest* lane (it has waited least and
    matters least).  The common all-lane-0 case degenerates to the
    plain FIFO deque this class replaced.
    """

    __slots__ = ("lanes", "size")

    def __init__(self):
        self.lanes: Dict[int, deque] = {}
        self.size = 0

    def __len__(self) -> int:
        return self.size

    def append(self, request: _Request) -> None:
        self.lanes.setdefault(request.lane, deque()).append(request)
        self.size += 1

    def oldest_enqueued_at(self) -> float:
        """Earliest enqueue time across lanes (age-out deadline)."""
        return min(q[0].enqueued_at for q in self.lanes.values() if q)

    def pop_batch(self, n: int) -> List[_Request]:
        """Up to ``n`` requests, highest lane first, FIFO within."""
        popped: List[_Request] = []
        for lane in sorted(self.lanes, reverse=True):
            queue = self.lanes[lane]
            while queue and len(popped) < n:
                popped.append(queue.popleft())
            if not queue:
                del self.lanes[lane]
            if len(popped) == n:
                break
        self.size -= len(popped)
        return popped

    def shed_lowest(self, below_lane: int) -> Optional[_Request]:
        """Evict the newest request of the lowest lane strictly below
        ``below_lane``; ``None`` when nothing cheaper is queued."""
        for lane in sorted(self.lanes):
            if lane >= below_lane:
                return None
            queue = self.lanes[lane]
            if not queue:
                continue
            victim = queue.pop()
            if not queue:
                del self.lanes[lane]
            self.size -= 1
            return victim
        return None

    def drain_all(self) -> List[_Request]:
        """Remove and return everything (shutdown cancellation)."""
        drained = [r for q in self.lanes.values() for r in q]
        self.lanes.clear()
        self.size = 0
        return drained


class MicroBatchScheduler:
    """Coalesces single-sample requests into batched engine reads.

    Parameters
    ----------
    resolve_engine:
        Callable mapping a routing key to an engine-like object exposing
        ``infer_batch(levels) -> report`` with ``predictions``,
        ``delay`` and ``energy.total`` per-sample arrays (both
        :class:`~repro.core.engine.FeBiMEngine` and
        :class:`~repro.crossbar.tiling.TiledFeBiM` qualify).  Called on
        the worker thread once per flushed batch; resolution errors
        fail that batch's futures, not the scheduler.
    policy:
        Coalescing bounds; defaults to ``BatchPolicy()``.
    telemetry:
        Shared counters; a private instance is created when omitted.
    max_queue_depth:
        Bound on each routing key's backlog (``None`` = unbounded, the
        legacy behaviour).  Arrivals at a full queue shed the cheapest
        queued request or are rejected with :class:`Overloaded` — see
        the module docstring's admission-control contract.
    tracer:
        Optional request :class:`~repro.serving.observability.Tracer`.
        When set, :meth:`submit` samples traces for requests not
        already carrying one (the router passes its own via the
        ``trace`` argument).  May also be attached after construction
        (``scheduler.tracer = tracer``) — the attribute is read per
        submit.

    The scheduler owns one daemon worker thread.  ``submit`` never
    blocks on inference — it enqueues and returns a future (unless the
    caller opts into backpressure with ``block=True``).
    """

    def __init__(
        self,
        resolve_engine: Callable[[Hashable], object],
        policy: Optional[BatchPolicy] = None,
        telemetry: Optional[Telemetry] = None,
        max_queue_depth: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.policy = policy or BatchPolicy()
        self.resolve_engine = resolve_engine
        self.telemetry = telemetry or Telemetry(self.policy.max_batch)
        self.tracer = tracer
        if max_queue_depth is not None:
            check_positive_int(max_queue_depth, "max_queue_depth")
        self.max_queue_depth = max_queue_depth
        self._scratch = default_pool()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._queues: Dict[Hashable, _LaneQueue] = {}
        self._pending = 0
        self._inflight = 0
        self._paused = 0
        self._quiet = threading.Condition(self._lock)
        self._draining = False
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="febim-microbatch", daemon=True
        )
        self._worker.start()

    # ---------------------------------------------------------------- client
    def submit(
        self,
        key: Hashable,
        evidence_levels: np.ndarray,
        priority: int = 0,
        block: bool = False,
        timeout: Optional[float] = None,
        trace: Optional[Trace] = None,
    ) -> "Future[ServedResult]":
        """Enqueue one sample for ``key``; returns its result future.

        ``evidence_levels`` must be a single 1-D discretised sample.
        The future resolves to a :class:`ServedResult` (or raises the
        engine/resolution error that failed its batch).

        ``priority`` is the request's lane (higher serves — and
        survives sheds — first; only meaningful on a bounded queue).
        With ``block=True`` a full queue exerts backpressure: the call
        waits up to ``timeout`` seconds for space instead of shedding,
        then raises :class:`Overloaded`.

        ``trace`` attaches a caller-owned trace to this request (the
        router's failover path resubmits one trace across replicas);
        the scheduler appends admit/queue/execute spans but leaves
        finishing to the caller.  Without it, an attached ``tracer``
        may sample a scheduler-owned trace instead.
        """
        levels = np.asarray(evidence_levels, dtype=int)
        if levels.ndim != 1:
            raise ValueError(
                f"submit takes one 1-D sample, got shape {levels.shape}"
            )
        lane = int(priority)
        request = _Request(levels, time.monotonic(), lane=lane)
        if trace is not None:
            request.trace = trace
        else:
            tracer = self.tracer
            if tracer is not None:
                request.trace = tracer.sample(str(key))
                request.trace_owned = request.trace is not None
        victim: Optional[_Request] = None
        rejection: Optional[Overloaded] = None
        blocked_at: Optional[float] = None
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._closed:
                    if request.trace is not None and request.trace_owned:
                        request.trace.finish("error")
                    raise SchedulerClosed("scheduler is shut down")
                queue = self._queues.setdefault(key, _LaneQueue())
                if (
                    self.max_queue_depth is None
                    or len(queue) < self.max_queue_depth
                ):
                    break
                if block:
                    # Backpressure: wait for the worker to make room.
                    # The queue object may be deleted while we sleep
                    # (worker drains it empty), so it is re-fetched at
                    # the top of the loop.
                    if blocked_at is None:
                        blocked_at = time.monotonic()
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            rejection = Overloaded(
                                f"queue for {key!r} still full after "
                                f"{timeout:.3g} s of backpressure",
                                key=key, depth=len(queue), lane=lane,
                            )
                            break
                    self._space.wait(remaining)
                    continue
                victim = queue.shed_lowest(lane)
                if victim is None:
                    rejection = Overloaded(
                        f"queue for {key!r} is full "
                        f"({len(queue)}/{self.max_queue_depth}) and nothing "
                        f"below priority {lane} is queued",
                        key=key, depth=len(queue), lane=lane,
                    )
                break
            if rejection is None:
                if request.trace is not None:
                    # Spans attach before the request becomes visible
                    # to the worker — it may pop (and must close) the
                    # queue span the instant the lock drops.
                    t_admitted = time.monotonic()
                    request.trace.add_span(
                        "admit", request.enqueued_at, t_admitted,
                        key=str(key), lane=lane,
                    )
                    request.queue_span = request.trace.span(
                        "queue", start_s=t_admitted, lane=lane
                    )
                queue.append(request)
                self._pending += 1
                if victim is not None:
                    self._pending -= 1
                # Waking the worker on *every* submit is a context-switch
                # storm under load; it only needs to hear about a queue's
                # first request (a new age-out deadline) or a queue just
                # reaching a full batch.  Anything in between is covered
                # by the deadline it is already sleeping on.
                if len(queue) == 1 or len(queue) == self.policy.max_batch:
                    self._wake.notify()
        # Futures resolve outside the lock: a shed victim's done
        # callback (e.g. the router's failover resubmit) may take other
        # schedulers' locks.
        if rejection is not None:
            # The arrival was counted in, then straight back out: both
            # sides of the ledger move so in_flight stays balanced.
            self.telemetry.record_submitted()
            self.telemetry.record_shed(lane=lane)
            if request.trace is not None:
                request.trace.add_span(
                    "admit", request.enqueued_at, time.monotonic(),
                    key=str(key), lane=lane, outcome="shed",
                    depth=rejection.depth,
                )
                if request.trace_owned:
                    request.trace.finish("shed")
            self.telemetry.emit(
                "shed", key=str(key), lane=lane, depth=rejection.depth,
                reason="backpressure_timeout" if block else "door",
            )
            raise rejection
        if victim is not None:
            self.telemetry.record_shed(lane=victim.lane, dequeued=True)
            if victim.trace is not None:
                if victim.queue_span is not None:
                    victim.queue_span.end(outcome="shed")
                if victim.trace_owned:
                    victim.trace.finish("shed")
            self.telemetry.emit(
                "displacement", key=str(key), lane=lane,
                victim_lane=victim.lane, depth=self.max_queue_depth,
            )
            if victim.future.set_running_or_notify_cancel():
                victim.future.set_exception(
                    Overloaded(
                        f"shed from the queue for {key!r} by a "
                        f"priority-{lane} arrival",
                        key=key, depth=self.max_queue_depth, lane=victim.lane,
                    )
                )
        if blocked_at is not None:
            self.telemetry.emit(
                "backpressure_block", key=str(key), lane=lane,
                waited_ms=(time.monotonic() - blocked_at) * 1e3,
            )
        self.telemetry.record_submitted(lane=lane)
        return request.future

    def submit_many(
        self, key: Hashable, evidence_levels: np.ndarray, priority: int = 0
    ) -> List["Future[ServedResult]"]:
        """Enqueue a stack of samples as independent requests.

        A convenience for bulk submitters: one lock acquisition for the
        whole stack, but each sample still gets its own future and may
        land in a different micro-batch.  On a bounded queue each sample
        goes through :meth:`submit`'s full admission path individually
        (some may shed or be rejected — a rejected sample's future
        carries the :class:`Overloaded` instead of raising).
        """
        levels = np.asarray(evidence_levels, dtype=int)
        if levels.ndim != 2:
            raise ValueError(
                f"submit_many takes (n, features) samples, got {levels.shape}"
            )
        if self.max_queue_depth is not None:
            futures: List["Future[ServedResult]"] = []
            for row in levels:
                try:
                    futures.append(self.submit(key, row, priority=priority))
                except Overloaded as exc:
                    rejected: "Future[ServedResult]" = Future()
                    rejected.set_running_or_notify_cancel()
                    rejected.set_exception(exc)
                    futures.append(rejected)
            return futures
        now = time.monotonic()
        requests = [_Request(row, now, lane=int(priority)) for row in levels]
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            for request in requests:
                sampled = tracer.sample(str(key))
                if sampled is not None:
                    request.trace = sampled
                    request.trace_owned = True
        with self._lock:
            if self._closed:
                for request in requests:
                    if request.trace is not None and request.trace_owned:
                        request.trace.finish("error")
                raise SchedulerClosed("scheduler is shut down")
            queue = self._queues.setdefault(key, _LaneQueue())
            for request in requests:
                if request.trace is not None:
                    t_admitted = time.monotonic()
                    request.trace.add_span(
                        "admit", request.enqueued_at, t_admitted,
                        key=str(key), lane=request.lane,
                    )
                    request.queue_span = request.trace.span(
                        "queue", start_s=t_admitted, lane=request.lane
                    )
                queue.append(request)
            self._pending += len(requests)
            self._wake.notify()
        self.telemetry.record_submitted(len(requests), lane=int(priority))
        return [r.future for r in requests]

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Flush every queue now and wait until all requests resolved.

        Returns ``True`` when the scheduler went idle within
        ``timeout`` seconds (``None`` = wait forever).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._draining = True
            self._wake.notify()
            try:
                while self._pending or self._inflight:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return False
                    self._idle.wait(remaining)
            finally:
                # Also on timeout: leaving the flag set would force
                # every future batch to flush immediately, silently
                # collapsing coalescing to per-request calls.
                self._draining = False
        return True

    def pause(self, timeout: Optional[float] = None) -> bool:
        """Stop launching batches and wait out the in-flight one.

        The quiesce primitive for engine maintenance (reprogramming a
        live array, swapping a cached engine): after ``pause`` returns
        ``True`` the worker is guaranteed not to be touching any engine
        until :meth:`resume`.  Requests keep queueing meanwhile — the
        pause is invisible to clients beyond added latency.  Nests:
        each ``pause`` needs a matching ``resume``.  Returns ``False``
        (and does not pause) if the in-flight batch fails to finish
        within ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._paused += 1
            while self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._paused -= 1
                        self._wake.notify()
                        return False
                self._quiet.wait(remaining)
        return True

    def resume(self) -> None:
        """Undo one :meth:`pause`; the worker picks queues back up."""
        with self._lock:
            if self._paused == 0:
                raise RuntimeError("resume() without a matching pause()")
            self._paused -= 1
            if self._paused == 0:
                self._wake.notify()

    @contextmanager
    def quiesce(self, timeout: Optional[float] = None) -> Iterator[None]:
        """``with scheduler.quiesce(): ...`` — paused for the body.

        Raises ``TimeoutError`` if the in-flight batch does not clear
        within ``timeout``.
        """
        if not self.pause(timeout):
            raise TimeoutError("scheduler did not quiesce in time")
        try:
            yield
        finally:
            self.resume()

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the worker; idempotent.

        With ``drain=True`` (the default) every queued request is served
        first — the graceful path.  With ``drain=False`` queued requests
        are cancelled (their futures report cancellation).
        """
        if drain:
            self.drain(timeout)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            cancelled = []
            for queue in self._queues.values():
                cancelled.extend(queue.drain_all())
            self._pending -= len(cancelled)
            self._wake.notify()
            # Blocked (backpressure) submitters must observe _closed
            # and raise SchedulerClosed instead of sleeping forever.
            self._space.notify_all()
        for request in cancelled:
            request.future.cancel()
            if request.trace is not None:
                if request.queue_span is not None:
                    request.queue_span.end(outcome="cancelled")
                if request.trace_owned:
                    request.trace.finish("cancelled")
        if cancelled:
            self.telemetry.record_cancelled(len(cancelled))
            by_lane: Dict[int, int] = {}
            for request in cancelled:
                by_lane[request.lane] = by_lane.get(request.lane, 0) + 1
            for lane, count in by_lane.items():
                self.telemetry.record_lane_drained(lane, count)
        self._worker.join()

    @property
    def pending(self) -> int:
        """Requests queued but not yet launched in a batch."""
        with self._lock:
            return self._pending

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(drain=exc == (None, None, None))

    # ---------------------------------------------------------------- worker
    def _next_ready_key(self, now: float):
        """(key, deadline): a key due for flushing, or the earliest deadline.

        Called under the lock.  Returns ``(key, None)`` when ``key``
        must flush now, ``(None, deadline)`` to sleep until the earliest
        age-out, or ``(None, None)`` when everything is empty.
        """
        max_wait = self.policy.max_wait_ms / 1e3
        earliest = None
        for key, queue in self._queues.items():
            if not queue:
                continue
            if self._draining or len(queue) >= self.policy.max_batch:
                return key, None
            deadline = queue.oldest_enqueued_at() + max_wait
            if deadline <= now:
                return key, None
            if earliest is None or deadline < earliest:
                earliest = deadline
        return None, earliest

    def _run(self) -> None:
        while True:
            with self._lock:
                while True:
                    if self._closed:
                        return
                    if self._paused:
                        self._wake.wait()
                        continue
                    key, deadline = self._next_ready_key(time.monotonic())
                    if key is not None:
                        break
                    self._wake.wait(
                        None if deadline is None
                        else max(deadline - time.monotonic(), 0.0)
                    )
                queue = self._queues[key]
                popped = queue.pop_batch(
                    min(len(queue), self.policy.max_batch)
                )
                if not queue:
                    # Retired routing keys (e.g. superseded model
                    # versions) must not accumulate empty queues the
                    # scan above would walk forever.
                    del self._queues[key]
                self._pending -= len(popped)
                self._inflight += len(popped)
                if self.max_queue_depth is not None:
                    # Room just opened up for backpressured submitters.
                    self._space.notify_all()
            if popped:
                drained_lanes: Dict[int, int] = {}
                for request in popped:
                    drained_lanes[request.lane] = (
                        drained_lanes.get(request.lane, 0) + 1
                    )
                for lane, count in drained_lanes.items():
                    self.telemetry.record_lane_drained(lane, count)
            # Claim each future before executing: a request the client
            # already cancelled drops out here, and a claimed (RUNNING)
            # future can no longer be cancelled under us — so the
            # set_result/set_exception calls below cannot raise
            # InvalidStateError and kill the worker.
            batch = []
            for r in popped:
                if r.future.set_running_or_notify_cancel():
                    batch.append(r)
                elif r.trace is not None:
                    if r.queue_span is not None:
                        r.queue_span.end(outcome="cancelled")
                    if r.trace_owned:
                        r.trace.finish("cancelled")
            if len(batch) < len(popped):
                self.telemetry.record_cancelled(len(popped) - len(batch))
            try:
                if batch:
                    self._execute(key, batch)
            finally:
                with self._lock:
                    self._inflight -= len(popped)
                    if not self._inflight:
                        self._quiet.notify_all()
                    if not self._pending and not self._inflight:
                        self._idle.notify_all()

    def _execute(self, key: Hashable, batch: List[_Request]) -> None:
        started = time.monotonic()
        try:
            engine = self.resolve_engine(key)
        except BaseException as exc:  # noqa: BLE001 — failures go to futures
            self._trace_failure(batch, started, exc)
            for request in batch:
                request.future.set_exception(exc)
            self.telemetry.record_failed(len(batch))
            return
        # Requests are stacked per feature width so one malformed
        # request can only fail its own group, never the well-formed
        # requests that happened to share the coalescing window.
        groups: Dict[tuple, List[_Request]] = {}
        for request in batch:
            groups.setdefault(request.levels.shape, []).append(request)
        for group in groups.values():
            self._execute_group(key, engine, group, started)

    def _trace_failure(
        self, requests: List[_Request], started: float, exc: BaseException
    ) -> None:
        """Close spans on a batch whose engine resolve/read failed.

        Spans close *before* the futures resolve: a done callback (the
        router's failover resubmit) may immediately append new spans to
        the same trace, and those must come after these.
        """
        now = time.monotonic()
        for request in requests:
            if request.trace is None:
                continue
            if request.queue_span is not None:
                request.queue_span.end(started)
            request.trace.add_span(
                "execute", started, now, error=type(exc).__name__
            )
            if request.trace_owned:
                request.trace.finish("failed")

    def _execute_group(
        self, key: Hashable, engine, group: List[_Request], started: float
    ) -> None:
        # Stack the batch's levels into a pooled buffer: the steady
        # state re-serves the same few micro-batch shapes, and the
        # engine only derives activation masks from the levels (it
        # retains no reference), so the row-stacking that fed every
        # infer_batch call stops allocating per batch.
        levels = self._scratch.take(
            (len(group), group[0].levels.shape[0]), dtype=int
        )
        for i, request in enumerate(group):
            levels[i] = request.levels
        try:
            report = engine.infer_batch(levels)
        except BaseException as exc:  # noqa: BLE001 — failures go to futures
            self._trace_failure(group, started, exc)
            for request in group:
                request.future.set_exception(exc)
            self.telemetry.record_failed(len(group))
            return
        finally:
            self._scratch.give(levels)
        finished = time.monotonic()
        size = len(group)
        # Close every trace before resolving any future: a batch can be
        # dozens of requests, each set_result runs its done callbacks
        # synchronously, and a trace finished only after its siblings'
        # callbacks would blame that time on nothing (the span-accounting
        # gate bounds the unexplained gap).  Success is terminal for
        # owned and router-owned traces alike — the router's own
        # finish("served") in its callback is an idempotent no-op.
        for i, request in enumerate(group):
            if request.trace is None:
                continue
            if request.queue_span is not None:
                request.queue_span.end(started)
            attrs = {"batch": size}
            try:
                # Modeled device cost for this sample, when the
                # report carries it (all real engines do).
                attrs["delay_s"] = float(report.delay[i])
                attrs["energy_j"] = float(report.energy.total[i])
            except Exception:  # noqa: BLE001 — tracing never fails a batch
                pass
            try:
                # Read-margin stats for this sample, derived from the
                # currents the read already produced — sampled traces
                # only, so the untraced hot path never touches them.
                margin, signal = sample_margin(_span_currents(report)[i])
                if margin == margin:  # NaN never leaks into dumps
                    attrs["margin"] = margin
                    attrs["signal"] = signal
            except Exception:  # noqa: BLE001 — tracing never fails a batch
                pass
            request.trace.add_span("execute", started, finished, **attrs)
            request.trace.finish("served")
        for i, request in enumerate(group):
            request.future.set_result(
                ServedResult(
                    model=str(key),
                    batch_size=size,
                    queue_wait_s=started - request.enqueued_at,
                    _report=report,
                    _index=i,
                )
            )
        self.telemetry.record_batch(
            str(key),
            size,
            latencies_s=np.array([finished - r.enqueued_at for r in group]),
            max_batch=self.policy.max_batch,
        )
