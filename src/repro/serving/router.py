"""Cost- and health-aware request routing across deployment replicas.

:class:`Router` is the serving layer's arbitration engine: it owns the
applied :class:`~repro.serving.deployment.Deployment` specs, one
programmed engine *and one micro-batch scheduler per replica* — a slow
``memristor`` replica coalesces on its own worker and can never
head-of-line-block an ``ideal`` one — and decides, per request, which
replica answers:

* ``cost`` — cheapest healthy replica: the backend's own
  ``inference_cost_batch`` unit delay (probed once at apply time),
  scaled by live queue occupancy and divided by the replica weight;
* ``round_robin`` — healthy replicas in turn;
* ``sticky`` — per-tenant affinity: the request's ``client`` identity
  hashes to a stable replica while that replica stays healthy;
* ``mirror`` — fan out to N healthy replicas and majority-vote the
  predictions (:class:`MirroredResult`), the reliability mode.

Failures route around automatically on two timescales.  Per request,
a replica attempt that errors is transparently resubmitted to another
replica (the client future never sees the internal failure; telemetry
records a *failover*), and a replica that failed a request another
replica then served is marked down — its queue drains through the same
failover path while new traffic skips it.  Per sweep,
:meth:`Router.check_replica` runs the canary heal ladder one rung
deeper than the single-engine
:class:`~repro.serving.health.HealthMonitor`: **refresh** (reprogram in
place), **replace** (fresh hardware, same stream seed), and finally
**evict** — the replica is removed from the routing set for good and
the deployment keeps serving on the survivors.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
import zlib
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.reliability.mitigation import refresh_engine
from repro.serving.deployment import Deployment, DeploymentError, ReplicaSpec
from repro.serving.health import measure_agreement
from repro.serving.scheduler import MicroBatchScheduler, ServedResult

#: Replica lifecycle states.
HEALTHY = "healthy"
DOWN = "down"
EVICTED = "evicted"

#: Canary-set size probed per replica at apply time.
N_CANARIES = 8


class ReplicaKey(NamedTuple):
    """Scheduler routing key for one replica's queue."""

    name: str
    version: int
    replica: int

    def __str__(self) -> str:
        return f"{self.name}@v{self.version}#r{self.replica}"


@dataclass(frozen=True)
class ReplicaStatus:
    """Public point-in-time view of one replica (``Router.status``)."""

    replica: str
    backend: str
    state: str
    weight: float
    unit_delay_s: float
    pending: int

    def to_dict(self) -> dict:
        return {
            "replica": self.replica,
            "backend": self.backend,
            "state": self.state,
            "weight": self.weight,
            "unit_delay_s": self.unit_delay_s,
            "pending": self.pending,
        }


@dataclass(frozen=True)
class ReplicaHealthReport:
    """Outcome of one replica heal-ladder pass (``check_replica``)."""

    replica: str
    state: str
    agreement: float
    action: str  # "ok" | "refresh" | "replace" | "evict"
    healed: bool

    def to_dict(self) -> dict:
        return {
            "replica": self.replica,
            "state": self.state,
            "agreement": self.agreement,
            "action": self.action,
            "healed": self.healed,
        }


@dataclass(frozen=True)
class MirroredResult:
    """A mirrored request's majority vote across replicas.

    Quacks like :class:`~repro.serving.scheduler.ServedResult` where it
    matters (``prediction`` / ``delay`` / ``energy_total`` /
    ``queue_wait_s`` / ``batch_size``), with the vote detail on top:
    ``votes`` maps each participating replica label to its prediction
    (``None`` for a replica whose attempt failed — it abstains, is
    marked down, and counts *against* ``agreement``, which is the
    winner's share of all participants, not of the respondents).

    Delay is the slowest participant (mirrors run in parallel), energy
    the sum over participants — the price of the redundancy.
    """

    model: str
    prediction: int
    votes: Tuple[Tuple[str, Optional[int]], ...]
    agreement: float
    delay: float
    energy_total: float
    queue_wait_s: float
    batch_size: int

    @property
    def unanimous(self) -> bool:
        return self.agreement == 1.0


class KilledReplicaError(RuntimeError):
    """Raised when a batch resolves an engine on a killed replica."""


class _Replica:
    """One applied replica: spec, engine, scheduler, live state."""

    def __init__(self, index: int, spec: ReplicaSpec, key: ReplicaKey):
        self.index = index
        self.spec = spec
        self.key = key
        self.scheduler: Optional[MicroBatchScheduler] = None
        self.state = HEALTHY
        self.killed = False
        self.recoverable = True
        self.engine = None
        self.unit_delay = float("inf")
        self.baseline: Optional[np.ndarray] = None

    @property
    def label(self) -> str:
        return f"{self.key}[{self.spec.backend}]"

    def resolve(self):
        """The engine serving this replica; raises when killed."""
        if self.killed or self.engine is None:
            raise KilledReplicaError(f"replica {self.label} is dead")
        return self.engine


class _AppliedDeployment:
    """A validated deployment bound to programmed replicas."""

    def __init__(
        self,
        spec: Deployment,
        version: int,
        replicas: List[_Replica],
        canaries: np.ndarray,
    ):
        self.spec = spec
        self.name = spec.model
        self.version = version
        self.replicas = replicas
        self.canaries = canaries
        self.rr_counter = itertools.count()

    @property
    def route(self) -> str:
        return f"{self.name}@v{self.version}"


def replica_stream_seed(
    base_seed: Optional[int], name: str, version: int, replica: int
) -> Optional[int]:
    """Deterministic per-replica engine seed.

    Replica 0 uses the unmodified per-tenant stream
    (:func:`~repro.serving.server.model_stream_seed`) so a
    single-replica deployment materialises the bit-identical engine the
    legacy path serves; higher replicas extend the entropy tuple with
    their index for statistically independent streams.
    """
    from repro.serving.server import model_stream_seed

    if replica == 0:
        return model_stream_seed(base_seed, name, version)
    if base_seed is None:
        return None
    entropy = (
        int(base_seed),
        zlib.crc32(name.encode("utf-8")),
        int(version),
        int(replica),
    )
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])


class Router:
    """Deployment owner and per-request replica arbiter.

    Parameters
    ----------
    server:
        The :class:`~repro.serving.server.FeBiMServer` whose registry,
        batch policy, telemetry and seed the router shares.  Engines
        materialise through the registry (per-replica backend
        overrides), so a single-replica deployment on the registry's
        own backend shares the legacy path's cache entry — and its
        programmed engine object — bit for bit.

    Thread safety: deployment application/removal and replica state
    transitions take the router lock; the submit hot path reads the
    replica list without copying (replica lists are never mutated in
    place — eviction flips a state flag).
    """

    def __init__(self, server):
        self.server = server
        self._lock = threading.Lock()
        self._deployments: Dict[str, _AppliedDeployment] = {}

    # ------------------------------------------------------------ deployment
    def deployments(self) -> Dict[str, Deployment]:
        """Applied specs by model name."""
        with self._lock:
            return {name: dep.spec for name, dep in self._deployments.items()}

    def deployment_for(
        self, name: str, version: Optional[int] = None
    ) -> Optional[_AppliedDeployment]:
        """The applied deployment serving ``name`` at ``version``.

        ``None`` when the model is undeployed *or* the caller pinned a
        version other than the one the deployment resolved at apply
        time — pinned lookups of historical versions keep working
        through the legacy path.
        """
        with self._lock:
            dep = self._deployments.get(name)
        if dep is None:
            return None
        if version is not None and int(version) != dep.version:
            return None
        return dep

    def apply(self, deployment: Deployment) -> _AppliedDeployment:
        """Validate, program and install a deployment (replacing any
        previous deployment of the same model).

        Every replica is materialised, probed for its unit cost and
        canary baseline *before* the deployment goes live — a spec that
        cannot serve fails here, not mid-traffic.  The resolved model
        version is pinned: re-apply to roll a deployment forward after
        registering a new version.
        """
        deployment.validate()
        registry = self.server.registry
        version = registry.resolve_version(deployment.model, deployment.version)
        canaries = self._canary_levels(deployment, version)

        replicas: List[_Replica] = []
        for i, spec in enumerate(deployment.replicas):
            key = ReplicaKey(deployment.model, version, i)
            replica = _Replica(i, spec, key)
            # The scheduler resolves its replica directly (not through
            # the live deployment table): requests queued on a
            # deployment that is later replaced drain on the engines
            # they were routed to, never on the replacement's replicas.
            scheduler = MicroBatchScheduler(
                lambda _key, r=replica: r.resolve(),
                policy=self.server.policy,
                telemetry=self.server.telemetry,
            )
            replica.scheduler = scheduler
            try:
                replica.engine = self._materialise(deployment.model, version, replica)
                report = replica.engine.infer_batch(canaries)
            except Exception as exc:
                scheduler.shutdown(drain=False)
                for built in replicas:
                    built.scheduler.shutdown(drain=False)
                raise DeploymentError(
                    f"replica {i} ({spec.backend}) failed to materialise "
                    f"for {deployment.model!r} v{version}: {exc}"
                ) from exc
            replica.baseline = np.asarray(report.predictions).copy()
            replica.unit_delay = float(np.mean(report.delay))
            replicas.append(replica)

        applied = _AppliedDeployment(deployment, version, replicas, canaries)
        with self._lock:
            previous = self._deployments.get(deployment.model)
            self._deployments[deployment.model] = applied
        if previous is not None:
            self._shutdown_deployment(previous)
        return applied

    def remove(self, name: str, timeout: Optional[float] = None) -> bool:
        """Undeploy ``name`` (drain its replica queues); False if absent."""
        with self._lock:
            dep = self._deployments.pop(name, None)
        if dep is None:
            return False
        self._shutdown_deployment(dep, timeout=timeout)
        return True

    def _shutdown_deployment(
        self, dep: _AppliedDeployment, timeout: Optional[float] = None
    ) -> None:
        for replica in dep.replicas:
            replica.scheduler.shutdown(drain=True, timeout=timeout)

    def _canary_levels(self, deployment: Deployment, version: int) -> np.ndarray:
        """A small deterministic probe set over the model's level widths."""
        model, _ = self.server.registry.load(
            deployment.model, version, backend=deployment.replicas[0].backend
        )
        widths = [t.shape[1] for t in model.likelihood_levels]
        levels = np.empty((N_CANARIES, len(widths)), dtype=int)
        for f, width in enumerate(widths):
            levels[:, f] = (np.arange(N_CANARIES) * (f + 1)) % width
        return levels

    def _materialise(
        self, name: str, version: int, replica: _Replica, fresh: bool = False
    ):
        """Program (or fetch from cache) one replica's engine.

        ``fresh=True`` forces a new materialisation that takes over the
        cache slot (the replace rung) without touching the model's
        other cached engines.
        """
        registry = self.server.registry
        spec = replica.spec
        # A replica on the registry's own technology with no options of
        # its own inherits the registry's serving configuration — and
        # therefore the legacy path's cache key (single-replica
        # bit-identity, enforced by tests/serving/test_router.py).
        backend = None if spec.backend == registry.backend else spec.backend
        options = spec.backend_options or (None if backend is None else {})
        seed = replica_stream_seed(self.server.seed, name, version, replica.index)
        if seed is None and replica.index > 0:
            # A seedless server draws fresh entropy per engine, but the
            # registry caches seed=None configurations under one key —
            # which would collapse same-backend replicas into a single
            # shared engine (no real redundancy, and a data race on
            # stateful readers).  A Generator seed keeps the fresh
            # entropy while bypassing the cache; replica 0 stays on the
            # cached entry the legacy path shares.
            seed = np.random.default_rng()
        return registry.get_engine(
            name,
            version,
            max_rows=self.server.max_rows,
            seed=seed,
            backend=backend,
            backend_options=options,
            fresh=fresh,
        )

    @contextmanager
    def quiesce_model(
        self, name: str, timeout: Optional[float] = None
    ) -> Iterator[None]:
        """Pause every replica queue of ``name``'s deployment (no-op
        when undeployed) for the body.

        Engine repairs outside the router — the single-engine
        :class:`~repro.serving.health.HealthMonitor` ladder — must hold
        this alongside the legacy scheduler's quiesce: replica 0 of a
        deployment on the registry backend *shares* the legacy path's
        cached engine object, so a reprogram under only one scheduler's
        quiesce would race the other's live batches.
        """
        dep = self.deployment_for(name)
        with contextlib.ExitStack() as stack:
            if dep is not None:
                for replica in dep.replicas:
                    stack.enter_context(replica.scheduler.quiesce(timeout))
            yield

    # ------------------------------------------------------------- arbitration
    def _candidates(self, dep: _AppliedDeployment) -> List[_Replica]:
        healthy = [r for r in dep.replicas if r.state == HEALTHY]
        if healthy:
            return healthy
        down = [r for r in dep.replicas if r.state == DOWN]
        if down:
            # Nothing healthy: trying a down replica beats rejecting the
            # request outright (it may have recovered; if not, the
            # failover chain surfaces the error).
            return down
        raise RuntimeError(
            f"deployment {dep.name!r} v{dep.version} has no serviceable "
            f"replicas (all evicted)"
        )

    def _score(self, replica: _Replica) -> float:
        """Cost-policy score: lower is better.

        The replica's probed unit delay (its technology's own cost
        model), scaled by live queue depth — a busy replica's next
        request waits behind its backlog — and divided by the spec
        weight.
        """
        occupancy = 1 + replica.scheduler.pending
        return replica.unit_delay * occupancy / replica.spec.weight

    def _pick(
        self, dep: _AppliedDeployment, client: Optional[object]
    ) -> _Replica:
        candidates = self._candidates(dep)
        kind = dep.spec.policy.kind
        if kind == "round_robin":
            return candidates[next(dep.rr_counter) % len(candidates)]
        if kind == "sticky":
            anchor = 0 if client is None else zlib.crc32(str(client).encode())
            # Hash over the *full* replica list so affinity is stable
            # across unrelated replicas' state flips; walk forward past
            # non-candidates.
            start = anchor % len(dep.replicas)
            for offset in range(len(dep.replicas)):
                replica = dep.replicas[(start + offset) % len(dep.replicas)]
                if replica in candidates:
                    return replica
            raise AssertionError("sticky walk missed every candidate")
        # "cost" (and the mirror primary ordering)
        return min(candidates, key=self._score)

    # ---------------------------------------------------------------- submit
    def submit(
        self,
        dep: _AppliedDeployment,
        evidence_levels: np.ndarray,
        client: Optional[object] = None,
    ) -> "Future":
        """Route one sample through the deployment's policy.

        Returns a future resolving to a
        :class:`~repro.serving.scheduler.ServedResult` (or a
        :class:`MirroredResult` under the mirror policy).  Internal
        replica failures fail over transparently; the client future
        errors only when every serviceable replica failed the request.
        """
        if dep.spec.policy.kind == "mirror":
            return self._submit_mirror(dep, evidence_levels)
        replica = self._pick(dep, client)
        client_future: "Future" = Future()
        self._attempt(dep, replica, evidence_levels, client_future, {replica})
        return client_future

    def _next_fallback(
        self, dep: _AppliedDeployment, attempted: set
    ) -> Tuple[_AppliedDeployment, Optional[_Replica]]:
        """The next serviceable replica no attempt has visited.

        Resolved against the *live* deployment for the model: if the
        one the request was routed under has been replaced mid-flight,
        failover hops onto the replacement's (fresh, untried) replicas
        instead of dying with the old schedulers.
        """
        current = self.deployment_for(dep.name) or dep
        try:
            candidates = self._candidates(current)
        except RuntimeError:
            return current, None
        return current, next((r for r in candidates if r not in attempted), None)

    def _failover(
        self,
        dep: _AppliedDeployment,
        levels: np.ndarray,
        client_future: "Future",
        attempted: set,
        failed_chain: Tuple[_Replica, ...],
        exc: BaseException,
    ) -> None:
        """Resubmit after a failed attempt, or surface the error.

        When no untried replica is left the request failed everywhere —
        a request problem, not a replica problem, so nobody is marked
        down and the last error reaches the client.
        """
        current, fallback = self._next_fallback(dep, attempted)
        if fallback is None:
            if client_future.set_running_or_notify_cancel():
                client_future.set_exception(exc)
            return
        attempted.add(fallback)
        self._attempt(current, fallback, levels, client_future, attempted, failed_chain)

    def _attempt(
        self,
        dep: _AppliedDeployment,
        replica: _Replica,
        levels: np.ndarray,
        client_future: "Future",
        attempted: set,
        failed_chain: Tuple[_Replica, ...] = (),
    ) -> None:
        try:
            inner = replica.scheduler.submit(replica.key, levels)
        except BaseException as exc:  # noqa: BLE001 — e.g. SchedulerClosed
            # A redeploy/undeploy racing the submit closed this
            # replica's queue; the failover contract still holds.
            self._failover(
                dep, levels, client_future, attempted, failed_chain, exc
            )
            return

        def done(f: "Future") -> None:
            if f.cancelled():
                client_future.cancel()
                return
            exc = f.exception()
            if exc is None:
                if not client_future.set_running_or_notify_cancel():
                    return  # client cancelled while we served it
                self.server.telemetry.record_replica_served(replica.label)
                # Failovers count only here, where the resubmission
                # actually saved the client (one per earlier attempt):
                # a request that fails on *every* replica is an error,
                # not N-1 transparent rescues.
                self.server.telemetry.record_failover(len(attempted) - 1)
                # A replica that failed a request this replica then
                # served is confirmed bad (the request was fine): mark
                # it down so new traffic routes around while its queue
                # drains through the same failover path.
                for bad in failed_chain:
                    self._mark_down(bad)
                client_future.set_result(f.result())
                return
            try:
                self._failover(
                    dep,
                    levels,
                    client_future,
                    attempted,
                    failed_chain + (replica,),
                    exc,
                )
            except BaseException as resubmit_exc:  # noqa: BLE001
                # The client future must always resolve, never hang.
                if client_future.set_running_or_notify_cancel():
                    client_future.set_exception(resubmit_exc)

        inner.add_done_callback(done)

    def _mark_down(self, replica: _Replica) -> None:
        with self._lock:
            if replica.state == HEALTHY:
                replica.state = DOWN

    def _shares_legacy_engine(self, replica: _Replica) -> bool:
        """Whether this replica's engine is the legacy path's cache
        entry (replica 0 on the registry's backend with inherited
        options — the configurations collapse to one cache key)."""
        return (
            replica.index == 0
            and replica.spec.backend == self.server.registry.backend
            and not replica.spec.backend_options
        )

    # ---------------------------------------------------------------- mirror
    def _submit_mirror(
        self, dep: _AppliedDeployment, levels: np.ndarray
    ) -> "Future[MirroredResult]":
        policy = dep.spec.policy
        candidates = sorted(self._candidates(dep), key=self._score)
        if policy.mirror_fanout > 0:
            candidates = candidates[: policy.mirror_fanout]
        client_future: "Future[MirroredResult]" = Future()
        votes: Dict[int, Optional[ServedResult]] = {}
        remaining = [len(candidates)]
        vote_lock = threading.Lock()

        def record_vote(index: int, result: Optional[ServedResult]) -> None:
            with vote_lock:
                votes[index] = result
                remaining[0] -= 1
                if remaining[0]:
                    return
            self._resolve_vote(dep, candidates, votes, client_future)

        def voted(index: int, f: "Future") -> None:
            result = None
            if not f.cancelled() and f.exception() is None:
                result = f.result()
            record_vote(index, result)

        for replica in candidates:
            try:
                inner = replica.scheduler.submit(replica.key, levels)
            except BaseException:  # noqa: BLE001 — abstain, don't hang the vote
                record_vote(replica.index, None)
                continue
            inner.add_done_callback(
                lambda f, i=replica.index: voted(i, f)
            )
        return client_future

    def _resolve_vote(
        self,
        dep: _AppliedDeployment,
        candidates: List[_Replica],
        votes: Dict[int, Optional[ServedResult]],
        client_future: "Future[MirroredResult]",
    ) -> None:
        if not client_future.set_running_or_notify_cancel():
            return
        succeeded = [
            (replica, votes[replica.index])
            for replica in candidates
            if votes.get(replica.index) is not None
        ]
        if not succeeded:
            client_future.set_exception(
                RuntimeError(
                    f"mirror vote failed: no replica of {dep.name!r} "
                    f"answered"
                )
            )
            return
        # A participant that failed a request its peers served is
        # confirmed bad, exactly as on the failover path: mark it down
        # so the next mirrored request stops wasting fan-out on it.
        for replica in candidates:
            if votes.get(replica.index) is None:
                self._mark_down(replica)
        counts: Dict[int, int] = {}
        for _, result in succeeded:
            prediction = int(result.prediction)
            counts[prediction] = counts.get(prediction, 0) + 1
        # Majority; deterministic tie-break on the lower class label.
        winner = min(counts, key=lambda p: (-counts[p], p))
        # Agreement is over the *participants*, not the respondents: a
        # dead replica is a lost vote, and a 2-way mirror with one
        # corpse must read 0.5, never a unanimous vote of one.
        agreement = counts[winner] / len(candidates)
        for replica, _ in succeeded:
            self.server.telemetry.record_replica_served(replica.label)
        self.server.telemetry.record_mirror_vote(unanimous=agreement == 1.0)
        client_future.set_result(
            MirroredResult(
                model=dep.route,
                prediction=winner,
                votes=tuple(
                    (
                        replica.label,
                        None
                        if votes.get(replica.index) is None
                        else int(votes[replica.index].prediction),
                    )
                    for replica in candidates
                ),
                agreement=agreement,
                delay=max(r.delay for _, r in succeeded),
                energy_total=sum(r.energy_total for _, r in succeeded),
                queue_wait_s=max(r.queue_wait_s for _, r in succeeded),
                batch_size=max(r.batch_size for _, r in succeeded),
            )
        )

    # ----------------------------------------------------------------- health
    def status(self, name: str) -> List[ReplicaStatus]:
        """Live per-replica view of one deployment."""
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        return [
            ReplicaStatus(
                replica=replica.label,
                backend=replica.spec.backend,
                state=replica.state,
                weight=replica.spec.weight,
                unit_delay_s=replica.unit_delay,
                pending=replica.scheduler.pending,
            )
            for replica in dep.replicas
        ]

    def kill_replica(self, name: str, index: int, recoverable: bool = False) -> None:
        """Chaos hook: hard-fail a replica without any health signal.

        The replica's engine resolution is poisoned — queued and future
        batches on it raise — but its routing state is left untouched,
        exactly like a crashed array that has not been probed yet: the
        per-request failover path discovers the loss, reroutes every
        affected request and marks the replica down.  ``check_replica``
        then escalates through the ladder: a ``recoverable`` kill (a
        transient crash) is healed by the *replace* rung on fresh
        hardware; the default unrecoverable kill (the array slot is
        gone) ends in eviction.
        """
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        replica = dep.replicas[index]
        replica.killed = True
        replica.recoverable = bool(recoverable)
        replica.engine = None

    def check_replica(self, name: str, index: int) -> ReplicaHealthReport:
        """One canary sweep over a replica, healing up the full ladder.

        Rungs: **refresh** (reprogram in place — clears drift, cannot
        fix stuck hardware), **replace** (drop the cached engine and
        re-materialise on fresh hardware, same stream seed), **evict**
        (remove the replica from routing permanently; the deployment
        keeps serving on the survivors).  Repairs run under the
        replica's own scheduler quiesce so live traffic never reads a
        half-reprogrammed array.
        """
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        replica = dep.replicas[index]
        if replica.state == EVICTED:
            return ReplicaHealthReport(
                replica.label, EVICTED, 0.0, action="evict", healed=False
            )
        min_agreement = dep.spec.policy.min_agreement
        telemetry = self.server.telemetry

        def measure() -> float:
            failed, agreement = measure_agreement(
                replica.resolve(), dep.canaries, replica.baseline
            )
            telemetry.record_health_check(failed)
            return agreement

        # The whole check runs quiesced, the initial probe included: a
        # canary read must never interleave with live batches on
        # stateful readers (an ``advance_streams`` replica's LFSR
        # draws), and a failing probe escalates straight into repairs.
        # When the replica shares its engine object with the legacy
        # path (same registry cache entry), the legacy scheduler pauses
        # too — mirroring the dual quiesce HealthMonitor holds — but
        # unrelated tenants are not stalled for replicas that cannot
        # share.
        with contextlib.ExitStack() as quiesced:
            if self._shares_legacy_engine(replica):
                quiesced.enter_context(
                    self.server.scheduler.quiesce(timeout=30.0)
                )
            quiesced.enter_context(replica.scheduler.quiesce(timeout=30.0))
            try:
                agreement = measure()
            except Exception:
                agreement = 0.0
            if agreement >= min_agreement:
                with self._lock:
                    if replica.state == DOWN:
                        replica.state = HEALTHY
                return ReplicaHealthReport(
                    replica.label, replica.state, agreement,
                    action="ok", healed=True,
                )
            # Rung 1: refresh — reprogram in place.
            try:
                refresh_engine(replica.resolve())
                telemetry.record_refresh()
                agreement = measure()
            except Exception:
                agreement = 0.0
            if agreement >= min_agreement:
                action = "refresh"
            else:
                # Rung 2: replace — fresh hardware, same stream seed.
                # An unrecoverably killed replica has no slot to put
                # fresh hardware into; fall through to eviction.
                action = "replace"
                try:
                    if replica.killed and not replica.recoverable:
                        raise KilledReplicaError(
                            f"replica {replica.label} is unrecoverable"
                        )
                    replica.killed = False
                    replica.engine = self._materialise(
                        dep.name, dep.version, replica, fresh=True
                    )
                    telemetry.record_replacement()
                    agreement = measure()
                except Exception:
                    agreement = 0.0
            if agreement < min_agreement:
                # Rung 3: evict — out of the routing set for good.
                with self._lock:
                    replica.state = EVICTED
                replica.killed = True
                replica.engine = None
                telemetry.record_replica_eviction()
                return ReplicaHealthReport(
                    replica.label, EVICTED, agreement,
                    action="evict", healed=False,
                )
        with self._lock:
            replica.state = HEALTHY
        return ReplicaHealthReport(
            replica.label, HEALTHY, agreement, action=action, healed=True
        )

    def check_all(self) -> List[ReplicaHealthReport]:
        """Heal-ladder sweep over every replica of every deployment."""
        reports = []
        with self._lock:
            deployed = list(self._deployments.values())
        for dep in deployed:
            for replica in dep.replicas:
                reports.append(self.check_replica(dep.name, replica.index))
        return reports

    # -------------------------------------------------------------- lifecycle
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain every replica queue; False when any timed out.

        ``timeout`` bounds the whole sweep (one shared deadline), not
        each queue.  The sweep runs twice: a failover can resubmit onto
        a queue the first pass already found empty, and the second pass
        (a fast no-op when nothing moved) catches exactly those
        stragglers.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            deployed = list(self._deployments.values())
        schedulers = [r.scheduler for d in deployed for r in d.replicas]
        ok = True
        for _ in range(2):
            for scheduler in schedulers:
                remaining = (
                    None
                    if deadline is None
                    else max(deadline - time.monotonic(), 0.0)
                )
                ok = scheduler.drain(remaining) and ok
        return ok

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut every replica scheduler down; idempotent.

        A graceful close drains every queue *before* any scheduler
        shuts, so a failover from a late-draining replica cannot land
        on an already-closed sibling.
        """
        if drain:
            self.drain(timeout)
        with self._lock:
            deployed = list(self._deployments.values())
        for dep in deployed:
            for replica in dep.replicas:
                replica.scheduler.shutdown(drain=drain, timeout=timeout)

    def __repr__(self) -> str:
        with self._lock:
            total = sum(len(d.replicas) for d in self._deployments.values())
            return (
                f"Router({len(self._deployments)} deployments, "
                f"{total} replicas)"
            )
