"""Cost- and health-aware request routing across deployment replicas.

:class:`Router` is the serving layer's arbitration engine: it owns the
applied :class:`~repro.serving.deployment.Deployment` specs, one
programmed engine *and one micro-batch scheduler per replica* — a slow
``memristor`` replica coalesces on its own worker and can never
head-of-line-block an ``ideal`` one — and decides, per request, which
replica answers:

* ``cost`` — cheapest healthy replica: the backend's own
  ``inference_cost_batch`` unit delay (probed once at apply time),
  scaled by live queue occupancy and divided by the replica weight;
* ``round_robin`` — healthy replicas in turn;
* ``sticky`` — per-tenant affinity: the request's ``client`` identity
  maps to a stable replica by rendezvous (highest-random-weight)
  hashing, so losing one replica remaps only *its* clients (~1/N of
  traffic), never reshuffles the survivors' tenants;
* ``mirror`` — fan out to N healthy replicas and majority-vote the
  predictions (:class:`MirroredResult`), the reliability mode.

Failures route around automatically on two timescales.  Per request,
a replica attempt that errors is transparently resubmitted to another
replica (the client future never sees the internal failure; telemetry
records a *failover*), and a replica that failed a request another
replica then served is marked down — its queue drains through the same
failover path while new traffic skips it.  Per sweep,
:meth:`Router.check_replica` runs the canary heal ladder one rung
deeper than the single-engine
:class:`~repro.serving.health.HealthMonitor`: **refresh** (reprogram in
place), **replace** (fresh hardware, same stream seed), and finally
**evict** — the replica is removed from the routing set for good and
the deployment keeps serving on the survivors.

Deployments carrying an :class:`~repro.serving.deployment.SLOPolicy`
get two more behaviours.  Admission control: each replica's scheduler
queue is bounded, a busy replica's :class:`Overloaded` rejection fails
over to its siblings *without* marking anyone down (busy is not
broken), and the client sees ``Overloaded`` only when every
serviceable replica is full.  Elasticity: :meth:`add_replica` /
:meth:`retire_replica` let the autoscale controller grow and shrink
the replica set at runtime through the same validate → materialise →
probe pipeline ``apply`` uses, with per-replica wear ledgers
(:class:`~repro.reliability.faults.WearState` in crossbar-less ledger
mode) so placement can prefer the least-worn hardware.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
import zlib
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.backends.base import Capability
from repro.reliability.faults import AgeClock, WearState
from repro.reliability.mitigation import refresh_engine, spare_row_repair
from repro.reliability.observability import (
    DeviceHealthSample,
    MarginProbe,
    MarginReading,
    sample_margin,
)
from repro.serving.deployment import (
    Deployment,
    DeploymentError,
    ReplicaSpec,
    validate_replica_spec,
)
from repro.serving.health import (
    _report_currents,
    agreement_from_predictions,
)
from repro.serving import policy as routing_policy
from repro.serving.policy import (
    DOWN,
    DRAINING,
    EVICTED,
    HEALTHY,
    RETIRED,
)
from repro.serving.scheduler import (
    MicroBatchScheduler,
    Overloaded,
    ServedResult,
)

#: Canary-set size probed per replica at apply time.
N_CANARIES = 8


class ReplicaKey(NamedTuple):
    """Scheduler routing key for one replica's queue."""

    name: str
    version: int
    replica: int

    def __str__(self) -> str:
        return f"{self.name}@v{self.version}#r{self.replica}"


@dataclass(frozen=True)
class ReplicaStatus:
    """Public point-in-time view of one replica (``Router.status``)."""

    replica: str
    backend: str
    state: str
    weight: float
    unit_delay_s: float
    pending: int
    index: int = -1
    wear_fraction: float = 0.0

    def to_dict(self) -> dict:
        return {
            "replica": self.replica,
            "backend": self.backend,
            "state": self.state,
            "weight": self.weight,
            "unit_delay_s": self.unit_delay_s,
            "pending": self.pending,
            "index": self.index,
            "wear_fraction": self.wear_fraction,
        }


@dataclass(frozen=True)
class ReplicaHealthReport:
    """Outcome of one replica heal-ladder pass (``check_replica``).

    ``signal_ratio`` / ``margin`` are the replica's read-margin stats
    from the *last* canary read of the pass (post-repair when the
    ladder ran) — NaN when the replica could not be read at all.
    """

    replica: str
    state: str
    agreement: float
    action: str  # "ok" | "refresh" | "spare_repair" | "replace" | "evict"
    healed: bool
    signal_ratio: float = float("nan")
    margin: float = float("nan")

    def to_dict(self) -> dict:
        return {
            "replica": self.replica,
            "state": self.state,
            "agreement": self.agreement,
            "action": self.action,
            "healed": self.healed,
            "signal_ratio": (
                None if self.signal_ratio != self.signal_ratio
                else self.signal_ratio
            ),
            "margin": None if self.margin != self.margin else self.margin,
        }


@dataclass(frozen=True)
class MirroredResult:
    """A mirrored request's majority vote across replicas.

    Quacks like :class:`~repro.serving.scheduler.ServedResult` where it
    matters (``prediction`` / ``delay`` / ``energy_total`` /
    ``queue_wait_s`` / ``batch_size``), with the vote detail on top:
    ``votes`` maps each participating replica label to its prediction
    (``None`` for a replica whose attempt failed — it abstains, is
    marked down, and counts *against* ``agreement``, which is the
    winner's share of all participants, not of the respondents).

    Delay is the slowest participant (mirrors run in parallel), energy
    the sum over participants — the price of the redundancy.
    """

    model: str
    prediction: int
    votes: Tuple[Tuple[str, Optional[int]], ...]
    agreement: float
    delay: float
    energy_total: float
    queue_wait_s: float
    batch_size: int

    @property
    def unanimous(self) -> bool:
        return self.agreement == 1.0


class KilledReplicaError(RuntimeError):
    """Raised when a batch resolves an engine on a killed replica."""


class _Replica:
    """One applied replica: spec, engine, scheduler, live state."""

    def __init__(
        self,
        index: int,
        spec: ReplicaSpec,
        key: ReplicaKey,
        wear: Optional[WearState] = None,
    ):
        self.index = index
        self.spec = spec
        self.key = key
        self.scheduler: Optional[MicroBatchScheduler] = None
        self.state = HEALTHY
        self.killed = False
        self.recoverable = True
        # Gradual-drain progress (state == DRAINING only): sticky
        # client cohorts below ``drain_step`` have been remapped; the
        # replica finalises when the step reaches ``drain_steps``.
        self.drain_step = 0
        self.drain_steps = 0
        self.engine = None
        self.unit_delay = float("inf")
        self.baseline: Optional[np.ndarray] = None
        # Pure bookkeeping ledgers (crossbar=None): programming cycles
        # and in-service age are counted without ever rewriting the
        # live template — serving stays bit-identical.
        self.wear = wear if wear is not None else WearState()
        self.age = AgeClock()
        # Margin probe against the apply-time pristine read; the latest
        # reading is refreshed by every canary sweep and hardware
        # sample — no extra array reads, ever.
        self.probe: Optional[MarginProbe] = None
        self.margin_reading: Optional[MarginReading] = None
        self._hw_t: Optional[float] = None  # last hardware-sample clock

    @property
    def label(self) -> str:
        return f"{self.key}[{self.spec.backend}]"

    # Duck-typed view attributes the pure policy core arbitrates on
    # (shared with the cluster front end's replica handles).
    @property
    def weight(self) -> float:
        return self.spec.weight

    @property
    def pending(self) -> int:
        return self.scheduler.pending

    def resolve(self):
        """The engine serving this replica; raises when killed."""
        if self.killed or self.engine is None:
            raise KilledReplicaError(f"replica {self.label} is dead")
        return self.engine


class _AppliedDeployment:
    """A validated deployment bound to programmed replicas."""

    def __init__(
        self,
        spec: Deployment,
        version: int,
        replicas: List[_Replica],
        canaries: np.ndarray,
    ):
        self.spec = spec
        self.name = spec.model
        self.version = version
        # Never mutated in place: add/retire swap in a fresh list so
        # lock-free readers of the reference stay consistent.
        self.replicas = replicas
        self.canaries = canaries
        self.rr_counter = itertools.count()
        # Monotonic index source for replicas added at runtime —
        # retiring r1 must never let a later scale-up mint a second
        # "r1" with a different engine.
        self.next_index = len(replicas)

    @property
    def route(self) -> str:
        return f"{self.name}@v{self.version}"


def replica_stream_seed(
    base_seed: Optional[int], name: str, version: int, replica: int
) -> Optional[int]:
    """Deterministic per-replica engine seed.

    Replica 0 uses the unmodified per-tenant stream
    (:func:`~repro.serving.server.model_stream_seed`) so a
    single-replica deployment materialises the bit-identical engine the
    legacy path serves; higher replicas extend the entropy tuple with
    their index for statistically independent streams.
    """
    from repro.serving.server import model_stream_seed

    if replica == 0:
        return model_stream_seed(base_seed, name, version)
    if base_seed is None:
        return None
    entropy = (
        int(base_seed),
        zlib.crc32(name.encode("utf-8")),
        int(version),
        int(replica),
    )
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])


def result_margin(result: ServedResult) -> float:
    """One served sample's winner/runner-up read margin.

    Recovered from the currents the serving read already sensed (the
    same per-row signature ``read_margin_batch`` probes), so weighting
    a mirror vote costs one partition over a handful of wordlines —
    never an extra array read.  NaN when the report carries no usable
    currents (degenerate geometry, wrapped engines).
    """
    try:
        row = _report_currents(result._report)[result._index]
        margin, _ = sample_margin(row)
        return margin
    except Exception:  # noqa: BLE001 — weighting must never fail a vote
        return float("nan")


class Router:
    """Deployment owner and per-request replica arbiter.

    Parameters
    ----------
    server:
        The :class:`~repro.serving.server.FeBiMServer` whose registry,
        batch policy, telemetry and seed the router shares.  Engines
        materialise through the registry (per-replica backend
        overrides), so a single-replica deployment on the registry's
        own backend shares the legacy path's cache entry — and its
        programmed engine object — bit for bit.

    Thread safety: deployment application/removal and replica state
    transitions take the router lock; the submit hot path reads the
    replica list without copying (replica lists are never mutated in
    place — eviction flips a state flag).
    """

    def __init__(self, server):
        self.server = server
        self._lock = threading.Lock()
        self._deployments: Dict[str, _AppliedDeployment] = {}
        # Test/benchmark hook: wraps every materialised replica engine
        # (e.g. a pacing proxy that models slower hardware).  Leave
        # ``None`` in production.
        self.engine_wrapper = None
        # Optional request tracer (set by ``server.enable_observability``).
        # The router owns any trace it samples: one trace follows a
        # request across every failover hop, and only the router knows
        # when routing has finally resolved.  Mirror fan-out is not
        # traced — parallel replica reads would overlap in time and
        # break the span-sum-equals-duration invariant.
        self.tracer = None
        # Optional device-health ledger (set by
        # ``server.enable_observability``): every ``hardware_status``
        # sample is recorded into it.  ``None`` costs nothing.
        self.ledger = None
        # Margin floor for the heal ladder: a replica whose canary
        # signal ratio (vs its apply-time pristine baseline) falls
        # below this enters the ladder *before* any prediction flips.
        # 0.0 = observe-only (margins are still measured and exported,
        # but never trigger repairs).
        self.min_signal_ratio = 0.0

    # ------------------------------------------------------------ deployment
    def deployments(self) -> Dict[str, Deployment]:
        """Applied specs by model name."""
        with self._lock:
            return {name: dep.spec for name, dep in self._deployments.items()}

    def deployment_for(
        self, name: str, version: Optional[int] = None
    ) -> Optional[_AppliedDeployment]:
        """The applied deployment serving ``name`` at ``version``.

        ``None`` when the model is undeployed *or* the caller pinned a
        version other than the one the deployment resolved at apply
        time — pinned lookups of historical versions keep working
        through the legacy path.
        """
        with self._lock:
            dep = self._deployments.get(name)
        if dep is None:
            return None
        if version is not None and int(version) != dep.version:
            return None
        return dep

    def apply(
        self,
        deployment: Deployment,
        indices: Optional[List[int]] = None,
    ) -> _AppliedDeployment:
        """Validate, program and install a deployment (replacing any
        previous deployment of the same model).

        Every replica is materialised, probed for its unit cost and
        canary baseline *before* the deployment goes live — a spec that
        cannot serve fails here, not mid-traffic.  The resolved model
        version is pinned: re-apply to roll a deployment forward after
        registering a new version.

        ``indices`` assigns explicit global replica indices (one per
        spec replica, in order) instead of ``0..n-1``.  This is the
        cluster worker's hosting hook: a worker applying the slice of a
        deployment it owns must mint the *cluster-wide* indices, because
        the per-replica stream seed — and therefore the engine's bits —
        derives from them.
        """
        deployment.validate()
        if indices is not None:
            indices = [int(i) for i in indices]
            if len(indices) != len(deployment.replicas):
                raise DeploymentError(
                    f"apply got {len(indices)} indices for "
                    f"{len(deployment.replicas)} replicas"
                )
            if len(set(indices)) != len(indices) or min(indices) < 0:
                raise DeploymentError(
                    f"replica indices must be unique and >= 0, got {indices}"
                )
        registry = self.server.registry
        version = registry.resolve_version(deployment.model, deployment.version)
        canaries = self._canary_levels(deployment, version)

        replicas: List[_Replica] = []
        for i, spec in enumerate(deployment.replicas):
            index = i if indices is None else indices[i]
            key = ReplicaKey(deployment.model, version, index)
            replica = _Replica(index, spec, key)
            replica.scheduler = self._make_scheduler(replica, deployment)
            try:
                self._probe(deployment.model, version, replica, canaries)
            except Exception as exc:
                replica.scheduler.shutdown(drain=False)
                for built in replicas:
                    built.scheduler.shutdown(drain=False)
                raise DeploymentError(
                    f"replica {i} ({spec.backend}) failed to materialise "
                    f"for {deployment.model!r} v{version}: {exc}"
                ) from exc
            replicas.append(replica)

        applied = _AppliedDeployment(deployment, version, replicas, canaries)
        if indices is not None:
            applied.next_index = max(indices) + 1
        with self._lock:
            previous = self._deployments.get(deployment.model)
            self._deployments[deployment.model] = applied
        if previous is not None:
            self._shutdown_deployment(previous)
        return applied

    def remove(self, name: str, timeout: Optional[float] = None) -> bool:
        """Undeploy ``name`` (drain its replica queues); False if absent."""
        with self._lock:
            dep = self._deployments.pop(name, None)
        if dep is None:
            return False
        self._shutdown_deployment(dep, timeout=timeout)
        return True

    def _shutdown_deployment(
        self, dep: _AppliedDeployment, timeout: Optional[float] = None
    ) -> None:
        for replica in dep.replicas:
            replica.scheduler.shutdown(drain=True, timeout=timeout)

    def _canary_levels(self, deployment: Deployment, version: int) -> np.ndarray:
        """A small deterministic probe set over the model's level widths."""
        model, _ = self.server.registry.load(
            deployment.model, version, backend=deployment.replicas[0].backend
        )
        widths = [t.shape[1] for t in model.likelihood_levels]
        levels = np.empty((N_CANARIES, len(widths)), dtype=int)
        for f, width in enumerate(widths):
            levels[:, f] = (np.arange(N_CANARIES) * (f + 1)) % width
        return levels

    def _materialise(
        self, name: str, version: int, replica: _Replica, fresh: bool = False
    ):
        """Program (or fetch from cache) one replica's engine.

        ``fresh=True`` forces a new materialisation that takes over the
        cache slot (the replace rung) without touching the model's
        other cached engines.
        """
        registry = self.server.registry
        spec = replica.spec
        # A replica on the registry's own technology with no options of
        # its own inherits the registry's serving configuration — and
        # therefore the legacy path's cache key (single-replica
        # bit-identity, enforced by tests/serving/test_router.py).
        backend = None if spec.backend == registry.backend else spec.backend
        options = spec.backend_options or (None if backend is None else {})
        seed = replica_stream_seed(self.server.seed, name, version, replica.index)
        if seed is None and replica.index > 0:
            # A seedless server draws fresh entropy per engine, but the
            # registry caches seed=None configurations under one key —
            # which would collapse same-backend replicas into a single
            # shared engine (no real redundancy, and a data race on
            # stateful readers).  A Generator seed keeps the fresh
            # entropy while bypassing the cache; replica 0 stays on the
            # cached entry the legacy path shares.
            seed = np.random.default_rng()
        engine = registry.get_engine(
            name,
            version,
            max_rows=self.server.max_rows,
            seed=seed,
            backend=backend,
            backend_options=options,
            fresh=fresh,
        )
        if self.engine_wrapper is not None:
            engine = self.engine_wrapper(engine, replica)
        return engine

    def _make_scheduler(
        self, replica: _Replica, deployment: Deployment
    ) -> MicroBatchScheduler:
        """One scheduler per replica, bounded when the spec carries an SLO.

        The scheduler resolves its replica directly (not through the
        live deployment table): requests queued on a deployment that is
        later replaced drain on the engines they were routed to, never
        on the replacement's replicas.
        """
        slo = deployment.slo
        return MicroBatchScheduler(
            lambda _key, r=replica: r.resolve(),
            policy=self.server.policy,
            telemetry=self.server.telemetry,
            max_queue_depth=None if slo is None else slo.max_queue_depth,
        )

    def _probe(
        self,
        name: str,
        version: int,
        replica: _Replica,
        canaries: np.ndarray,
    ) -> None:
        """Materialise + canary-probe one replica (unit cost, baseline).

        Shared by :meth:`apply` and :meth:`add_replica`; raises the
        materialisation/probe error for the caller to wrap.
        """
        replica.engine = self._materialise(name, version, replica)
        replica.wear.add_cycles(1)  # one programming pass
        report = replica.engine.infer_batch(canaries)
        replica.baseline = np.asarray(report.predictions).copy()
        replica.unit_delay = float(np.mean(report.delay))
        # The same probe read seeds the margin baseline: deploy-time
        # pristine currents against which every later sweep's signal
        # ratio is scored.
        currents = _report_currents(report)
        replica.probe = MarginProbe(currents)
        replica.margin_reading = replica.probe.observe(currents)

    @contextmanager
    def quiesce_model(
        self, name: str, timeout: Optional[float] = None
    ) -> Iterator[None]:
        """Pause every replica queue of ``name``'s deployment (no-op
        when undeployed) for the body.

        Engine repairs outside the router — the single-engine
        :class:`~repro.serving.health.HealthMonitor` ladder — must hold
        this alongside the legacy scheduler's quiesce: replica 0 of a
        deployment on the registry backend *shares* the legacy path's
        cached engine object, so a reprogram under only one scheduler's
        quiesce would race the other's live batches.
        """
        dep = self.deployment_for(name)
        with contextlib.ExitStack() as stack:
            if dep is not None:
                for replica in dep.replicas:
                    stack.enter_context(replica.scheduler.quiesce(timeout))
            yield

    # ------------------------------------------------------------- arbitration
    def _candidates(self, dep: _AppliedDeployment) -> List[_Replica]:
        candidates = routing_policy.serviceable(dep.replicas)
        if not candidates:
            raise RuntimeError(
                f"deployment {dep.name!r} v{dep.version} has no serviceable "
                f"replicas (all evicted)"
            )
        return candidates

    def _score(self, replica: _Replica) -> float:
        """Cost-policy score: lower is better (see
        :func:`repro.serving.policy.cost_score`)."""
        return routing_policy.cost_score(replica)

    def _pick(
        self, dep: _AppliedDeployment, client: Optional[object]
    ) -> _Replica:
        """Policy arbitration, delegated to the pure core
        (:mod:`repro.serving.policy`) over the live replica objects —
        the identical decision function the cluster front end runs over
        worker-reported replica views."""
        candidates = self._candidates(dep)
        kind = dep.spec.policy.kind
        if kind == "sticky":
            draining = [r for r in dep.replicas if r.state == DRAINING]
            return routing_policy.pick_sticky(candidates, client, draining)
        return routing_policy.pick_replica(
            kind, candidates,
            rr_tick=next(dep.rr_counter) if kind == "round_robin" else 0,
        )

    # ---------------------------------------------------------------- submit
    def submit(
        self,
        dep: _AppliedDeployment,
        evidence_levels: np.ndarray,
        client: Optional[object] = None,
    ) -> "Future":
        """Route one sample through the deployment's policy.

        Returns a future resolving to a
        :class:`~repro.serving.scheduler.ServedResult` (or a
        :class:`MirroredResult` under the mirror policy).  Internal
        replica failures fail over transparently; the client future
        errors only when every serviceable replica failed the request.
        """
        if dep.spec.policy.kind == "mirror":
            return self._submit_mirror(dep, evidence_levels)
        replica = self._pick(dep, client)
        client_future: "Future" = Future()
        slo = dep.spec.slo
        priority = 0 if slo is None else slo.priority_for(
            None if client is None else str(client)
        )
        # Backpressure may only block the *first* attempt, which runs on
        # the client's own thread.  Failover attempts run on scheduler
        # worker threads — two workers blocking into each other's full
        # queues would deadlock the data plane.
        block = bool(slo.backpressure) if slo is not None else False
        trace = None
        if self.tracer is not None:
            trace = self.tracer.sample(
                dep.route, client=None if client is None else str(client)
            )
        self._attempt(
            dep, replica, evidence_levels, client_future, {replica},
            priority=priority, block=block, trace=trace,
        )
        return client_future

    def _next_fallback(
        self, dep: _AppliedDeployment, attempted: set
    ) -> Tuple[_AppliedDeployment, Optional[_Replica]]:
        """The next serviceable replica no attempt has visited.

        Resolved against the *live* deployment for the model: if the
        one the request was routed under has been replaced mid-flight,
        failover hops onto the replacement's (fresh, untried) replicas
        instead of dying with the old schedulers.
        """
        current = self.deployment_for(dep.name) or dep
        try:
            candidates = self._candidates(current)
        except RuntimeError:
            return current, None
        return current, next((r for r in candidates if r not in attempted), None)

    def _failover(
        self,
        dep: _AppliedDeployment,
        levels: np.ndarray,
        client_future: "Future",
        attempted: set,
        failed_chain: Tuple[_Replica, ...],
        exc: BaseException,
        priority: int = 0,
        trace=None,
    ) -> None:
        """Resubmit after a failed attempt, or surface the error.

        When no untried replica is left the request failed everywhere —
        a request problem (or, for :class:`Overloaded`, a saturated
        deployment), not a replica problem, so nobody is marked down
        and the last error reaches the client.
        """
        current, fallback = self._next_fallback(dep, attempted)
        if fallback is None:
            if trace is not None:
                trace.finish("shed" if isinstance(exc, Overloaded) else "failed")
            if client_future.set_running_or_notify_cancel():
                client_future.set_exception(exc)
            return
        attempted.add(fallback)
        if trace is not None:
            # Zero-width marker: the hop itself takes no request time
            # (the next admit span starts immediately), but the trace
            # shows where routing bounced and why.
            now = time.monotonic()
            trace.add_span(
                "failover", now, now,
                to_replica=fallback.label, reason=type(exc).__name__,
            )
        self.server.telemetry.emit(
            "failover",
            model=current.name,
            to_replica=fallback.label,
            reason=type(exc).__name__,
            attempts=len(attempted),
        )
        self._attempt(
            current, fallback, levels, client_future, attempted,
            failed_chain, priority=priority, trace=trace,
        )

    def _attempt(
        self,
        dep: _AppliedDeployment,
        replica: _Replica,
        levels: np.ndarray,
        client_future: "Future",
        attempted: set,
        failed_chain: Tuple[_Replica, ...] = (),
        priority: int = 0,
        block: bool = False,
        trace=None,
    ) -> None:
        try:
            inner = replica.scheduler.submit(
                replica.key, levels, priority=priority, block=block,
                trace=trace,
            )
        except BaseException as exc:  # noqa: BLE001 — e.g. SchedulerClosed
            # A full queue (Overloaded) or a redeploy/undeploy racing
            # the submit (SchedulerClosed); the failover contract still
            # holds — spill to a sibling.
            self._failover(
                dep, levels, client_future, attempted, failed_chain, exc,
                priority=priority, trace=trace,
            )
            return

        def done(f: "Future") -> None:
            if f.cancelled():
                if trace is not None:
                    trace.finish("cancelled")
                client_future.cancel()
                return
            exc = f.exception()
            if exc is None:
                if trace is not None:
                    trace.finish("served")
                if not client_future.set_running_or_notify_cancel():
                    return  # client cancelled while we served it
                self.server.telemetry.record_replica_served(replica.label)
                # Failovers count only here, where the resubmission
                # actually saved the client (one per earlier attempt):
                # a request that fails on *every* replica is an error,
                # not N-1 transparent rescues.
                self.server.telemetry.record_failover(len(attempted) - 1)
                # A replica that failed a request this replica then
                # served is confirmed bad (the request was fine): mark
                # it down so new traffic routes around while its queue
                # drains through the same failover path.
                for bad in failed_chain:
                    self._mark_down(bad)
                client_future.set_result(f.result())
                return
            # Overloaded means *busy*, not broken: the request was
            # shed unattempted, so spill it to a sibling without ever
            # putting this replica on the mark-down chain.
            chain = (
                failed_chain
                if isinstance(exc, Overloaded)
                else failed_chain + (replica,)
            )
            try:
                self._failover(
                    dep,
                    levels,
                    client_future,
                    attempted,
                    chain,
                    exc,
                    priority=priority,
                    trace=trace,
                )
            except BaseException as resubmit_exc:  # noqa: BLE001
                # The client future must always resolve, never hang.
                if trace is not None:
                    trace.finish("failed")
                if client_future.set_running_or_notify_cancel():
                    client_future.set_exception(resubmit_exc)

        inner.add_done_callback(done)

    def _mark_down(self, replica: _Replica) -> None:
        with self._lock:
            flipped = replica.state == HEALTHY
            if flipped:
                replica.state = DOWN
        if flipped:
            self.server.telemetry.emit("replica_down", replica=replica.label)

    def _shares_legacy_engine(self, replica: _Replica) -> bool:
        """Whether this replica's engine is the legacy path's cache
        entry (replica 0 on the registry's backend with inherited
        options — the configurations collapse to one cache key)."""
        return (
            replica.index == 0
            and replica.spec.backend == self.server.registry.backend
            and not replica.spec.backend_options
        )

    # ---------------------------------------------------------------- mirror
    def _submit_mirror(
        self, dep: _AppliedDeployment, levels: np.ndarray
    ) -> "Future[MirroredResult]":
        policy = dep.spec.policy
        candidates = routing_policy.mirror_candidates(
            self._candidates(dep), policy.mirror_fanout
        )
        client_future: "Future[MirroredResult]" = Future()
        votes: Dict[int, Optional[ServedResult]] = {}
        overloaded: set = set()
        remaining = [len(candidates)]
        vote_lock = threading.Lock()

        def record_vote(index: int, result: Optional[ServedResult]) -> None:
            with vote_lock:
                votes[index] = result
                remaining[0] -= 1
                if remaining[0]:
                    return
            self._resolve_vote(dep, candidates, votes, client_future, overloaded)

        def voted(index: int, f: "Future") -> None:
            result = None
            if not f.cancelled() and f.exception() is None:
                result = f.result()
            elif not f.cancelled() and isinstance(f.exception(), Overloaded):
                overloaded.add(index)
            record_vote(index, result)

        for replica in candidates:
            try:
                inner = replica.scheduler.submit(replica.key, levels)
            except BaseException as exc:  # noqa: BLE001 — abstain, don't hang the vote
                if isinstance(exc, Overloaded):
                    overloaded.add(replica.index)
                record_vote(replica.index, None)
                continue
            inner.add_done_callback(
                lambda f, i=replica.index: voted(i, f)
            )
        return client_future

    def _resolve_vote(
        self,
        dep: _AppliedDeployment,
        candidates: List[_Replica],
        votes: Dict[int, Optional[ServedResult]],
        client_future: "Future[MirroredResult]",
        overloaded: Optional[set] = None,
    ) -> None:
        if not client_future.set_running_or_notify_cancel():
            return
        succeeded = [
            (replica, votes[replica.index])
            for replica in candidates
            if votes.get(replica.index) is not None
        ]
        if not succeeded:
            client_future.set_exception(
                RuntimeError(
                    f"mirror vote failed: no replica of {dep.name!r} "
                    f"answered"
                )
            )
            return
        # A participant that failed a request its peers served is
        # confirmed bad, exactly as on the failover path: mark it down
        # so the next mirrored request stops wasting fan-out on it.
        # An *overloaded* abstention is busy, not broken — skipped.
        for replica in candidates:
            if votes.get(replica.index) is None and (
                overloaded is None or replica.index not in overloaded
            ):
                self._mark_down(replica)
        # Majority (optionally weighted by each answer's read margin —
        # see RoutingPolicy.mirror_weighted); deterministic tie-break
        # on the lower class label either way.
        weighted = dep.spec.policy.mirror_weighted
        winner, _ = routing_policy.resolve_votes(
            [
                (
                    int(result.prediction),
                    result_margin(result) if weighted else 1.0,
                )
                for _, result in succeeded
            ],
            weighted=weighted,
        )
        # Agreement is over the *participants*, not the respondents (a
        # dead replica is a lost vote, and a 2-way mirror with one
        # corpse must read 0.5, never a unanimous vote of one) — and it
        # stays a head count under weighting: the margin decides the
        # winner, not how united the replicas looked.
        agreed = sum(
            1 for _, result in succeeded if int(result.prediction) == winner
        )
        agreement = agreed / len(candidates)
        for replica, _ in succeeded:
            self.server.telemetry.record_replica_served(replica.label)
        self.server.telemetry.record_mirror_vote(unanimous=agreement == 1.0)
        client_future.set_result(
            MirroredResult(
                model=dep.route,
                prediction=winner,
                votes=tuple(
                    (
                        replica.label,
                        None
                        if votes.get(replica.index) is None
                        else int(votes[replica.index].prediction),
                    )
                    for replica in candidates
                ),
                agreement=agreement,
                delay=max(r.delay for _, r in succeeded),
                energy_total=sum(r.energy_total for _, r in succeeded),
                queue_wait_s=max(r.queue_wait_s for _, r in succeeded),
                batch_size=max(r.batch_size for _, r in succeeded),
            )
        )

    # ------------------------------------------------------------- elasticity
    @staticmethod
    def _replica_by_index(dep: _AppliedDeployment, index: int) -> _Replica:
        """Index-matched lookup: replica indices are identities, not
        list positions (retirement leaves holes)."""
        for replica in dep.replicas:
            if replica.index == index:
                return replica
        raise KeyError(
            f"deployment {dep.name!r} has no replica with index {index}"
        )

    def add_replica(
        self,
        name: str,
        spec: ReplicaSpec,
        wear: Optional[WearState] = None,
        index: Optional[int] = None,
    ) -> ReplicaStatus:
        """Grow ``name``'s deployment by one replica at runtime.

        The autoscaler's scale-up primitive: the spec passes the same
        static validation as one written in the deployment, the engine
        is materialised and canary-probed *before* the replica joins
        the routing set, and an optional ``wear`` ledger (e.g. a
        :class:`~repro.serving.autoscale.HardwareSlot`'s) seeds the
        replica's lifetime accounting.  Returns the new replica's
        status.

        An explicit ``index`` re-hosts a specific global replica
        identity (the cluster failover path moving a dead worker's
        replica onto a survivor: same index + same stream seed = the
        bit-identical engine).  Indices are never reused — a collision
        with a live replica is an error.
        """
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        with self._lock:
            if index is None:
                index = dep.next_index
                dep.next_index += 1
            else:
                index = int(index)
                if any(r.index == index for r in dep.replicas):
                    raise DeploymentError(
                        f"deployment {name!r} already has a replica "
                        f"with index {index}"
                    )
                dep.next_index = max(dep.next_index, index + 1)
        validate_replica_spec(spec, index, dep.spec.policy.min_agreement)
        key = ReplicaKey(dep.name, dep.version, index)
        replica = _Replica(index, spec, key, wear=wear)
        replica.scheduler = self._make_scheduler(replica, dep.spec)
        try:
            self._probe(dep.name, dep.version, replica, dep.canaries)
        except Exception as exc:
            replica.scheduler.shutdown(drain=False)
            raise DeploymentError(
                f"replica {index} ({spec.backend}) failed to materialise "
                f"for {dep.name!r} v{dep.version}: {exc}"
            ) from exc
        with self._lock:
            dep.replicas = dep.replicas + [replica]
        return self._status_of(replica)

    def retire_replica(
        self,
        name: str,
        index: int,
        timeout: Optional[float] = None,
        drain_steps: int = 1,
    ) -> ReplicaStatus:
        """Shrink ``name``'s deployment: drain and remove one replica.

        The autoscaler's scale-down primitive — the graceful opposite
        of eviction: the replica leaves the routing set first (no new
        traffic), its queue then drains on its own engine, and only
        then does its scheduler shut down.  Refuses to retire the last
        serviceable replica.

        ``drain_steps > 1`` (sticky policy only) retires *gradually*:
        the replica enters the ``draining`` state and keeps serving its
        HRW clients, who are remapped in ``drain_steps`` deterministic
        cohorts — one per maintenance sweep (:meth:`advance_drains`) —
        so a scale-down never steps every tenant's affinity at once.  A
        ``retire`` flight event marks each step; the final step drains
        the queue and removes the replica exactly as an immediate
        retire would.
        """
        drain_steps = int(drain_steps)
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        if drain_steps > 1 and dep.spec.policy.kind != "sticky":
            raise DeploymentError(
                f"drain_steps={drain_steps} is only meaningful under the "
                f"sticky policy ({dep.spec.policy.kind!r} has no client "
                f"affinity to remap gradually)"
            )
        with self._lock:
            replica = self._replica_by_index(dep, index)
            survivors = [
                r
                for r in dep.replicas
                if r.index != index and r.state in (HEALTHY, DOWN)
            ]
            if not survivors:
                raise DeploymentError(
                    f"cannot retire replica {index}: it is the last "
                    f"serviceable replica of {dep.name!r}"
                )
            if drain_steps > 1:
                replica.state = DRAINING
                replica.drain_step = 0
                replica.drain_steps = drain_steps
            else:
                replica.state = RETIRED
                dep.replicas = [r for r in dep.replicas if r.index != index]
        if drain_steps > 1:
            self.server.telemetry.emit(
                "retire",
                model=name, replica=replica.label,
                step=0, drain_steps=drain_steps,
            )
            return self._status_of(replica)
        self.server.telemetry.emit(
            "retire", model=name, replica=replica.label
        )
        replica.scheduler.shutdown(drain=True, timeout=timeout)
        return self._status_of(replica)

    def advance_drains(self) -> List[ReplicaStatus]:
        """Step every draining replica one cohort forward.

        Runs at the top of each maintenance sweep (:meth:`check_all`):
        each call remaps one more deterministic cohort of a draining
        replica's sticky clients onto their next-best survivor
        (:func:`repro.serving.policy.drain_moved`), emitting a
        per-step ``retire`` event; a replica whose last cohort has
        moved drains its queue and leaves the deployment.  Returns the
        statuses of replicas that finalised this sweep.
        """
        finalised: List[_Replica] = []
        with self._lock:
            deployed = list(self._deployments.values())
        for dep in deployed:
            for replica in list(dep.replicas):
                if replica.state != DRAINING:
                    continue
                with self._lock:
                    if replica.state != DRAINING:
                        continue
                    replica.drain_step += 1
                    done = replica.drain_step >= replica.drain_steps
                    if done:
                        replica.state = RETIRED
                        dep.replicas = [
                            r for r in dep.replicas if r.index != replica.index
                        ]
                self.server.telemetry.emit(
                    "retire",
                    model=dep.name, replica=replica.label,
                    step=replica.drain_step,
                    drain_steps=replica.drain_steps,
                )
                if done:
                    finalised.append(replica)
        for replica in finalised:
            replica.scheduler.shutdown(drain=True)
        return [self._status_of(r) for r in finalised]

    # ----------------------------------------------------------------- health
    def _status_of(self, replica: _Replica) -> ReplicaStatus:
        return ReplicaStatus(
            replica=replica.label,
            backend=replica.spec.backend,
            state=replica.state,
            weight=replica.spec.weight,
            unit_delay_s=replica.unit_delay,
            pending=replica.scheduler.pending,
            index=replica.index,
            wear_fraction=replica.wear.fraction_used,
        )

    def status(self, name: str) -> List[ReplicaStatus]:
        """Live per-replica view of one deployment."""
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        return [self._status_of(replica) for replica in dep.replicas]

    def kill_replica(self, name: str, index: int, recoverable: bool = False) -> None:
        """Chaos hook: hard-fail a replica without any health signal.

        The replica's engine resolution is poisoned — queued and future
        batches on it raise — but its routing state is left untouched,
        exactly like a crashed array that has not been probed yet: the
        per-request failover path discovers the loss, reroutes every
        affected request and marks the replica down.  ``check_replica``
        then escalates through the ladder: a ``recoverable`` kill (a
        transient crash) is healed by the *replace* rung on fresh
        hardware; the default unrecoverable kill (the array slot is
        gone) ends in eviction.
        """
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        replica = self._replica_by_index(dep, index)
        replica.killed = True
        replica.recoverable = bool(recoverable)
        replica.engine = None

    def check_replica(self, name: str, index: int) -> ReplicaHealthReport:
        """One canary sweep over a replica, healing up the full ladder.

        Rungs: **refresh** (reprogram in place — clears drift, cannot
        fix stuck hardware), **spare repair** (remap BIST-flagged rows
        onto manufactured spares, when the backend has any — fixes
        stuck hardware without burning a fresh array), **replace**
        (drop the cached engine and re-materialise on fresh hardware,
        same stream seed), **evict** (remove the replica from routing
        permanently; the deployment keeps serving on the survivors).
        The ladder is entered on canary disagreement *or* — when
        :attr:`min_signal_ratio` is raised above its observe-only
        default of 0 — on read-margin collapse while every prediction
        is still correct (a ``margin_warning`` flight event marks that
        early-warning entry).  Repairs run under the replica's own
        scheduler quiesce so live traffic never reads a
        half-reprogrammed array.
        """
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        replica = self._replica_by_index(dep, index)
        if replica.state == EVICTED:
            return ReplicaHealthReport(
                replica.label, EVICTED, 0.0, action="evict", healed=False
            )
        if replica.state == DRAINING:
            # A draining replica is already leaving: running the heal
            # ladder on it would waste repairs — or worse, flip it back
            # to HEALTHY and resurrect a retirement in progress.
            return ReplicaHealthReport(
                replica.label, DRAINING, 1.0, action="ok", healed=True
            )
        min_agreement = dep.spec.policy.min_agreement
        telemetry = self.server.telemetry

        def measure() -> float:
            report = replica.resolve().infer_batch(dep.canaries)
            failed, agreement = agreement_from_predictions(
                report.predictions, replica.baseline
            )
            telemetry.record_health_check(failed)
            if replica.probe is not None:
                replica.margin_reading = replica.probe.observe(
                    _report_currents(report)
                )
            return agreement

        def ratio_now() -> float:
            reading = replica.margin_reading
            return float("nan") if reading is None else reading.signal_ratio

        def margin_now() -> float:
            reading = replica.margin_reading
            return float("nan") if reading is None else reading.margin_p50

        def healthy(agreement: float) -> bool:
            # NaN ratio (dead replica, degenerate geometry) never fails
            # the margin channel — agreement already covers dead.
            return agreement >= min_agreement and not (
                ratio_now() < self.min_signal_ratio
            )

        # The whole check runs quiesced, the initial probe included: a
        # canary read must never interleave with live batches on
        # stateful readers (an ``advance_streams`` replica's LFSR
        # draws), and a failing probe escalates straight into repairs.
        # When the replica shares its engine object with the legacy
        # path (same registry cache entry), the legacy scheduler pauses
        # too — mirroring the dual quiesce HealthMonitor holds — but
        # unrelated tenants are not stalled for replicas that cannot
        # share.
        with contextlib.ExitStack() as quiesced:
            if self._shares_legacy_engine(replica):
                quiesced.enter_context(
                    self.server.scheduler.quiesce(timeout=30.0)
                )
            quiesced.enter_context(replica.scheduler.quiesce(timeout=30.0))
            try:
                agreement = measure()
            except Exception:
                agreement = 0.0
            if healthy(agreement):
                with self._lock:
                    if replica.state == DOWN:
                        replica.state = HEALTHY
                return ReplicaHealthReport(
                    replica.label, replica.state, agreement,
                    action="ok", healed=True,
                    signal_ratio=ratio_now(), margin=margin_now(),
                )
            if agreement >= min_agreement:
                # Predictions intact, margin collapsed: the early
                # warning armed the ladder before accuracy could flip.
                telemetry.emit(
                    "margin_warning",
                    model=dep.name, replica=replica.label,
                    signal_ratio=ratio_now(), margin_p50=margin_now(),
                )
            else:
                telemetry.emit(
                    "canary_failure",
                    model=dep.name, replica=replica.label,
                    agreement=agreement,
                )
            # Rung 1: refresh — reprogram in place.
            try:
                refresh_engine(replica.resolve())
                replica.wear.add_cycles(1)
                telemetry.record_refresh()
                telemetry.emit(
                    "refresh", model=dep.name, replica=replica.label
                )
                agreement = measure()
            except Exception:
                agreement = 0.0
            if healthy(agreement):
                action = "refresh"
            else:
                # Rung 2: spare repair — remap BIST-flagged rows onto
                # manufactured spares.  Fixes stuck hardware a refresh
                # cannot, without discarding the array; skipped
                # silently when the backend has no (free) spares.
                action = ""
                if self._try_spare_repair(dep, replica):
                    try:
                        agreement = measure()
                    except Exception:
                        agreement = 0.0
                    if healthy(agreement):
                        action = "spare_repair"
            if not action:
                # Rung 3: replace — fresh hardware, same stream seed.
                # An unrecoverably killed replica has no slot to put
                # fresh hardware into; fall through to eviction.
                action = "replace"
                try:
                    if replica.killed and not replica.recoverable:
                        raise KilledReplicaError(
                            f"replica {replica.label} is unrecoverable"
                        )
                    replica.killed = False
                    replica.engine = self._materialise(
                        dep.name, dep.version, replica, fresh=True
                    )
                    replica.wear.add_cycles(1)
                    telemetry.record_replacement()
                    telemetry.emit(
                        "replace", model=dep.name, replica=replica.label
                    )
                    agreement = measure()
                except Exception:
                    agreement = 0.0
            if not healthy(agreement):
                # Rung 4: evict — out of the routing set for good.
                with self._lock:
                    replica.state = EVICTED
                replica.killed = True
                replica.engine = None
                telemetry.record_replica_eviction()
                telemetry.emit(
                    "evict",
                    model=dep.name, replica=replica.label,
                    agreement=agreement,
                )
                return ReplicaHealthReport(
                    replica.label, EVICTED, agreement,
                    action="evict", healed=False,
                )
        with self._lock:
            replica.state = HEALTHY
        return ReplicaHealthReport(
            replica.label, HEALTHY, agreement, action=action, healed=True,
            signal_ratio=ratio_now(), margin=margin_now(),
        )

    def _try_spare_repair(self, dep, replica: _Replica) -> int:
        """The spare-repair rung: remap flagged rows onto spares.

        Returns rows repaired; 0 means the rung was skipped (dead
        replica, no spare-capable array, dry pool, or a clean scan) and
        the ladder escalates straight to replace.  Emits one
        ``spare_repair`` flight event per repaired array.
        """
        try:
            engine = replica.resolve()
        except KilledReplicaError:
            return 0
        repaired = 0
        for tile in getattr(engine, "tiles", None) or [engine]:
            backend = getattr(tile, "backend", None)
            if backend is None or not backend.supports(Capability.SPARE_ROWS):
                continue
            if backend.spare_rows_free <= 0:
                continue
            try:
                rows = spare_row_repair(tile)
            except Exception:
                continue
            if not rows:
                continue
            repaired += len(rows)
            self.server.telemetry.emit(
                "spare_repair",
                model=dep.name, replica=replica.label,
                rows=[int(r) for r in rows],
                spares_free=int(backend.spare_rows_free),
            )
        return repaired

    def check_all(self) -> List[ReplicaHealthReport]:
        """Heal-ladder sweep over every replica of every deployment.

        Gradual drains advance first: a draining replica steps one
        client cohort per sweep, and one that finalises here is gone
        before the ladder below would have probed it.
        """
        self.advance_drains()
        reports = []
        with self._lock:
            deployed = list(self._deployments.values())
        for dep in deployed:
            for replica in list(dep.replicas):
                try:
                    reports.append(self.check_replica(dep.name, replica.index))
                except KeyError:
                    # Retired between the snapshot and the check — an
                    # autoscaler scale-down racing the sweep, not an
                    # error.
                    continue
        return reports

    # ----------------------------------------------------- hardware telemetry
    def _hardware_sample(
        self, dep: _AppliedDeployment, replica: _Replica
    ) -> DeviceHealthSample:
        """One device-health ledger row for ``replica``, recorded into
        :attr:`ledger` when one is attached.

        Read-only against the hardware: wear/age come from the
        replica's bookkeeping ledgers, margins from the *last* canary
        read (no fresh array access), and the spare-row / BIST
        inventory from capability-gated verify reads that never mutate
        state — so the sampler runs safely against live traffic,
        without a quiesce.  A ``bist_scan`` flight event fires when the
        scan finds faulty cells.
        """
        now = time.monotonic()
        if replica._hw_t is not None:
            # Wall time since the last sample accrues as in-service age
            # (ledger mode: bookkeeping only, the live array is never
            # rewritten here).
            replica.age.advance(max(now - replica._hw_t, 0.0))
        replica._hw_t = now
        spares: Optional[int] = None
        faults: Optional[int] = None
        try:
            engine = replica.resolve()
        except KilledReplicaError:
            engine = None
        if engine is not None:
            for tile in getattr(engine, "tiles", None) or [engine]:
                backend = getattr(tile, "backend", None)
                if backend is None:
                    continue
                if backend.supports(Capability.SPARE_ROWS):
                    free = int(backend.spare_rows_free)
                    spares = free if spares is None else spares + free
                try:
                    flagged = int(np.count_nonzero(backend.bist_scan()))
                except Exception:
                    continue
                faults = flagged if faults is None else faults + flagged
            if faults:
                self.server.telemetry.emit(
                    "bist_scan",
                    model=dep.name, replica=replica.label,
                    faulty_cells=faults,
                )
        reading = replica.margin_reading
        nan = float("nan")
        sample = DeviceHealthSample(
            t_s=now,  # monotonic, same base as flight-event timestamps
            replica=replica.label,
            state=replica.state,
            wear_fraction=replica.wear.fraction_used,
            age_s=replica.age.age_s,
            spares_free=spares,
            faulty_cells=faults,
            margin_p5=nan if reading is None else reading.margin_p5,
            margin_p50=nan if reading is None else reading.margin_p50,
            signal_ratio=nan if reading is None else reading.signal_ratio,
        )
        if self.ledger is not None:
            self.ledger.record(sample)
        return sample

    def hardware_status(self, name: str) -> List[DeviceHealthSample]:
        """Device-health snapshot of every replica of ``name``'s
        deployment: wear, in-service age, spare inventory, BIST fault
        count and the latest margin reading — one
        :class:`~repro.reliability.observability.DeviceHealthSample`
        per replica, recorded into the attached ledger."""
        dep = self.deployment_for(name)
        if dep is None:
            raise KeyError(f"no deployment for model {name!r}")
        return [
            self._hardware_sample(dep, replica) for replica in dep.replicas
        ]

    # -------------------------------------------------------------- lifecycle
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain every replica queue; False when any timed out.

        ``timeout`` bounds the whole sweep (one shared deadline), not
        each queue.  The sweep runs twice: a failover can resubmit onto
        a queue the first pass already found empty, and the second pass
        (a fast no-op when nothing moved) catches exactly those
        stragglers.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            deployed = list(self._deployments.values())
        schedulers = [r.scheduler for d in deployed for r in d.replicas]
        ok = True
        for _ in range(2):
            for scheduler in schedulers:
                remaining = (
                    None
                    if deadline is None
                    else max(deadline - time.monotonic(), 0.0)
                )
                ok = scheduler.drain(remaining) and ok
        return ok

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut every replica scheduler down; idempotent.

        A graceful close drains every queue *before* any scheduler
        shuts, so a failover from a late-draining replica cannot land
        on an already-closed sibling.
        """
        if drain:
            self.drain(timeout)
        with self._lock:
            deployed = list(self._deployments.values())
        for dep in deployed:
            for replica in dep.replicas:
                replica.scheduler.shutdown(drain=drain, timeout=timeout)

    def __repr__(self) -> str:
        with self._lock:
            total = sum(len(d.replicas) for d in self._deployments.values())
            return (
                f"Router({len(self._deployments)} deployments, "
                f"{total} replicas)"
            )
