"""Pure routing-policy core: replica arbitration with no threads or sockets.

The :class:`~repro.serving.router.Router` used to fuse two concerns:
*deciding* which replica answers a request, and *executing* that
decision against in-process schedulers.  The cross-process serving
plane (:mod:`repro.serving.cluster`) needs the first half without the
second — the front end arbitrates over replica *views* reported by
worker processes, then ships the request over a socket instead of into
a queue.  This module is that first half, factored out: every function
here is a pure decision over snapshot state, trivially unit-testable,
and shared verbatim by the in-process router and the cluster front end
so ``local`` and ``process`` placement route identically.

Candidates are duck-typed: anything exposing ``index`` / ``state`` /
``unit_delay`` / ``weight`` / ``pending`` participates (the router's
live ``_Replica`` objects and the cluster's ``_ReplicaHandle`` rows
both do), so the hot path never copies replica state into intermediate
view objects.

Two policy refinements live here alongside the extraction:

* **Weighted mirror votes** (:func:`resolve_votes` with per-vote
  weights): instead of one-replica-one-vote, each vote carries the
  winner/runner-up read margin of its own answer — the quantity
  ``read_margin_batch`` probes, recomputed for free from the currents
  the serving read already sensed.  Two hesitant replicas outvoting one
  confident one is exactly the failure mode margin weighting removes.
  The deterministic tie-break (lower class label) is preserved.
* **Gradual sticky drain** (:func:`pick_sticky` over draining
  replicas): a retiring replica's HRW clients are remapped in
  ``drain_steps`` deterministic cohorts — one cohort per maintenance
  sweep — instead of all at once, so a scale-down never steps the
  affinity mapping for every tenant in the same instant.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Replica lifecycle states (shared with the router, which re-exports
#: them; string-compared by the health layer, which cannot import us).
HEALTHY = "healthy"
DOWN = "down"
DRAINING = "draining"
EVICTED = "evicted"
RETIRED = "retired"


def serviceable(replicas: Iterable) -> List:
    """The replicas a request may be routed to, best tier first.

    Healthy replicas when any exist; otherwise the down ones (trying a
    down replica beats rejecting the request outright — it may have
    recovered, and if not the failover chain surfaces the error).
    Draining, evicted and retired replicas never take new traffic.
    Empty when nothing is serviceable — the caller owns the error.
    """
    replicas = list(replicas)
    healthy = [r for r in replicas if r.state == HEALTHY]
    if healthy:
        return healthy
    return [r for r in replicas if r.state == DOWN]


def cost_score(replica) -> float:
    """Cost-policy score: lower is better.

    The replica's probed unit delay (its technology's own cost model),
    scaled by live queue depth — a busy replica's next request waits
    behind its backlog — and divided by the spec weight.
    """
    return replica.unit_delay * (1 + replica.pending) / replica.weight


def _hrw_key(token: bytes, replica) -> Tuple[int, int]:
    """Rendezvous (highest-random-weight) score of one (client, replica)
    pair; ties broken on the replica index for determinism."""
    return (zlib.crc32(token + b"|%d" % replica.index), replica.index)


def _client_token(client: Optional[object]) -> bytes:
    return b"" if client is None else str(client).encode()


def pick_cost(candidates: Sequence):
    """Cheapest candidate by :func:`cost_score`."""
    return min(candidates, key=cost_score)


def pick_round_robin(candidates: Sequence, rr_tick: int):
    """Candidates in turn; ``rr_tick`` is the caller's monotonic counter."""
    return candidates[rr_tick % len(candidates)]


def drain_moved(client: Optional[object], step: int, steps: int) -> bool:
    """Whether ``client`` has been remapped off a draining replica yet.

    Clients hash into ``steps`` deterministic cohorts (a *different*
    hash than the HRW placement one, so cohort membership is
    independent of which replica a client sticks to); cohort ``k``
    moves on drain step ``k+1``.  At step 0 nobody has moved, at step
    ``steps`` everyone has.
    """
    if steps <= 0:
        return True
    cohort = zlib.crc32(_client_token(client) + b"#drain") % steps
    return cohort < step


def pick_sticky(
    candidates: Sequence,
    client: Optional[object],
    draining: Sequence = (),
):
    """HRW affinity pick, honouring gradual drains.

    Per-(client, replica) scores never change, so losing a replica
    remaps only the clients whose top score it held (~1/N of them).  A
    *draining* replica keeps its clients until their cohort's step
    arrives (:func:`drain_moved`); a moved client lands on its next-best
    non-draining candidate — the same replica the final membership
    change would give it, just earlier, so the handover happens exactly
    once per client.
    """
    token = _client_token(client)
    pool = list(candidates) + [d for d in draining if d.state == DRAINING]
    winner = max(pool, key=lambda r: _hrw_key(token, r))
    if winner.state == DRAINING:
        steps = getattr(winner, "drain_steps", 0)
        step = getattr(winner, "drain_step", 0)
        if candidates and drain_moved(client, step, steps):
            return max(candidates, key=lambda r: _hrw_key(token, r))
        return winner
    return winner


def pick_replica(
    kind: str,
    candidates: Sequence,
    client: Optional[object] = None,
    rr_tick: int = 0,
    draining: Sequence = (),
):
    """One replica per the policy ``kind`` (mirror uses
    :func:`mirror_candidates` instead — fan-out is not a single pick)."""
    if kind == "round_robin":
        return pick_round_robin(candidates, rr_tick)
    if kind == "sticky":
        return pick_sticky(candidates, client, draining)
    # "cost" (and any unknown kind degrades to the safe default)
    return pick_cost(candidates)


def mirror_candidates(candidates: Sequence, fanout: int) -> List:
    """The mirror fan-out set: cheapest-first, capped at ``fanout``
    (0 = all candidates)."""
    ordered = sorted(candidates, key=cost_score)
    if fanout > 0:
        ordered = ordered[:fanout]
    return ordered


def vote_weight(margin: Optional[float]) -> float:
    """A vote's weight from its answer's winner/runner-up margin.

    ``None``/NaN (margin unavailable — degenerate geometry, remote
    result without a probe) and negative values weigh 0: the vote still
    counts toward unweighted fallback and agreement, it just cannot
    outvote a confident peer.
    """
    if margin is None or margin != margin:
        return 0.0
    return max(float(margin), 0.0)


def resolve_votes(
    votes: Sequence[Tuple[int, float]],
    weighted: bool = False,
) -> Tuple[int, Dict[int, float]]:
    """The winning prediction of a mirror vote; ``(winner, tally)``.

    ``votes`` are ``(prediction, weight)`` pairs from the replicas that
    answered (abstainers are excluded — they are accounted for in
    *agreement*, not here).  Unweighted, every vote counts 1 — the
    classic majority.  Weighted, each vote counts its read margin; when
    every margin collapsed to 0 (nothing confident anywhere) the count
    majority decides instead of the degenerate all-zero tally.  Either
    way an exact tie breaks deterministically on the lower class label.
    """
    if not votes:
        raise ValueError("resolve_votes needs at least one vote")
    tally: Dict[int, float] = {}
    for prediction, weight in votes:
        w = vote_weight(weight) if weighted else 1.0
        tally[prediction] = tally.get(prediction, 0.0) + w
    if weighted and max(tally.values()) <= 0.0:
        tally = {}
        for prediction, _ in votes:
            tally[prediction] = tally.get(prediction, 0.0) + 1.0
    winner = min(tally, key=lambda p: (-tally[p], p))
    return winner, tally
