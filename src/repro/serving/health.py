"""Self-healing serving: canary sweeps plus automatic refresh/replace.

A programmed array does not stay correct forever — cells get stuck,
V_TH drifts over bake time (:mod:`repro.reliability`) — and the serving
layer is where that has to be *caught*.  :class:`HealthMonitor` runs the
maintenance loop a production deployment schedules between traffic:

1. **canaries** — at install time a small input set is run through the
   pristine engine and its predictions (and wordline currents) become
   the baseline;
2. **checks** — each sweep re-runs the canaries directly against the
   engine currently serving the model (bypassing the scheduler queue —
   a maintenance read must not contend with traffic) and compares
   predictions bit-for-bit plus the mean relative current shift, which
   catches the common-mode retention drift that erodes sensing margin
   without yet flipping a decision;
3. **healing** — on a failed check the monitor escalates through the
   repair ladder: *refresh* (reprogram in place, clears drift) and, if
   canaries still fail, *replace* (drop the registry's cached engine
   and re-materialise — the simulator's stand-in for swapping in a
   spare macro; same seed, so the replacement is the pristine array
   bit-for-bit).

Every sweep and repair lands in the server's
:class:`~repro.serving.telemetry.Telemetry`, so ``febim serve`` /
``--json`` surfaces fault and repair counters next to throughput.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.reliability.mitigation import refresh_engine
from repro.reliability.observability import MarginProbe, MarginReading

if TYPE_CHECKING:  # import cycle: server -> router -> health
    from repro.serving.server import FeBiMServer


@dataclass(frozen=True)
class HealthReport:
    """Outcome of one canary sweep (and any healing it triggered).

    ``accuracy`` / ``current_shift`` / ``signal_ratio`` / ``margin``
    describe the state *found* (the margin pair comes from the same
    canary read, so the probe costs no extra hardware access);
    ``action`` is the deepest repair taken (``"ok"``, ``"refresh"``,
    ``"replace"``, or ``"degraded"`` when healing was off or failed)
    and ``healed`` whether the post-repair sweep passed.
    """

    model: str
    version: int
    canaries: int
    failed: int
    accuracy: float
    current_shift: float
    action: str
    healed: bool
    signal_ratio: float = float("nan")
    margin: float = float("nan")

    @property
    def ok(self) -> bool:
        """True when the engine passed without needing repair."""
        return self.action == "ok"

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "version": self.version,
            "canaries": self.canaries,
            "failed": self.failed,
            "accuracy": self.accuracy,
            "current_shift": self.current_shift,
            "action": self.action,
            "healed": self.healed,
            # NaN is not JSON; absent margins serialise as null.
            "signal_ratio": (
                None if self.signal_ratio != self.signal_ratio
                else self.signal_ratio
            ),
            "margin": None if self.margin != self.margin else self.margin,
        }


@dataclass
class _CanaryState:
    levels: np.ndarray
    predictions: np.ndarray
    currents: np.ndarray
    probe: MarginProbe


def _report_currents(report) -> np.ndarray:
    """Per-sample current signature from either batch-report flavour."""
    currents = getattr(report, "wordline_currents", None)
    if currents is None:
        currents = report.tile_currents
    return np.asarray(currents, dtype=float)


def agreement_from_predictions(
    predictions: np.ndarray, baseline_predictions: np.ndarray
) -> Tuple[int, float]:
    """``(failed, accuracy)`` of canary predictions vs their pristine
    baseline — the one implementation of agreement scoring, shared by
    the single-engine :class:`HealthMonitor` and the deployment
    :class:`~repro.serving.router.Router`'s per-replica heal ladder."""
    predictions = np.asarray(predictions)
    baseline = np.asarray(baseline_predictions)
    failed = int(np.count_nonzero(predictions != baseline))
    return failed, 1.0 - failed / baseline.shape[0]


def measure_agreement(
    engine, levels: np.ndarray, baseline_predictions: np.ndarray
) -> Tuple[int, float]:
    """Run ``levels`` through ``engine`` and score prediction agreement
    (:func:`agreement_from_predictions` over a fresh canary read)."""
    return agreement_from_predictions(
        engine.infer_batch(levels).predictions, baseline_predictions
    )


@dataclass(frozen=True)
class DeploymentPressure:
    """Aggregate load view of one deployment's replica set.

    The autoscale controller's decision input, derived purely from
    :class:`~repro.serving.router.ReplicaStatus` rows so synthetic
    statuses drive it in tests without a live router.

    Attributes
    ----------
    replicas:
        Replicas in the routing set (any state).
    serviceable:
        Replicas accepting traffic (healthy or down-but-retriable).
    queued:
        Total requests pending across serviceable replicas.
    deepest:
        The single deepest serviceable queue — the admission bound is
        per replica, so one saturated queue sheds even while the
        deployment-wide mean looks calm.
    """

    replicas: int
    serviceable: int
    queued: int
    deepest: int


def measure_pressure(statuses) -> DeploymentPressure:
    """Fold replica statuses into a :class:`DeploymentPressure`.

    Accepts any iterable of objects with ``state`` / ``pending``
    attributes (the router's ``status()`` rows or test doubles).
    State strings are compared literally — this module cannot import
    the router's constants (the router imports us).
    """
    statuses = list(statuses)
    serviceable = [s for s in statuses if s.state in ("healthy", "down")]
    pending = [int(s.pending) for s in serviceable]
    return DeploymentPressure(
        replicas=len(statuses),
        serviceable=len(serviceable),
        queued=sum(pending),
        deepest=max(pending, default=0),
    )


class HealthMonitor:
    """Canary health checks with an automatic repair ladder.

    Parameters
    ----------
    server:
        The :class:`~repro.serving.server.FeBiMServer` whose engines to
        watch.
    min_accuracy:
        Canary agreement (vs the pristine baseline) below which a check
        fails.  The default 1.0 demands bit-identical predictions —
        right for the noise-free default models; relax it for
        configurations with per-read noise.
    max_current_shift:
        Mean relative wordline-current shift above which a check fails
        even with every prediction intact.  This channel does the heavy
        lifting: FeBiM decisions are *robust* — on iris at the paper's
        operating point even several dead bitlines flip no prediction —
        so faults and drift show up in the analog read signature long
        before they show up in accuracy.  Canary reads are noise-free
        and bit-stable, so the default 10 % is already far outside any
        benign residual.
    min_signal_ratio:
        Read-margin floor: mean canary signal relative to the pristine
        install-time baseline below which a check fails even with every
        prediction intact and the shift channel calm.  Retention drift
        is common-mode, so the signal ratio collapses smoothly while
        decisions hold — this is the early-warning channel that arms
        the heal ladder *before* predictions flip.  The default 0.5
        never changes which checks fail under the default shift
        threshold (a 50 % signal collapse implies a ~50 % mean shift,
        far past ``max_current_shift``); raise it to make the margin
        channel lead.
    auto_heal:
        Escalate failed checks through refresh -> replace; when False,
        checks only observe and report.
    quiesce_timeout_s:
        How long a repair may wait for the scheduler's in-flight batch
        to clear before giving up (``TimeoutError``).  Repairs run
        under :meth:`~repro.serving.scheduler.MicroBatchScheduler.
        quiesce`, so live traffic can never read a half-reprogrammed
        array.
    """

    def __init__(
        self,
        server: FeBiMServer,
        min_accuracy: float = 1.0,
        max_current_shift: float = 0.1,
        min_signal_ratio: float = 0.5,
        auto_heal: bool = True,
        quiesce_timeout_s: float = 30.0,
    ):
        if not 0.0 <= min_accuracy <= 1.0:
            raise ValueError("min_accuracy must lie in [0, 1]")
        if max_current_shift < 0:
            raise ValueError("max_current_shift must be >= 0")
        if min_signal_ratio < 0:
            raise ValueError("min_signal_ratio must be >= 0")
        self.server = server
        self.min_accuracy = float(min_accuracy)
        self.max_current_shift = float(max_current_shift)
        self.min_signal_ratio = float(min_signal_ratio)
        self.auto_heal = bool(auto_heal)
        self.quiesce_timeout_s = float(quiesce_timeout_s)
        self._canaries: Dict[Tuple[str, int], _CanaryState] = {}

    # ------------------------------------------------------------ canaries
    def _resolve(self, name: str, version: Optional[int]) -> int:
        return self.server.registry.resolve_version(name, version)

    def install(
        self, name: str, levels: np.ndarray, version: Optional[int] = None
    ) -> int:
        """Capture the pristine baseline for ``name`` from ``levels``.

        Runs the canary set once through the currently served engine —
        install right after registration, while the array is known
        good — and pins the resolved version.  Returns it.
        """
        version = self._resolve(name, version)
        levels = np.asarray(levels, dtype=int)
        if levels.ndim != 2 or levels.shape[0] == 0:
            raise ValueError(
                f"canary levels must be a non-empty (n, features) matrix, "
                f"got shape {levels.shape}"
            )
        engine = self.server.engine_for(name, version)
        report = engine.infer_batch(levels)
        currents = _report_currents(report).copy()
        self._canaries[(name, version)] = _CanaryState(
            levels=levels.copy(),
            predictions=np.asarray(report.predictions).copy(),
            currents=currents,
            probe=MarginProbe(currents),
        )
        return version

    def installed(self) -> List[Tuple[str, int]]:
        """The (name, version) pairs with canary baselines."""
        return sorted(self._canaries)

    # -------------------------------------------------------------- checking
    def _measure(
        self, state: _CanaryState, engine
    ) -> Tuple[int, float, float, MarginReading]:
        report = engine.infer_batch(state.levels)
        failed, accuracy = agreement_from_predictions(
            report.predictions, state.predictions
        )
        currents = _report_currents(report)
        baseline = np.abs(state.currents)
        shift = float(
            np.mean(
                np.abs(currents - state.currents)
                / np.maximum(baseline, 1e-30)
            )
        )
        return failed, accuracy, shift, state.probe.observe(currents)

    def _healthy(self, accuracy: float, shift: float, ratio: float) -> bool:
        # ``not (ratio < floor)`` so a NaN ratio (degenerate canary
        # geometry, no runner-up class) never fails the margin channel.
        return (
            accuracy >= self.min_accuracy
            and shift <= self.max_current_shift
            and not (ratio < self.min_signal_ratio)
        )

    def check(self, name: str, version: Optional[int] = None) -> HealthReport:
        """One canary sweep against the serving engine; heals on failure.

        Raises ``KeyError`` when no canaries were installed for the
        resolved version.
        """
        version = self._resolve(name, version)
        try:
            state = self._canaries[(name, version)]
        except KeyError:
            raise KeyError(
                f"no canaries installed for {name!r} v{version}; "
                f"call install() first"
            ) from None
        engine = self.server.engine_for(name, version)
        failed, accuracy, shift, reading = self._measure(state, engine)
        ratio = reading.signal_ratio
        margin = reading.margin_p50
        self.server.telemetry.record_health_check(failed)
        # Early-warning channels: fire while predictions are still
        # intact, so operators (and the heal ladder, when the floors
        # are configured to lead) see the collapse *before* it flips
        # a decision.
        if accuracy >= self.min_accuracy:
            if ratio < self.min_signal_ratio:
                self.server.telemetry.emit(
                    "margin_warning",
                    model=name, version=version,
                    signal_ratio=ratio, margin_p50=margin,
                )
            if shift > self.max_current_shift:
                self.server.telemetry.emit(
                    "drift_alarm",
                    model=name, version=version,
                    shift=shift,
                    signal_ratio=ratio if ratio == ratio else None,
                )
        if self._healthy(accuracy, shift, ratio):
            return HealthReport(
                name, version, state.predictions.shape[0], failed,
                accuracy, shift, action="ok", healed=True,
                signal_ratio=ratio, margin=margin,
            )
        self.server.telemetry.emit(
            "canary_failure",
            model=name, version=version, failed=failed,
            accuracy=accuracy, shift=shift,
            signal_ratio=ratio if ratio == ratio else None,
            margin_p50=margin if margin == margin else None,
        )
        if not self.auto_heal:
            return HealthReport(
                name, version, state.predictions.shape[0], failed,
                accuracy, shift, action="degraded", healed=False,
                signal_ratio=ratio, margin=margin,
            )
        # Repairs mutate the live engine (erase + rewrite) and swap the
        # registry cache, so the scheduler is quiesced for the ladder:
        # the in-flight batch finishes on the consistent old state,
        # queued traffic waits, and no request can ever read a
        # half-reprogrammed array.  A deployment's replica 0 can share
        # this very engine object (same registry cache entry), so its
        # replica queues quiesce too.
        router = getattr(self.server, "router", None)
        with contextlib.ExitStack() as stack:
            stack.enter_context(
                self.server.scheduler.quiesce(timeout=self.quiesce_timeout_s)
            )
            if router is not None:
                stack.enter_context(
                    router.quiesce_model(name, timeout=self.quiesce_timeout_s)
                )
            # Rung 1: refresh-by-reprogram — clears retention drift and
            # accumulated disturb, cannot fix stuck hardware.
            refresh_engine(engine)
            self.server.telemetry.record_refresh()
            self.server.telemetry.emit("refresh", model=name, version=version)
            r_failed, r_accuracy, r_shift, r_reading = self._measure(
                state, engine
            )
            if self._healthy(r_accuracy, r_shift, r_reading.signal_ratio):
                return HealthReport(
                    name, version, state.predictions.shape[0], failed,
                    accuracy, shift, action="refresh", healed=True,
                    signal_ratio=ratio, margin=margin,
                )
            # Rung 2: replace — drop the cached engine and re-materialise
            # from the registry artifact (fresh pristine hardware, same
            # per-tenant stream, so served results stay bit-stable).
            self.server.registry.invalidate(name)
            engine = self.server.engine_for(name, version)
            self.server.telemetry.record_replacement()
            self.server.telemetry.emit("replace", model=name, version=version)
            _, f_accuracy, f_shift, f_reading = self._measure(state, engine)
            return HealthReport(
                name, version, state.predictions.shape[0], failed,
                accuracy, shift, action="replace",
                healed=self._healthy(
                    f_accuracy, f_shift, f_reading.signal_ratio
                ),
                signal_ratio=ratio, margin=margin,
            )

    def check_all(self) -> List[HealthReport]:
        """Sweep every installed canary set (stable name/version order)."""
        return [self.check(name, version) for name, version in self.installed()]
