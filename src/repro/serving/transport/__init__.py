"""Placement/transport layer: where a deployment's replicas live.

Two placements behind one interface:

* ``local`` (the default, and any spec without a ``placement`` block):
  replicas are hosted in-process by
  :class:`~repro.serving.server.FeBiMServer` — bit-identical to the
  pre-placement behaviour, zero new overhead on the submit path.
* ``process``: replicas live in supervised worker subprocesses behind
  a :class:`~repro.serving.cluster.ClusterServer`, speaking the
  versioned length-prefixed JSON protocol in
  :mod:`repro.serving.transport.protocol`.

:func:`serve_deployment` is the switch: hand it a registry and a
deployment spec and it returns whichever server the spec's placement
calls for, already deployed — both expose the same
``submit`` / ``submit_many`` / ``predict`` / ``status`` / ``stats`` /
``close`` surface, so callers (and the CLI) never branch on placement
again.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.serving.transport.protocol import (
    HEADER,
    MAGIC,
    MAX_FRAME,
    MESSAGE_KINDS,
    WIRE_VERSION,
    FrameDecoder,
    MessageConnection,
    ProtocolError,
    RemoteServedResult,
    RemoteWorkerError,
    decode_error,
    decode_mirrored,
    decode_result,
    encode_error,
    encode_frame,
    encode_mirrored,
    encode_result,
    make,
)

__all__ = [
    "HEADER",
    "MAGIC",
    "MAX_FRAME",
    "MESSAGE_KINDS",
    "WIRE_VERSION",
    "FrameDecoder",
    "MessageConnection",
    "ProtocolError",
    "RemoteServedResult",
    "RemoteWorkerError",
    "decode_error",
    "decode_mirrored",
    "decode_result",
    "encode_error",
    "encode_frame",
    "encode_mirrored",
    "encode_result",
    "make",
    "serve_deployment",
]


def serve_deployment(
    registry,
    deployment,
    policy=None,
    seed: Optional[int] = None,
    max_rows: Optional[int] = None,
    **cluster_kwargs,
):
    """A deployed server for ``deployment``, placed per its spec.

    ``placement: local`` (or none) builds a
    :class:`~repro.serving.server.FeBiMServer`; ``placement: process``
    builds a :class:`~repro.serving.cluster.ClusterServer` with
    ``cluster_kwargs`` forwarded (e.g. ``heartbeat_period_s``).  Either
    way the deployment is applied before the server is returned — use
    as a context manager for guaranteed teardown.
    """
    placement = deployment.placement
    if placement is not None and placement.kind == "process":
        from repro.serving.cluster import ClusterServer

        cluster = ClusterServer(
            registry, policy=policy, seed=seed, max_rows=max_rows,
            **cluster_kwargs,
        )
        try:
            cluster.deploy(deployment)
        except BaseException:
            cluster.close(drain=False)
            raise
        return cluster
    if cluster_kwargs:
        raise TypeError(
            f"local placement takes no cluster kwargs, got "
            f"{sorted(cluster_kwargs)}"
        )
    from repro.serving.server import FeBiMServer

    server = FeBiMServer(registry, policy=policy, seed=seed, max_rows=max_rows)
    try:
        server.deploy(deployment)
    except BaseException:
        server.close(drain=False)
        raise
    return server
