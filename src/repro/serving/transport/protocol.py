"""Versioned length-prefixed JSON wire protocol for the serving plane.

The cross-process placement layer (:mod:`repro.serving.cluster` front
end, :mod:`repro.serving.worker` hosts) speaks frames over a stream
socket.  Each frame is::

    !HHI header  = (magic 0x4642 "FB", wire version, body length)
    body         = UTF-8 strict JSON object with a "kind" field

Length-prefixing makes framing trivial and robust: a reader knows
exactly how many bytes the body occupies before parsing a single one,
a truncated stream is detected (EOF mid-frame raises
:class:`ProtocolError` instead of silently dropping the tail), and an
oversized or garbage header is rejected before any allocation.  The
version field is checked on every frame — a future incompatible change
bumps :data:`WIRE_VERSION` and old peers fail loudly with the version
they saw, never by misparsing bytes.

JSON is the body encoding because every payload that crosses the
boundary here is small control/result state (predictions, delays,
event details) — never bulk arrays; evidence levels are short integer
lists.  ``allow_nan=False`` keeps the wire strict JSON: NaN margins are
mapped to ``null`` explicitly before encoding.

Typed scheduler errors survive the boundary: :func:`encode_error` /
:func:`decode_error` rebuild :class:`~repro.serving.scheduler.Overloaded`
(with key/depth/lane) and :class:`~repro.backends.base.CapabilityError`
(with backend/capability) on the client side, so cluster callers catch
exactly the exceptions the in-process path raises.  Anything else
degrades to :class:`RemoteWorkerError` carrying the original type name.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.backends.base import CapabilityError
from repro.serving.scheduler import Overloaded

#: First two header bytes: "FB" (FeBiM).  A peer speaking anything else
#: (HTTP, TLS, line noise) fails on the first frame.
MAGIC = 0x4642

#: Protocol revision; bumped on any incompatible frame/body change.
WIRE_VERSION = 1

#: Frame header: (magic, version, body length), network byte order.
HEADER = struct.Struct("!HHI")

#: Upper bound on one frame's body.  Largest legitimate frame is a
#: batched event forward or a deployment spec — kilobytes; 8 MiB is a
#: generous ceiling that still rejects a corrupt length field before a
#: multi-gigabyte allocation.
MAX_FRAME = 8 * 1024 * 1024

#: Closed message taxonomy — same philosophy as the flight recorder's
#: EVENT_KINDS: a typo'd kind fails loudly at the emission site.
MESSAGE_KINDS = frozenset(
    {
        # session establishment (worker -> front end)
        "hello",
        # deployment control (front end -> worker, acked)
        "apply",
        "applied",
        "add_replica",
        "replica_added",
        "retire_replica",
        "replica_retired",
        # request plane
        "request",
        "result",
        "mirrored_result",
        "error",
        # supervision + observability (worker -> front end)
        "heartbeat",
        "event",
        # shutdown sequencing (front end -> worker, drain acked)
        "drain",
        "drained",
        "shutdown",
    }
)


class ProtocolError(RuntimeError):
    """A malformed, truncated, oversized or wrong-version frame."""


def make(kind: str, **fields) -> dict:
    """A message dict with a validated ``kind``."""
    if kind not in MESSAGE_KINDS:
        raise ProtocolError(
            f"unknown message kind {kind!r} "
            f"(taxonomy: {', '.join(sorted(MESSAGE_KINDS))})"
        )
    message = {"kind": kind}
    message.update(fields)
    return message


def encode_frame(message: dict) -> bytes:
    """One wire frame (header + JSON body) for ``message``."""
    kind = message.get("kind")
    if kind not in MESSAGE_KINDS:
        raise ProtocolError(f"refusing to encode unknown kind {kind!r}")
    body = json.dumps(message, allow_nan=False).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame body {len(body)} bytes exceeds MAX_FRAME {MAX_FRAME}"
        )
    return HEADER.pack(MAGIC, WIRE_VERSION, len(body)) + body


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    :meth:`feed` accepts whatever chunk the transport produced —
    half a header, three frames and a tail, anything — and returns the
    complete messages it unlocked.  :meth:`close` asserts the stream
    ended on a frame boundary; buffered partial bytes at EOF are a
    truncation and raise :class:`ProtocolError`.
    """

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[dict]:
        self._buffer.extend(data)
        messages: List[dict] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return messages
            magic, version, length = HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                raise ProtocolError(
                    f"bad frame magic 0x{magic:04x} (expected 0x{MAGIC:04x})"
                )
            if version != WIRE_VERSION:
                raise ProtocolError(
                    f"unsupported wire version {version} "
                    f"(this end speaks {WIRE_VERSION})"
                )
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"frame body {length} bytes exceeds MAX_FRAME {MAX_FRAME}"
                )
            if len(self._buffer) < HEADER.size + length:
                return messages
            body = bytes(self._buffer[HEADER.size:HEADER.size + length])
            del self._buffer[:HEADER.size + length]
            try:
                message = json.loads(body)
            except ValueError as exc:
                raise ProtocolError(f"frame body is not valid JSON: {exc}")
            if not isinstance(message, dict) or "kind" not in message:
                raise ProtocolError("frame body is not a keyed message object")
            if message["kind"] not in MESSAGE_KINDS:
                raise ProtocolError(
                    f"unknown message kind {message['kind']!r} on the wire"
                )
            messages.append(message)

    def close(self) -> None:
        if self._buffer:
            raise ProtocolError(
                f"stream truncated mid-frame ({len(self._buffer)} "
                "bytes buffered at EOF)"
            )


class MessageConnection:
    """Framed messages over a connected stream socket.

    ``send`` is serialised under a lock (results, heartbeats and event
    forwards leave a worker from different threads); ``recv`` is
    single-reader by convention (each end owns one reader thread).
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._decoder = FrameDecoder()
        self._ready: List[dict] = []
        self._closed = False

    def send(self, message: dict) -> None:
        frame = encode_frame(message)
        with self._send_lock:
            self._sock.sendall(frame)

    def recv(self) -> Optional[dict]:
        """The next message, or ``None`` on clean EOF.

        EOF while a partial frame is buffered raises
        :class:`ProtocolError` — the peer died mid-send.
        """
        while not self._ready:
            try:
                chunk = self._sock.recv(65536)
            except OSError:
                chunk = b""
            if not chunk:
                self._decoder.close()  # raises on a buffered partial frame
                return None
            self._ready.extend(self._decoder.feed(chunk))
        return self._ready.pop(0)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


# --------------------------------------------------------------------------
# typed payload codecs


class RemoteWorkerError(RuntimeError):
    """A worker-side failure with no richer typed mapping.

    ``exc_type`` preserves the original exception class name so logs
    and failover events stay diagnosable across the boundary.
    """

    def __init__(self, exc_type: str, message: str):
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type


def encode_error(exc: BaseException) -> dict:
    """The JSON payload for a worker-side exception."""
    if isinstance(exc, Overloaded):
        return {
            "type": "overloaded",
            "message": str(exc),
            "key": None if exc.key is None else str(exc.key),
            "depth": exc.depth,
            "lane": exc.lane,
        }
    if isinstance(exc, CapabilityError):
        return {
            "type": "capability",
            "backend": exc.backend,
            "capability": exc.capability,
            "message": str(exc),
        }
    return {
        "type": "runtime",
        "exc_type": type(exc).__name__,
        "message": str(exc),
    }


def decode_error(payload: dict) -> BaseException:
    """The client-side exception for an ``error`` payload."""
    etype = payload.get("type", "runtime")
    if etype == "overloaded":
        return Overloaded(
            payload.get("message", "overloaded"),
            key=payload.get("key"),
            depth=int(payload.get("depth", 0)),
            lane=int(payload.get("lane", 0)),
        )
    if etype == "capability":
        exc = CapabilityError.__new__(CapabilityError)
        RuntimeError.__init__(exc, payload.get("message", "capability error"))
        exc.backend = payload.get("backend", "?")
        exc.capability = payload.get("capability", "?")
        return exc
    return RemoteWorkerError(
        payload.get("exc_type", "RuntimeError"),
        payload.get("message", "remote worker failure"),
    )


@dataclass(frozen=True)
class RemoteServedResult:
    """A :class:`~repro.serving.scheduler.ServedResult` view that crossed
    the wire.

    Same reading surface (``prediction`` / ``delay`` / ``energy_total``
    / ``queue_wait_s`` / ``batch_size``) so cluster callers are
    drop-in; the shared batch report stayed in the worker — only the
    scalars this request owns travelled.  ``margin`` is the answer's
    winner/runner-up read margin (``None`` when degenerate), shipped so
    weighted mirror votes work across processes.
    """

    model: str
    prediction: int
    delay: float
    energy_total: float
    queue_wait_s: float
    batch_size: int
    margin: Optional[float] = None
    replica: str = ""
    worker: str = ""


def encode_result(result, margin: Optional[float] = None,
                  replica: str = "", worker: str = "") -> dict:
    """The ``result`` message body for a served request.

    Accepts a live :class:`ServedResult` or a :class:`RemoteServedResult`
    (margins default to the remote result's own when not overridden).
    """
    if margin is None:
        margin = getattr(result, "margin", None)
    if margin is not None and margin != margin:  # NaN -> null on the wire
        margin = None
    return {
        "model": result.model,
        "prediction": int(result.prediction),
        "delay": float(result.delay),
        "energy_total": float(result.energy_total),
        "queue_wait_s": float(result.queue_wait_s),
        "batch_size": int(result.batch_size),
        "margin": margin,
        "replica": replica or getattr(result, "replica", ""),
        "worker": worker or getattr(result, "worker", ""),
    }


def decode_result(payload: dict) -> RemoteServedResult:
    return RemoteServedResult(
        model=payload["model"],
        prediction=int(payload["prediction"]),
        delay=float(payload["delay"]),
        energy_total=float(payload["energy_total"]),
        queue_wait_s=float(payload["queue_wait_s"]),
        batch_size=int(payload["batch_size"]),
        margin=payload.get("margin"),
        replica=payload.get("replica", ""),
        worker=payload.get("worker", ""),
    )


def encode_mirrored(result) -> dict:
    """The ``mirrored_result`` body for a
    :class:`~repro.serving.router.MirroredResult`."""
    return {
        "model": result.model,
        "prediction": int(result.prediction),
        "votes": [[label, vote] for label, vote in result.votes],
        "agreement": float(result.agreement),
        "delay": float(result.delay),
        "energy_total": float(result.energy_total),
        "queue_wait_s": float(result.queue_wait_s),
        "batch_size": int(result.batch_size),
    }


def decode_mirrored(payload: dict):
    from repro.serving.router import MirroredResult

    return MirroredResult(
        model=payload["model"],
        prediction=int(payload["prediction"]),
        votes=tuple(
            (label, None if vote is None else int(vote))
            for label, vote in payload["votes"]
        ),
        agreement=float(payload["agreement"]),
        delay=float(payload["delay"]),
        energy_total=float(payload["energy_total"]),
        queue_wait_s=float(payload["queue_wait_s"]),
        batch_size=int(payload["batch_size"]),
    )
