"""Observability for the serving plane: traces, flight events, metrics.

Three complementary windows into a running :class:`~repro.serving.server.FeBiMServer`:

* **Request tracing** (:mod:`~repro.serving.observability.trace`) —
  sampled per-request :class:`Trace`/:class:`Span` decomposition of the
  admit → queue → execute → failover path, with modeled device delay
  and energy attached to the execute span.
* **Flight recorder** (:mod:`~repro.serving.observability.events`) —
  a bounded ring of typed transitions (shed, failover, heal-ladder
  rung, scale decision with its triggering snapshot) for post-incident
  forensics, dumpable as JSONL.
* **Metrics export** (:mod:`~repro.serving.observability.metrics`) —
  periodic delta time-series over telemetry snapshots, exportable as
  Prometheus text or JSONL.

All three are off by default and cost nearly nothing until armed; wire
them in with :meth:`FeBiMServer.enable_observability`, or construct an
:class:`Observability` bundle directly for workload harnesses.
"""

from repro.serving.observability.events import (
    EVENT_KINDS,
    RECORDER_CAPACITY,
    FlightEvent,
    FlightRecorder,
    format_events,
)
from repro.serving.observability.metrics import (
    METRICS_CAPACITY,
    MetricsPoint,
    MetricsRing,
    MetricsSampler,
    count_replicas,
    parse_prometheus,
    to_prometheus,
)
from repro.serving.observability.trace import (
    TRACE_CAPACITY,
    Span,
    Trace,
    Tracer,
    format_trace_dicts,
)


class Observability:
    """One tracer + one flight recorder + one metrics ring, as a unit.

    Convenience bundle so workloads and the CLI arm all three surfaces
    with one object: ``server.enable_observability(obs)`` threads the
    tracer into every scheduler, hangs the recorder off telemetry, and
    lets the maintenance/metrics cadence fill the ring.
    """

    def __init__(
        self,
        trace_rate: float = 0.0,
        trace_capacity: int = TRACE_CAPACITY,
        recorder_capacity: int = RECORDER_CAPACITY,
        metrics_capacity: int = METRICS_CAPACITY,
    ):
        self.tracer = Tracer(trace_rate, capacity=trace_capacity)
        self.recorder = FlightRecorder(capacity=recorder_capacity)
        self.metrics = MetricsRing(capacity=metrics_capacity)

    def __repr__(self) -> str:
        return (
            f"Observability(tracer={self.tracer!r}, "
            f"recorder={self.recorder!r}, metrics={self.metrics!r})"
        )


__all__ = [
    "EVENT_KINDS",
    "METRICS_CAPACITY",
    "RECORDER_CAPACITY",
    "TRACE_CAPACITY",
    "FlightEvent",
    "FlightRecorder",
    "MetricsPoint",
    "MetricsRing",
    "MetricsSampler",
    "Observability",
    "Span",
    "Trace",
    "Tracer",
    "count_replicas",
    "format_events",
    "format_trace_dicts",
    "parse_prometheus",
    "to_prometheus",
]
