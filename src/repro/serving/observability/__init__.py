"""Observability for the serving plane: traces, flight events, metrics.

Three complementary windows into a running :class:`~repro.serving.server.FeBiMServer`:

* **Request tracing** (:mod:`~repro.serving.observability.trace`) —
  sampled per-request :class:`Trace`/:class:`Span` decomposition of the
  admit → queue → execute → failover path, with modeled device delay
  and energy attached to the execute span.
* **Flight recorder** (:mod:`~repro.serving.observability.events`) —
  a bounded ring of typed transitions (shed, failover, heal-ladder
  rung, scale decision with its triggering snapshot) for post-incident
  forensics, dumpable as JSONL.
* **Metrics export** (:mod:`~repro.serving.observability.metrics`) —
  periodic delta time-series over telemetry snapshots, exportable as
  Prometheus text or JSONL.
* **Device-health ledger**
  (:class:`~repro.reliability.observability.DeviceHealthLedger`) — the
  hardware plane's timeline: per-replica wear, in-service age, spare
  inventory, BIST fault counts and read-margin statistics, sampled on
  the maintenance cadence.

All four are off by default and cost nearly nothing until armed; wire
them in with :meth:`FeBiMServer.enable_observability`, or construct an
:class:`Observability` bundle directly for workload harnesses.
"""

from repro.serving.observability.events import (
    EVENT_KINDS,
    RECORDER_CAPACITY,
    FlightEvent,
    FlightRecorder,
    format_events,
)
from repro.serving.observability.metrics import (
    METRICS_CAPACITY,
    MetricsPoint,
    MetricsRing,
    MetricsSampler,
    count_replicas,
    parse_prometheus,
    to_prometheus,
)
from repro.serving.observability.trace import (
    TRACE_CAPACITY,
    Span,
    Trace,
    Tracer,
    format_trace_dicts,
)
from repro.reliability.observability import (
    LEDGER_CAPACITY,
    DeviceHealthLedger,
    DeviceHealthSample,
    HardwareGauges,
    format_health_timeline,
)


class Observability:
    """One tracer + flight recorder + metrics ring + device-health
    ledger, as a unit.

    Convenience bundle so workloads and the CLI arm every surface with
    one object: ``server.enable_observability(obs)`` threads the tracer
    into every scheduler, hangs the recorder off telemetry, attaches
    the ledger to the router's hardware sampler, and lets the
    maintenance/metrics cadence fill the rings.
    """

    def __init__(
        self,
        trace_rate: float = 0.0,
        trace_capacity: int = TRACE_CAPACITY,
        recorder_capacity: int = RECORDER_CAPACITY,
        metrics_capacity: int = METRICS_CAPACITY,
        ledger_capacity: int = LEDGER_CAPACITY,
    ):
        self.tracer = Tracer(trace_rate, capacity=trace_capacity)
        self.recorder = FlightRecorder(capacity=recorder_capacity)
        self.metrics = MetricsRing(capacity=metrics_capacity)
        self.ledger = DeviceHealthLedger(capacity=ledger_capacity)

    def __repr__(self) -> str:
        return (
            f"Observability(tracer={self.tracer!r}, "
            f"recorder={self.recorder!r}, metrics={self.metrics!r}, "
            f"ledger={self.ledger!r})"
        )


__all__ = [
    "EVENT_KINDS",
    "LEDGER_CAPACITY",
    "METRICS_CAPACITY",
    "RECORDER_CAPACITY",
    "TRACE_CAPACITY",
    "DeviceHealthLedger",
    "DeviceHealthSample",
    "FlightEvent",
    "FlightRecorder",
    "HardwareGauges",
    "MetricsPoint",
    "MetricsRing",
    "MetricsSampler",
    "Observability",
    "Span",
    "Trace",
    "Tracer",
    "count_replicas",
    "format_events",
    "format_health_timeline",
    "format_trace_dicts",
    "parse_prometheus",
    "to_prometheus",
]
