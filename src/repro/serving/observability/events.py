"""Flight recorder: a bounded ring of typed serving-plane events.

The telemetry counters say *how many* requests were shed; after an
incident the question is *which, in what order, and why*.  The
:class:`FlightRecorder` answers it: every noteworthy transition in the
serving plane — a shed, a displacement, a failover hop, a canary
failure, a heal-ladder rung, a scale decision with the snapshot that
triggered it — is appended as a :class:`FlightEvent` with a monotonic
sequence number, so a JSONL dump replays the incident in causal order.

Events are emitted through
:meth:`repro.serving.telemetry.Telemetry.emit`, which is a single
``None`` check when no recorder is attached — the recorder costs
nothing until armed.  The ring is bounded (oldest events evicted), so a
long-lived server can leave it on permanently; capacity is the
retention window, not a leak.

The event taxonomy is **closed**: :meth:`FlightRecorder.record`
rejects kinds outside :data:`EVENT_KINDS`, so a typo at an emission
site fails loudly in tests instead of silently fragmenting the stream.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.utils.validation import check_positive_int

#: Default ring capacity.
RECORDER_CAPACITY = 4096

#: The closed event taxonomy (see ARCHITECTURE.md, observability layer).
EVENT_KINDS = frozenset(
    {
        # admission control (scheduler)
        "shed",  # arrival door-rejected: queue full, nothing cheaper queued
        "displacement",  # queued victim evicted to admit a higher lane
        "backpressure_block",  # a blocking submit actually waited for space
        # routing (router)
        "failover",  # one replica attempt failed; request resubmitted
        "replica_down",  # replica marked down after a confirmed failure
        # health (monitor / replica heal ladder)
        "canary_failure",  # a sweep found the engine off its baseline
        "refresh",  # rung 1: reprogram in place
        "replace",  # rung 2: fresh hardware, same stream seed
        "evict",  # rung 3: replica removed from routing for good
        # elasticity (autoscale controller / router)
        "scale_decision",  # evaluate() chose up/down, snapshot attached
        "scale_up",  # replica added (slot + wear recorded)
        "scale_down",  # replica retired
        "retire",  # router drained and removed a replica
        # hardware plane (margin probes / device-health ledger)
        "margin_warning",  # read margin collapsed, predictions still intact
        "drift_alarm",  # current-shift channel tripped with accuracy intact
        "bist_scan",  # maintenance verify scan found faulty cells
        "spare_repair",  # faulty rows remapped onto manufactured spares
        # cluster plane (worker supervision — see repro.serving.cluster)
        "worker_start",  # a worker process connected and said hello
        "worker_heartbeat",  # supervision sweep saw the worker alive
        "worker_lost",  # heartbeat/connection loss; replicas rescheduled
        "worker_respawn",  # a lost worker's replacement process came up
    }
)


@dataclass(frozen=True)
class FlightEvent:
    """One recorded transition.

    ``seq`` is a per-recorder monotonic counter — the causal order of
    the dump, immune to clock granularity; ``t_s`` is the
    ``time.monotonic()`` reading for interval arithmetic against other
    events and trace spans.
    """

    seq: int
    t_s: float
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"seq": self.seq, "t_s": self.t_s, "kind": self.kind,
                **self.detail}


class FlightRecorder:
    """Thread-safe bounded ring of :class:`FlightEvent`.

    Parameters
    ----------
    capacity:
        Events retained; the oldest fall off first.  Sequence numbers
        keep counting, so a dump makes eviction visible (the first
        retained ``seq`` is not 0).
    """

    def __init__(self, capacity: int = RECORDER_CAPACITY):
        check_positive_int(capacity, "capacity")
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0

    def record(self, kind: str, **detail) -> FlightEvent:
        """Append one event; raises ``ValueError`` on an unknown kind."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown flight-recorder event kind {kind!r} "
                f"(taxonomy: {', '.join(sorted(EVENT_KINDS))})"
            )
        now = time.monotonic()
        with self._lock:
            event = FlightEvent(self._seq, now, kind, detail)
            self._seq += 1
            self._events.append(event)
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # --------------------------------------------------------------- reading
    def events(
        self, kinds: Optional[Iterable[str]] = None
    ) -> List[FlightEvent]:
        """Retained events in causal order, optionally kind-filtered."""
        if kinds is not None:
            kinds = set(kinds)
            unknown = kinds - EVENT_KINDS
            if unknown:
                raise ValueError(
                    f"unknown event kinds: {', '.join(sorted(unknown))}"
                )
        with self._lock:
            snapshot = list(self._events)
        if kinds is None:
            return snapshot
        return [e for e in snapshot if e.kind in kinds]

    def to_jsonl(self, kinds: Optional[Iterable[str]] = None) -> str:
        """One strict-JSON object per event (post-incident dump)."""
        return "\n".join(
            json.dumps(e.to_dict(), allow_nan=False)
            for e in self.events(kinds)
        )

    def dump(self, path: str, kinds: Optional[Iterable[str]] = None) -> str:
        """Write :meth:`to_jsonl` to ``path``; returns the path."""
        with open(path, "w") as fh:
            text = self.to_jsonl(kinds)
            if text:
                fh.write(text + "\n")
        return path

    def clear(self) -> None:
        """Drop retained events (the sequence counter keeps running)."""
        with self._lock:
            self._events.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"FlightRecorder({len(self._events)} events retained, "
                f"seq={self._seq})"
            )


def format_events(events) -> str:
    """Human-readable event table (``febim events``).

    Accepts live :class:`FlightEvent` rows or their ``to_dict`` form —
    the CLI formats workload results after JSON round-tripping.
    """
    events = [
        e if isinstance(e, FlightEvent) else FlightEvent(
            seq=e["seq"],
            t_s=e["t_s"],
            kind=e["kind"],
            detail={
                k: v for k, v in e.items() if k not in ("seq", "t_s", "kind")
            },
        )
        for e in events
    ]
    if not events:
        return "flight recorder: no events"
    t0 = events[0].t_s
    lines = [f"flight recorder: {len(events)} events"]
    for event in events:
        detail = "  ".join(
            f"{k}={v}"
            for k, v in sorted(event.detail.items())
            if not isinstance(v, dict)
        )
        lines.append(
            f"  #{event.seq:<5d} +{event.t_s - t0:8.3f}s "
            f"{event.kind:<18s} {detail}".rstrip()
        )
    return "\n".join(lines)
