"""Request tracing: decompose one served request into its stages.

A :class:`Trace` is the story of one request told as a sequence of
:class:`Span` intervals — ``admit`` (admission control), ``queue``
(lane wait before its micro-batch launched), ``execute`` (the batched
backend read, with the modeled device delay and energy attached), plus
zero-duration ``failover`` markers for every replica hop.  Spans are
laid end to end, never nested, so the sum of span durations accounts
for the trace's whole wall-clock life — the invariant the
observability gate asserts (``benchmarks/bench_observability.py``).

Sampling is the :class:`Tracer`'s job and is deliberately boring:
**every Nth submit** (``N = round(1 / sample_rate)``) gets a trace, so
a traced run is reproducible and the untraced hot path pays exactly one
``None`` check.  With ``sample_rate=0`` (the default everywhere)
``sample()`` returns ``None`` before touching the lock — tracing costs
nothing until someone turns it on.

Traces land in a bounded ring at *creation* time, not completion: a
request that vanished mid-flight shows up as a trace with an open span,
which is precisely the kind of request a flight recorder dump gets
pulled for.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.utils.validation import check_positive_int

#: Default ring capacity for retained traces.
TRACE_CAPACITY = 256


class Span:
    """One timed stage of a traced request.

    ``start_s`` / ``end_s`` are ``time.monotonic()`` readings;
    ``attributes`` carries per-stage scalars (batch size, modeled device
    delay, energy).  A span with ``end_s is None`` is still open —
    every code path that opens a span must close it, shed and error
    paths included (asserted by the observability CI gate).
    """

    __slots__ = ("name", "start_s", "end_s", "attributes")

    def __init__(
        self,
        name: str,
        start_s: float,
        end_s: Optional[float] = None,
        attributes: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.start_s = float(start_s)
        self.end_s = None if end_s is None else float(end_s)
        self.attributes: Dict[str, object] = attributes or {}

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def end(self, end_s: Optional[float] = None, **attributes) -> "Span":
        """Close the span (idempotent) and fold in final attributes."""
        if self.end_s is None:
            self.end_s = time.monotonic() if end_s is None else float(end_s)
        if attributes:
            self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_ms": self.duration_s * 1e3,
            "closed": self.closed,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        state = f"{self.duration_s * 1e3:.3f} ms" if self.closed else "open"
        return f"Span({self.name!r}, {state})"


class Trace:
    """The spans of one sampled request, in submission order.

    Spans are appended from whichever thread currently owns the request
    (client thread for ``admit``, scheduler worker for ``queue`` /
    ``execute``, another worker for a failover resubmit), so appends
    take a small per-trace lock.  Stages never overlap in time — the
    request is in exactly one place at once — which keeps
    ``sum(span durations) ~= duration`` true even across failover hops.
    """

    __slots__ = ("trace_id", "route", "client", "created_s", "finished_s",
                 "outcome", "_spans", "_lock")

    def __init__(self, trace_id: int, route: str, client: Optional[str] = None):
        self.trace_id = int(trace_id)
        self.route = route
        self.client = client
        self.created_s = time.monotonic()
        self.finished_s: Optional[float] = None
        self.outcome: Optional[str] = None
        self._spans: List[Span] = []
        self._lock = threading.Lock()

    # ----------------------------------------------------------------- spans
    def span(
        self, name: str, start_s: Optional[float] = None, **attributes
    ) -> Span:
        """Open a span; the caller must :meth:`Span.end` it."""
        span = Span(
            name,
            time.monotonic() if start_s is None else start_s,
            attributes=attributes or None,
        )
        with self._lock:
            self._spans.append(span)
        return span

    def add_span(
        self, name: str, start_s: float, end_s: float, **attributes
    ) -> Span:
        """Append an already-closed span (e.g. a zero-width marker)."""
        span = Span(name, start_s, end_s=end_s, attributes=attributes or None)
        with self._lock:
            self._spans.append(span)
        return span

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def open_spans(self) -> List[Span]:
        """Spans not yet closed (must be empty after a drained run)."""
        return [s for s in self.spans if not s.closed]

    # -------------------------------------------------------------- lifecycle
    def finish(self, outcome: str = "served") -> "Trace":
        """Mark the request resolved (idempotent; first outcome wins)."""
        if self.finished_s is None:
            self.finished_s = time.monotonic()
            self.outcome = outcome
        return self

    @property
    def finished(self) -> bool:
        return self.finished_s is not None

    @property
    def duration_s(self) -> float:
        """Creation -> finish wall clock (0.0 while in flight)."""
        if self.finished_s is None:
            return 0.0
        return self.finished_s - self.created_s

    def span_total_s(self) -> float:
        """Sum of closed span durations — the accounted-for time."""
        return sum(s.duration_s for s in self.spans)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "route": self.route,
            "client": self.client,
            "outcome": self.outcome,
            "duration_ms": self.duration_s * 1e3,
            "span_total_ms": self.span_total_s() * 1e3,
            "finished": self.finished,
            "spans": [s.to_dict() for s in self.spans],
        }

    def format_lines(self) -> str:
        """Human-readable one-trace report (``febim trace``)."""
        head = (
            f"trace {self.trace_id} {self.route}"
            + (f" client={self.client}" if self.client else "")
            + f"  {self.duration_s * 1e3:.3f} ms -> {self.outcome or 'in flight'}"
        )
        lines = [head]
        for span in self.spans:
            attrs = "  ".join(
                f"{k}={_fmt_attr(v)}" for k, v in sorted(span.attributes.items())
            )
            state = (
                f"{span.duration_s * 1e3:9.3f} ms" if span.closed else "     open"
            )
            lines.append(f"  {span.name:<12s} {state}  {attrs}".rstrip())
        return "\n".join(lines)


def _fmt_attr(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_trace_dicts(traces) -> str:
    """Render serialised traces (:meth:`Trace.to_dict` rows) for
    ``febim trace`` — the CLI sees workload results after JSON
    round-tripping, so it formats dicts, not live objects."""
    traces = list(traces)
    if not traces:
        return "tracer: no traces sampled"
    lines = []
    for trace in traces:
        head = (
            f"trace {trace['trace_id']} {trace['route']}"
            + (f" client={trace['client']}" if trace.get("client") else "")
            + f"  {trace['duration_ms']:.3f} ms -> "
            + (trace["outcome"] or "in flight")
        )
        lines.append(head)
        for span in trace["spans"]:
            attrs = "  ".join(
                f"{k}={_fmt_attr(v)}"
                for k, v in sorted(span["attributes"].items())
            )
            state = (
                f"{span['duration_ms']:9.3f} ms"
                if span["closed"]
                else "     open"
            )
            lines.append(f"  {span['name']:<12s} {state}  {attrs}".rstrip())
    return "\n".join(lines)


class Tracer:
    """Deterministic every-Nth request sampler with a bounded trace ring.

    Parameters
    ----------
    sample_rate:
        Fraction of submits to trace, in ``[0, 1]``.  ``0`` disables
        sampling entirely (the hot path sees a single early return);
        any positive rate traces every ``round(1 / rate)``-th submit —
        deterministic, so benchmark runs are reproducible.
    capacity:
        Ring size for retained traces (oldest evicted first).
    """

    def __init__(
        self, sample_rate: float = 0.0, capacity: int = TRACE_CAPACITY
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must lie in [0, 1], got {sample_rate}"
            )
        check_positive_int(capacity, "capacity")
        self.sample_rate = float(sample_rate)
        self._period = 0 if sample_rate <= 0 else max(1, round(1.0 / sample_rate))
        self._counter = itertools.count()
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=capacity)

    @property
    def enabled(self) -> bool:
        return self._period > 0

    def sample(self, route: str, client: Optional[str] = None) -> Optional[Trace]:
        """A new :class:`Trace` for this submit, or ``None`` (unsampled).

        The disabled check comes first and touches no shared state:
        with ``sample_rate=0`` tracing is one comparison per request.
        """
        if self._period == 0:
            return None
        if next(self._counter) % self._period:
            return None
        trace = Trace(next(self._ids), route, client=client)
        with self._lock:
            self._traces.append(trace)
        return trace

    # --------------------------------------------------------------- reading
    def traces(self) -> List[Trace]:
        """Retained traces, oldest first (finished or not)."""
        with self._lock:
            return list(self._traces)

    def finished(self) -> List[Trace]:
        return [t for t in self.traces() if t.finished]

    def to_jsonl(self) -> str:
        """One JSON object per retained trace (post-incident dump)."""
        return "\n".join(json.dumps(t.to_dict()) for t in self.traces())

    def dump(self, path: str) -> str:
        """Write :meth:`to_jsonl` to ``path``; returns the path."""
        with open(path, "w") as fh:
            text = self.to_jsonl()
            if text:
                fh.write(text + "\n")
        return path

    def __repr__(self) -> str:
        return (
            f"Tracer(rate={self.sample_rate:g}, "
            f"{len(self.traces())} traces retained)"
        )
