"""Metrics export: snapshot history ring, Prometheus text, JSONL.

:class:`~repro.serving.telemetry.Telemetry` counters are since-boot
totals — good for invariants, useless for "what did p95 do during the
spike".  :class:`MetricsRing` closes that gap: each :meth:`sample`
folds the current :class:`~repro.serving.telemetry.TelemetrySnapshot`
into a :class:`MetricsPoint` carrying the **deltas** since the previous
sample (completed/s, shed/s) next to the instantaneous gauges (p50/p95,
occupancy, lane depth, replica count), so the ring is a genuine
time-series a dashboard — or the autoscale post-mortem in SERVING.md —
can plot.

Two export formats:

* :func:`to_prometheus` renders one snapshot in the Prometheus text
  exposition format (``febim_*`` counters and gauges with ``# TYPE``
  headers), the pull-scrape integration point;
* :meth:`MetricsRing.to_jsonl` dumps the ring as strict JSONL (NaN-free
  — pre-first-completion percentiles serialise as ``null``), the
  ``--metrics-out`` file format.

:func:`parse_prometheus` is the matching minimal parser — the CI
observability gate round-trips the exporter through it so a formatting
regression cannot ship.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serving.telemetry import TelemetrySnapshot
from repro.utils.validation import check_positive, check_positive_int

#: Default history ring capacity.
METRICS_CAPACITY = 512


def _or_none(value: float) -> Optional[float]:
    """NaN-safe gauge: strict JSON has no NaN, so absent is ``null``."""
    return None if value != value else float(value)


@dataclass(frozen=True)
class MetricsPoint:
    """One periodic sample: deltas since the previous point + gauges."""

    t_s: float
    interval_s: float
    submitted: int  # delta
    completed: int  # delta
    shed: int  # delta
    failed: int  # delta
    completed_per_s: float
    shed_per_s: float
    p50_ms: Optional[float]
    p95_ms: Optional[float]
    occupancy: float
    in_flight: int
    queue_depth: int  # total across lanes, at sample time
    lane_depth: Dict[int, int] = field(default_factory=dict)
    replicas: Optional[int] = None
    # Heal-ladder deltas: a heal storm (a canary failing every sweep,
    # refreshes escalating to replacements) must show on a scraper's
    # rate() graphs, not only in the since-boot counters.
    canary_failures: int = 0  # delta
    refreshes: int = 0  # delta
    replacements: int = 0  # delta
    replica_evictions: int = 0  # delta
    maintenance_sweeps: int = 0  # delta
    # Hardware-plane gauges (``HardwareGauges.to_dict`` shape) sampled
    # from the device-health ledger; ``None`` when no replica reported.
    hardware: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "interval_s": self.interval_s,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "completed_per_s": self.completed_per_s,
            "shed_per_s": self.shed_per_s,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "occupancy": self.occupancy,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "lane_depth": {str(k): v for k, v in sorted(self.lane_depth.items())},
            "replicas": self.replicas,
            "canary_failures": self.canary_failures,
            "refreshes": self.refreshes,
            "replacements": self.replacements,
            "replica_evictions": self.replica_evictions,
            "maintenance_sweeps": self.maintenance_sweeps,
            "hardware": self.hardware,
        }


class MetricsRing:
    """Bounded time-series of telemetry deltas.

    Thread-safe; one writer (the sampler cadence) is the expected
    shape, but concurrent :meth:`sample` calls only ever race over
    which of two near-identical points lands first.
    """

    def __init__(self, capacity: int = METRICS_CAPACITY):
        check_positive_int(capacity, "capacity")
        self._lock = threading.Lock()
        self._points: deque = deque(maxlen=capacity)
        self._last: Optional[TelemetrySnapshot] = None
        self._last_t: Optional[float] = None

    def sample(
        self,
        snapshot: TelemetrySnapshot,
        replicas: Optional[int] = None,
        t_s: Optional[float] = None,
        hardware: Optional[dict] = None,
    ) -> MetricsPoint:
        """Fold one snapshot into the ring; returns the new point.

        The first sample's deltas are measured against zero (a fresh
        server) with ``interval_s = 0`` — rate gauges read 0 there
        rather than inventing a rate from an unknown window.
        ``hardware`` attaches the device-health gauges sampled
        alongside this snapshot (a ``HardwareGauges.to_dict`` dict).
        """
        now = time.monotonic() if t_s is None else float(t_s)
        if hardware is not None and hasattr(hardware, "to_dict"):
            hardware = hardware.to_dict()
        with self._lock:
            prev, prev_t = self._last, self._last_t
            interval = 0.0 if prev_t is None else max(now - prev_t, 0.0)
            d_submitted = snapshot.submitted - (prev.submitted if prev else 0)
            d_completed = snapshot.completed - (prev.completed if prev else 0)
            d_shed = snapshot.shed_requests - (prev.shed_requests if prev else 0)
            d_failed = snapshot.failed - (prev.failed if prev else 0)
            point = MetricsPoint(
                t_s=now,
                interval_s=interval,
                submitted=d_submitted,
                completed=d_completed,
                shed=d_shed,
                failed=d_failed,
                completed_per_s=d_completed / interval if interval > 0 else 0.0,
                shed_per_s=d_shed / interval if interval > 0 else 0.0,
                p50_ms=_or_none(snapshot.p50_latency_s * 1e3),
                p95_ms=_or_none(snapshot.p95_latency_s * 1e3),
                occupancy=float(snapshot.occupancy),
                in_flight=snapshot.in_flight,
                queue_depth=sum(snapshot.lane_depth.values()),
                lane_depth=dict(snapshot.lane_depth),
                replicas=replicas,
                canary_failures=snapshot.canary_failures
                - (prev.canary_failures if prev else 0),
                refreshes=snapshot.refreshes - (prev.refreshes if prev else 0),
                replacements=snapshot.replacements
                - (prev.replacements if prev else 0),
                replica_evictions=snapshot.replica_evictions
                - (prev.replica_evictions if prev else 0),
                maintenance_sweeps=snapshot.maintenance_sweeps
                - (prev.maintenance_sweeps if prev else 0),
                hardware=hardware,
            )
            self._points.append(point)
            self._last, self._last_t = snapshot, now
        return point

    def points(self) -> List[MetricsPoint]:
        with self._lock:
            return list(self._points)

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def to_jsonl(self) -> str:
        """Strict JSONL (one point per line; NaN-free by construction)."""
        return "\n".join(
            json.dumps(p.to_dict(), allow_nan=False) for p in self.points()
        )

    def dump(self, path: str) -> str:
        """Write :meth:`to_jsonl` to ``path``; returns the path."""
        with open(path, "w") as fh:
            text = self.to_jsonl()
            if text:
                fh.write(text + "\n")
        return path

    def __repr__(self) -> str:
        return f"MetricsRing({len(self)} points)"


class MetricsSampler:
    """Daemon thread sampling a server's telemetry on a fixed period.

    The workload-facing way to fill a :class:`MetricsRing` while
    traffic runs (the maintenance thread also samples when observability
    is enabled — this sampler is for runs without maintenance, e.g. the
    plain serving workload).  ``stop()`` takes a final sample so the
    post-drain steady state always closes the series.
    """

    def __init__(self, ring: MetricsRing, server, period_s: float):
        check_positive(period_s, "period_s")
        self.ring = ring
        self.server = server
        self.period_s = float(period_s)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="febim-metrics", daemon=True
        )
        self._thread.start()

    def _sample(self) -> None:
        self.ring.sample(
            self.server.stats(), replicas=count_replicas(self.server)
        )

    def _run(self) -> None:
        while not self._stop.wait(self.period_s):
            try:
                self._sample()
            except Exception:  # noqa: BLE001 — sampling must not kill serving
                pass

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Final sample + join; idempotent."""
        if not self._stop.is_set():
            self._stop.set()
            try:
                self._sample()
            except Exception:  # noqa: BLE001
                pass
        self._thread.join(timeout)
        return not self._thread.is_alive()


def count_replicas(server) -> int:
    """Serviceable replicas across all deployments (legacy path = 1)."""
    router = getattr(server, "router", None)
    if router is None:
        return 1
    total = 0
    for name in router.deployments():
        try:
            statuses = router.status(name)
        except KeyError:  # undeployed between listing and status
            continue
        total += sum(1 for s in statuses if s.state in ("healthy", "down"))
    return max(total, 1)


# ------------------------------------------------------------------ prometheus
def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def to_prometheus(
    snapshot: TelemetrySnapshot,
    replicas: Optional[int] = None,
    hardware: Optional[dict] = None,
) -> str:
    """Render one snapshot in the Prometheus text exposition format.

    Counters get ``_total`` names; gauges that are undefined before the
    first completion (the latency percentiles) are *omitted* rather
    than exported as NaN — an absent series is how Prometheus models
    "no data yet".  ``hardware`` (a
    :meth:`~repro.reliability.observability.HardwareGauges.to_dict`
    dict, or the gauges object itself) appends the device-health
    gauges: worst-replica read margin and signal ratio, wear, spare
    inventory and BIST fault count, plus per-replica labelled series.
    """
    lines: List[str] = []

    def counter(name: str, value) -> None:
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {int(value)}")

    def gauge(name: str, value, labels: str = "") -> None:
        if value is None or float(value) != float(value):  # absent / NaN
            return
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{labels} {float(value):g}")

    counter("febim_submitted_total", snapshot.submitted)
    counter("febim_completed_total", snapshot.completed)
    counter("febim_failed_total", snapshot.failed)
    counter("febim_cancelled_total", snapshot.cancelled)
    counter("febim_shed_total", snapshot.shed_requests)
    counter("febim_batches_total", snapshot.batches)
    counter("febim_failovers_total", snapshot.failovers)
    counter("febim_replica_evictions_total", snapshot.replica_evictions)
    counter("febim_scale_ups_total", snapshot.scale_ups)
    counter("febim_scale_downs_total", snapshot.scale_downs)
    counter("febim_health_checks_total", snapshot.health_checks)
    counter("febim_canary_failures_total", snapshot.canary_failures)
    counter("febim_refreshes_total", snapshot.refreshes)
    counter("febim_replacements_total", snapshot.replacements)
    counter("febim_maintenance_sweeps_total", snapshot.maintenance_sweeps)
    gauge("febim_occupancy", snapshot.occupancy)
    gauge("febim_in_flight", snapshot.in_flight)
    if snapshot.p50_latency_s == snapshot.p50_latency_s:  # not NaN
        gauge("febim_latency_p50_seconds", snapshot.p50_latency_s)
        gauge("febim_latency_p95_seconds", snapshot.p95_latency_s)
    if replicas is not None:
        gauge("febim_replicas", replicas)
    if snapshot.lane_depth:
        lines.append("# TYPE febim_lane_depth gauge")
        for lane, depth in sorted(snapshot.lane_depth.items()):
            lines.append(f'febim_lane_depth{{lane="{lane}"}} {depth}')
    if snapshot.per_replica:
        lines.append("# TYPE febim_replica_served_total counter")
        for replica, served in sorted(snapshot.per_replica.items()):
            lines.append(
                f'febim_replica_served_total'
                f'{{replica="{_escape_label(replica)}"}} {served}'
            )
    if hardware is not None:
        if hasattr(hardware, "to_dict"):
            hardware = hardware.to_dict()
        gauge("febim_margin_p5", hardware.get("margin_p5"))
        gauge("febim_margin_p50", hardware.get("margin_p50"))
        gauge("febim_signal_ratio", hardware.get("signal_ratio"))
        gauge("febim_wear_fraction", hardware.get("wear_fraction"))
        gauge("febim_spares_free", hardware.get("spares_free"))
        gauge("febim_faulty_cells", hardware.get("faulty_cells"))
        per_replica = hardware.get("per_replica") or {}
        for family in ("signal_ratio", "wear_fraction", "margin_p50"):
            rows = [
                (label, row[family])
                for label, row in sorted(per_replica.items())
                if row.get(family) is not None
                and float(row[family]) == float(row[family])
            ]
            if rows:
                lines.append(f"# TYPE febim_replica_{family} gauge")
                for label, value in rows:
                    lines.append(
                        f'febim_replica_{family}'
                        f'{{replica="{_escape_label(label)}"}} '
                        f"{float(value):g}"
                    )
    return "\n".join(lines) + "\n"


#: One exposition line: ``name{labels} value`` (labels optional).
_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf|NaN))$"
)


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{name{labels}: value}``.

    A deliberately strict reader of the subset :func:`to_prometheus`
    emits: every non-comment line must match the ``name{labels} value``
    shape, every ``# TYPE`` must name a known type, and NaN values are
    rejected (an exported NaN is exactly the bug this parser exists to
    catch).  Raises ``ValueError`` on the first malformed line.
    """
    series: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(
                        f"line {lineno}: malformed TYPE comment: {line!r}"
                    )
            continue
        match = _PROM_LINE.match(line)
        if match is None:
            raise ValueError(
                f"line {lineno}: not a metric sample: {line!r}"
            )
        if match["value"] == "NaN":
            raise ValueError(f"line {lineno}: NaN sample exported: {line!r}")
        key = match["name"] + (match["labels"] or "")
        series[key] = float(match["value"])
    return series
