"""SLO-driven autoscaling: close the loop the telemetry left open.

The router probes per-replica unit cost and live queue depth, telemetry
tracks p50/p95 latency and shed counts, and deployments are declarative
— this module is the controller that reads those signals and *acts*:
an :class:`AutoscaleController` runs on the server's maintenance
cadence (or is stepped manually in tests), compares the deployment's
live pressure against its :class:`~repro.serving.deployment.SLOPolicy`,
and grows or shrinks the replica set through the router's
``add_replica`` / ``retire_replica`` machinery.

Scaling is wear-aware.  A :class:`HardwarePool` models the spare array
slots a scale-up can draw from, each carrying a persistent
:class:`~repro.reliability.faults.WearState` ledger (crossbar-less —
pure cycle bookkeeping, the live template is never touched) and an
:class:`~repro.reliability.faults.AgeClock`; the controller always
places a new replica on the **least-worn** free slot, and wear
accumulated while a slot served survives its release — scaling
decisions manage hardware lifetime, not just latency.

Decision rules (deliberately simple, deliberately inspectable):

* **Scale up** when the deployment is shedding (``shed_requests``
  grew since the last step), a serviceable queue is at its admission
  bound, or p95 latency exceeds ``target_p95_ms`` — bounded by
  ``max_replicas`` and the pool's free slots.
* **Scale down** when the deployment has been fully idle (zero queued)
  for ``scale_down_patience`` consecutive steps above
  ``min_replicas``.  Latency is *not* a scale-down signal: the p95
  window is sticky after a spike, and draining capacity because old
  samples look calm would flap.
* After any action the controller holds for ``cooldown_steps`` steps
  so a replica's effect is observed before the next decision.

Every decision lands in :attr:`AutoscaleController.history` as an
:class:`AutoscaleEvent` — the benchmark's audit trail for "the spike
was absorbed by a scale-up onto the least-worn slot".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.reliability.faults import AgeClock, WearState
from repro.serving.deployment import DeploymentError, ReplicaSpec, SLOPolicy
from repro.serving.health import DeploymentPressure, measure_pressure


@dataclass
class HardwareSlot:
    """One spare physical array slot a scale-up can program.

    Attributes
    ----------
    spec:
        The :class:`~repro.serving.deployment.ReplicaSpec` a replica
        placed here serves with.
    label:
        Operator-facing slot name (rack position, die id, ...).
    wear:
        Persistent cycle ledger; survives acquire/release so a slot
        that served through ten spikes ranks worse than a fresh one.
    age:
        Bake-time ledger for the slot's retention bookkeeping.
    replica_index:
        Index of the replica currently on this slot (``None`` = free).
    """

    spec: ReplicaSpec
    label: str = ""
    wear: WearState = field(default_factory=WearState)
    age: AgeClock = field(default_factory=AgeClock)
    replica_index: Optional[int] = None

    @property
    def free(self) -> bool:
        return self.replica_index is None


class HardwarePool:
    """The spare slots one deployment's autoscaler may draw from.

    Construction accepts ready slots, bare specs, or ``(spec, cycles)``
    pre-worn pairs — the latter seed each slot's ledger with the cycles
    its hardware has already lived through.
    """

    def __init__(self, slots):
        self.slots: List[HardwareSlot] = []
        for i, entry in enumerate(slots):
            if isinstance(entry, HardwareSlot):
                slot = entry
            elif isinstance(entry, ReplicaSpec):
                slot = HardwareSlot(spec=entry)
            else:
                spec, cycles = entry
                slot = HardwareSlot(spec=spec, wear=WearState(cycles=cycles))
            if not slot.label:
                slot.label = f"slot{i}"
            self.slots.append(slot)

    def __len__(self) -> int:
        return len(self.slots)

    def free_slots(self) -> List[HardwareSlot]:
        return [s for s in self.slots if s.free]

    def least_worn(self) -> Optional[HardwareSlot]:
        """The free slot with the most remaining lifetime, or ``None``.

        Ties break on pool order so placement is deterministic.
        """
        free = self.free_slots()
        if not free:
            return None
        return min(free, key=lambda s: (s.wear.fraction_used, s.label))

    def acquire(self, slot: HardwareSlot, replica_index: int) -> HardwareSlot:
        if not slot.free:
            raise DeploymentError(
                f"slot {slot.label!r} already serves replica "
                f"{slot.replica_index}"
            )
        slot.replica_index = int(replica_index)
        return slot

    def release(self, replica_index: int) -> Optional[HardwareSlot]:
        """Free the slot serving ``replica_index`` (wear persists)."""
        for slot in self.slots:
            if slot.replica_index == replica_index:
                slot.replica_index = None
                return slot
        return None


@dataclass(frozen=True)
class ScaleDecision:
    """What the controller wants to do, and why (the explainable half —
    :meth:`AutoscaleController.evaluate` returns one before any router
    call happens)."""

    action: str  # "up" | "down" | "hold"
    reason: str


@dataclass(frozen=True)
class AutoscaleEvent:
    """One acted-on decision in the controller's history."""

    step: int
    action: str  # "up" | "down" | "hold"
    reason: str
    replica: Optional[str] = None
    slot: Optional[str] = None
    wear_fraction: float = 0.0

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "action": self.action,
            "reason": self.reason,
            "replica": self.replica,
            "slot": self.slot,
            "wear_fraction": self.wear_fraction,
        }


class AutoscaleController:
    """Per-deployment feedback controller over the router's replica set.

    Parameters
    ----------
    server:
        The :class:`~repro.serving.server.FeBiMServer` whose router,
        telemetry and deployment table the controller acts on.
    model:
        Deployment (model name) under control; its applied spec must
        carry an :class:`~repro.serving.deployment.SLOPolicy`.
    pool:
        Spare hardware for scale-ups; ``None`` means scale-ups reuse
        the deployment's first replica spec on anonymous hardware
        (fresh ledger per placement).
    scale_down_patience:
        Consecutive fully-idle steps required before a scale-down.
    cooldown_steps:
        Steps to hold after any scale action.

    The controller is deliberately split into a pure decision half
    (:meth:`evaluate` — synthetic snapshots/statuses in, decision out,
    no wall clock, no router) and an acting half (:meth:`step`) so
    tests exercise the policy without serving a single request.
    """

    def __init__(
        self,
        server,
        model: str,
        pool: Optional[HardwarePool] = None,
        scale_down_patience: int = 3,
        cooldown_steps: int = 1,
    ):
        dep = server.router.deployment_for(model)
        if dep is None:
            raise KeyError(f"no deployment for model {model!r}")
        if dep.spec.slo is None:
            raise DeploymentError(
                f"deployment {model!r} has no slo block; nothing to control"
            )
        if scale_down_patience < 1:
            raise ValueError(
                f"scale_down_patience must be >= 1, got {scale_down_patience}"
            )
        if cooldown_steps < 0:
            raise ValueError(
                f"cooldown_steps must be >= 0, got {cooldown_steps}"
            )
        self.server = server
        self.model = model
        self.pool = pool
        self.scale_down_patience = int(scale_down_patience)
        self.cooldown_steps = int(cooldown_steps)
        self.history: List[AutoscaleEvent] = []
        self._step = 0
        self._calm_steps = 0
        self._cooldown = 0
        # Sheds before this controller existed are not its problem:
        # scale on the *delta* since the last step, not the lifetime
        # counter.
        self._last_shed = server.telemetry.snapshot().shed_requests

    @property
    def slo(self) -> SLOPolicy:
        dep = self.server.router.deployment_for(self.model)
        if dep is None or dep.spec.slo is None:
            raise KeyError(
                f"deployment {self.model!r} is gone (or lost its slo)"
            )
        return dep.spec.slo

    # ------------------------------------------------------------- decisions
    def evaluate(self, snapshot, statuses) -> ScaleDecision:
        """Pure decision step: pressure + telemetry in, decision out.

        Mutates only the controller's own bookkeeping (shed watermark,
        calm streak, cooldown) — never the router.  ``snapshot`` is a
        :class:`~repro.serving.telemetry.TelemetrySnapshot`;
        ``statuses`` any rows :func:`~repro.serving.health.
        measure_pressure` accepts.
        """
        self._step += 1
        slo = self.slo
        pressure: DeploymentPressure = measure_pressure(statuses)
        shed_delta = snapshot.shed_requests - self._last_shed
        self._last_shed = snapshot.shed_requests

        if pressure.queued == 0 and shed_delta == 0:
            self._calm_steps += 1
        else:
            self._calm_steps = 0

        if self._cooldown > 0:
            self._cooldown -= 1
            return ScaleDecision("hold", "cooling down after a scale action")

        n = pressure.serviceable
        if n < slo.min_replicas:
            return ScaleDecision(
                "up", f"below min_replicas ({n} < {slo.min_replicas})"
            )

        # --- scale up: shedding, a saturated queue, or a missed p95.
        if n < slo.max_replicas:
            if shed_delta > 0:
                return ScaleDecision(
                    "up", f"shed {shed_delta} requests since last step"
                )
            if (
                slo.max_queue_depth is not None
                and pressure.deepest >= slo.max_queue_depth
            ):
                return ScaleDecision(
                    "up",
                    f"deepest queue at admission bound "
                    f"({pressure.deepest}/{slo.max_queue_depth})",
                )
            if (
                slo.target_p95_ms is not None
                and snapshot.p95_latency_s * 1e3 > slo.target_p95_ms
                and pressure.queued > 0
            ):
                # Latency is a scale-up-only signal, and only while
                # traffic is actually queued: the percentile window is
                # sticky after a burst.
                return ScaleDecision(
                    "up",
                    f"p95 {snapshot.p95_latency_s * 1e3:.1f} ms over "
                    f"target {slo.target_p95_ms:g} ms",
                )

        # --- scale down: sustained calm above the floor.
        if n > slo.min_replicas and self._calm_steps >= self.scale_down_patience:
            return ScaleDecision(
                "down",
                f"idle for {self._calm_steps} consecutive steps",
            )

        return ScaleDecision("hold", "within slo")

    # ---------------------------------------------------------------- acting
    def step(self) -> AutoscaleEvent:
        """One full control step: observe, decide, act, record."""
        router = self.server.router
        statuses = router.status(self.model)
        snapshot = self.server.telemetry.snapshot()
        decision = self.evaluate(snapshot, statuses)
        if decision.action != "hold":
            # The triggering snapshot rides along: a post-incident dump
            # must show *why* the controller moved, not just that it
            # did.  Holds are not recorded — every maintenance sweep
            # evaluates, and a ring of holds would drown the signal.
            self.server.telemetry.emit(
                "scale_decision",
                model=self.model,
                action=decision.action,
                reason=decision.reason,
                snapshot=snapshot.to_dict(),
            )
        event = AutoscaleEvent(self._step, decision.action, decision.reason)
        if decision.action == "up":
            event = self._scale_up(decision)
        elif decision.action == "down":
            event = self._scale_down(decision, statuses)
        self.history.append(event)
        return event

    def _scale_up(self, decision: ScaleDecision) -> AutoscaleEvent:
        router = self.server.router
        if self.pool is not None:
            slot = self.pool.least_worn()
            if slot is None:
                return AutoscaleEvent(
                    self._step,
                    "hold",
                    f"wanted up ({decision.reason}) but the pool is "
                    f"exhausted",
                )
            status = router.add_replica(self.model, slot.spec, wear=slot.wear)
            self.pool.acquire(slot, status.index)
            slot_label = slot.label
        else:
            dep = router.deployment_for(self.model)
            status = router.add_replica(self.model, dep.spec.replicas[0])
            slot_label = None
        self.server.telemetry.record_scale_up()
        self.server.telemetry.emit(
            "scale_up",
            model=self.model,
            replica=status.replica,
            slot=slot_label,
            wear_fraction=status.wear_fraction,
            reason=decision.reason,
        )
        self._cooldown = self.cooldown_steps
        return AutoscaleEvent(
            self._step,
            "up",
            decision.reason,
            replica=status.replica,
            slot=slot_label,
            wear_fraction=status.wear_fraction,
        )

    def _scale_down(self, decision: ScaleDecision, statuses) -> AutoscaleEvent:
        router = self.server.router
        serviceable = [s for s in statuses if s.state in ("healthy", "down")]
        if len(serviceable) <= 1:
            return AutoscaleEvent(
                self._step, "hold", "refusing to retire the last replica"
            )
        # Retire the newest replica first (LIFO): the spec-declared
        # floor replicas keep their sticky clients and cache entries.
        victim = max(serviceable, key=lambda s: s.index)
        status = router.retire_replica(self.model, victim.index)
        slot_label = None
        if self.pool is not None:
            released = self.pool.release(victim.index)
            if released is not None:
                slot_label = released.label
        self.server.telemetry.record_scale_down()
        self.server.telemetry.emit(
            "scale_down",
            model=self.model,
            replica=status.replica,
            slot=slot_label,
            reason=decision.reason,
        )
        self._cooldown = self.cooldown_steps
        self._calm_steps = 0
        return AutoscaleEvent(
            self._step,
            "down",
            decision.reason,
            replica=status.replica,
            slot=slot_label,
            wear_fraction=status.wear_fraction,
        )
