"""Online serving: model registry, micro-batching scheduler, server.

The offline core (:meth:`~repro.core.engine.FeBiMEngine.infer_batch`)
is fast only when fed dense batches; a live deployment receives a
stream of independent single-sample requests.  This package bridges the
two:

* :class:`ModelRegistry` — named, versioned model persistence (plain
  JSON via :mod:`repro.io`) with an LRU cache of programmed engines;
* :class:`MicroBatchScheduler` — a thread-safe queue that coalesces
  pending requests per model into batched crossbar reads under a
  ``max_batch`` / ``max_wait_ms`` policy, resolving per-request futures;
* :class:`FeBiMServer` — the multi-tenant front end: routing,
  independent per-model RNG streams, telemetry, graceful drain, and
  scheduled background health sweeps
  (:meth:`~repro.serving.server.FeBiMServer.enable_maintenance` /
  :class:`MaintenanceThread`);
* :class:`Deployment` / :class:`ReplicaSpec` / :class:`RoutingPolicy` —
  the declarative tenancy model: one model served by N replica arrays
  (each on its own backend technology) behind a routing policy;
  JSON-serialisable through :mod:`repro.io`, capability-validated
  before any array is programmed;
* :class:`Router` — per-request arbitration across a deployment's
  replicas (``cost`` / ``round_robin`` / ``sticky`` / ``mirror``
  majority voting), one micro-batch queue per replica, transparent
  failover, and the replica heal ladder
  (refresh -> replace -> evict);
* :class:`HealthMonitor` — canary health checks over the served
  engines with an automatic refresh -> replace repair ladder (the
  serving face of :mod:`repro.reliability`);
* :class:`SLOPolicy` / :class:`AutoscaleController` /
  :class:`HardwarePool` — the closed loop: bounded per-replica queues
  with typed :class:`Overloaded` load-shed, priority lanes and
  optional backpressure, and a controller on the maintenance cadence
  that grows/shrinks the replica set against the SLO, placing new
  replicas on the least-worn spare hardware
  (:mod:`repro.serving.autoscale`);
* :class:`PlacementSpec` / :func:`serve_deployment` /
  :class:`ClusterServer` — the placement/transport layer
  (:mod:`repro.serving.transport`, :mod:`repro.serving.cluster`):
  ``placement: local`` hosts replicas in-process (the default,
  bit-identical to the pre-placement behaviour), ``placement:
  process`` hosts them in supervised worker subprocesses speaking a
  versioned length-prefixed JSON wire protocol, with heartbeat
  liveness, crash failover onto survivors, and respawn — routing
  decisions shared verbatim with the in-process router through the
  pure policy core (:mod:`repro.serving.policy`);
* :class:`Observability` — the debugging plane
  (:mod:`repro.serving.observability`): sampled per-request
  :class:`Trace`/:class:`Span` decomposition of the admit -> queue ->
  execute -> failover path, a bounded :class:`FlightRecorder` of typed
  serving events for post-incident forensics, and a
  :class:`MetricsRing` time-series with Prometheus/JSONL export —
  armed with :meth:`~repro.serving.server.FeBiMServer.
  enable_observability`, free when off.

The registry is pinned to an array technology
(:mod:`repro.backends`): artifacts embed the backend identifier and a
load refuses a mismatch, so a model quantised for one array type can
never be silently programmed onto another.

See ``benchmarks/SERVING.md`` for the policy knobs and measured
served-vs-offline throughput, ``benchmarks/RELIABILITY.md`` for the
fault/healing acceptance gates, and ``examples/serving_demo.py`` for a
two-tenant walkthrough.
"""

from repro.serving.autoscale import (
    AutoscaleController,
    AutoscaleEvent,
    HardwarePool,
    HardwareSlot,
    ScaleDecision,
)
from repro.serving.cluster import ClusterServer, WorkerLost
from repro.serving.deployment import (
    Deployment,
    DeploymentError,
    PlacementSpec,
    ReplicaSpec,
    RoutingPolicy,
    SLOPolicy,
    single_replica_deployment,
)
from repro.serving.health import (
    DeploymentPressure,
    HealthMonitor,
    HealthReport,
    measure_agreement,
    measure_pressure,
)
from repro.serving.observability import (
    EVENT_KINDS,
    FlightEvent,
    FlightRecorder,
    MetricsPoint,
    MetricsRing,
    MetricsSampler,
    Observability,
    Span,
    Trace,
    Tracer,
    format_events,
    format_trace_dicts,
    parse_prometheus,
    to_prometheus,
)
from repro.serving.registry import ModelRegistry
from repro.serving.router import (
    MirroredResult,
    ReplicaHealthReport,
    ReplicaStatus,
    Router,
    replica_stream_seed,
)
from repro.serving.scheduler import (
    BatchPolicy,
    MicroBatchScheduler,
    Overloaded,
    SchedulerClosed,
    ServedResult,
)
from repro.serving.server import FeBiMServer, MaintenanceThread, model_stream_seed
from repro.serving.telemetry import Telemetry, TelemetrySnapshot
from repro.serving.transport import (
    MessageConnection,
    ProtocolError,
    RemoteServedResult,
    RemoteWorkerError,
    serve_deployment,
)

__all__ = [
    "AutoscaleController",
    "AutoscaleEvent",
    "BatchPolicy",
    "ClusterServer",
    "Deployment",
    "DeploymentError",
    "DeploymentPressure",
    "EVENT_KINDS",
    "FeBiMServer",
    "FlightEvent",
    "FlightRecorder",
    "HardwarePool",
    "HardwareSlot",
    "HealthMonitor",
    "HealthReport",
    "MaintenanceThread",
    "MetricsPoint",
    "MetricsRing",
    "MessageConnection",
    "MetricsSampler",
    "MicroBatchScheduler",
    "MirroredResult",
    "ModelRegistry",
    "Observability",
    "Overloaded",
    "PlacementSpec",
    "ProtocolError",
    "RemoteServedResult",
    "RemoteWorkerError",
    "ReplicaHealthReport",
    "ReplicaSpec",
    "ReplicaStatus",
    "Router",
    "RoutingPolicy",
    "SLOPolicy",
    "ScaleDecision",
    "SchedulerClosed",
    "ServedResult",
    "Span",
    "Telemetry",
    "TelemetrySnapshot",
    "Trace",
    "Tracer",
    "WorkerLost",
    "format_events",
    "format_trace_dicts",
    "measure_agreement",
    "measure_pressure",
    "model_stream_seed",
    "parse_prometheus",
    "replica_stream_seed",
    "serve_deployment",
    "single_replica_deployment",
    "to_prometheus",
]
