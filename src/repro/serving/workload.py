"""Synthetic serving workloads: mixed-tenant traffic against a server.

Shared by ``febim serve``, ``benchmarks/bench_serving.py`` and
``examples/serving_demo.py``: train a few tenant models, register them,
fire a stream of single-sample requests from concurrent submitter
threads, and report sustained served throughput next to the offline
``infer_batch`` ceiling the scheduler is trying to reach.

The offline ceiling is measured on the *same engines* that serve the
traffic (one dense ``infer_batch`` at ``offline_batch`` samples), so
``served_fraction`` isolates exactly the cost of the online layer:
queueing, coalescing, futures and thread handoff.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import FeBiMPipeline
from repro.datasets import load_dataset, make_gaussian_blobs
from repro.datasets.splits import train_test_split
from repro.devices.endurance import EnduranceModel
from repro.serving.observability import MetricsSampler, Observability
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import BatchPolicy, Overloaded
from repro.serving.server import FeBiMServer
from repro.serving.telemetry import TelemetrySnapshot
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_positive, check_positive_int

#: Dense batch size used for the offline throughput ceiling.
OFFLINE_BATCH = 256


@dataclass(frozen=True)
class ServingRunResult:
    """Outcome of one mixed-traffic serving run.

    Attributes
    ----------
    served_sps:
        Sustained served samples/sec over the whole run (submit of the
        first request to completion of the last, drain included).
    offline_sps:
        Offline ``infer_batch`` ceiling at :data:`OFFLINE_BATCH`
        samples, traffic-weighted across tenants.
    matched:
        Requests whose served prediction was verified bit-identical to
        the direct offline prediction for the same sample.
    traces / metrics:
        Sampled request traces and the periodic metrics time-series
        (as plain dicts), empty unless the run armed observability.
    """

    dataset: str
    models: Tuple[str, ...]
    policy: BatchPolicy
    n_requests: int
    submitters: int
    wall_s: float
    served_sps: float
    offline_sps: float
    matched: int
    telemetry: TelemetrySnapshot
    backend: str = "fefet"
    traces: Tuple[dict, ...] = ()
    metrics: Tuple[dict, ...] = ()

    @property
    def served_fraction(self) -> float:
        """Served throughput as a fraction of the offline ceiling."""
        if self.offline_sps <= 0:
            return float("nan")
        return self.served_sps / self.offline_sps

    def to_dict(self) -> dict:
        """JSON-serialisable form (``febim serve --json``)."""
        return {
            "bench": "serving",
            "dataset": self.dataset,
            "backend": self.backend,
            "models": list(self.models),
            "policy": {
                "max_batch": self.policy.max_batch,
                "max_wait_ms": self.policy.max_wait_ms,
            },
            "n_requests": self.n_requests,
            "submitters": self.submitters,
            "wall_s": self.wall_s,
            "served_sps": self.served_sps,
            "offline_sps": self.offline_sps,
            "served_fraction": self.served_fraction,
            "matched": self.matched,
            "telemetry": self.telemetry.to_dict(),
            "traces": [dict(t) for t in self.traces],
            "metrics": [dict(p) for p in self.metrics],
        }


def _tenant_datasets(
    dataset: str,
    n_models: int,
    seed_pool,
    synthetic_classes: int,
    synthetic_features: int,
) -> List[Tuple[str, object]]:
    """Tenant (name, dataset) pairs for the workload.

    ``"synthetic"`` draws one independent many-class blob problem per
    tenant (the serving-bench shape: enough classes/features that the
    numpy read dominates scheduler overhead); bundled datasets share
    the data but train tenants on independent splits.
    """
    tenants = []
    for i, rng in enumerate(seed_pool):
        name = f"{dataset}-{chr(ord('a') + i)}"
        if dataset == "synthetic":
            data = make_gaussian_blobs(
                n_samples=1500,
                n_features=synthetic_features,
                n_classes=synthetic_classes,
                class_sep=2.5,
                seed=rng,
            )
        else:
            data = load_dataset(dataset)
        tenants.append((name, data))
    return tenants


def _drive_submitters(
    submit_request,
    n_requests: int,
    submitters: int,
    drain,
    timeout_s: float = 120.0,
):
    """Fire ``n_requests`` from concurrent submitter threads.

    ``submit_request(i)`` submits request ``i`` and returns its future;
    ``drain(timeout)`` flushes the server.  Returns ``(futures,
    wall_s)`` measured from the submitters' start barrier to
    drain-clean.  A submitter whose submit raises stops; its remaining
    slots stay ``None`` for the caller to account as errors.  The
    shared harness of both workload runners — GIL switch-interval
    tuning included (the default 5 ms interval convoys the scheduler
    worker behind the submitters).
    """
    futures: List[Optional[object]] = [None] * n_requests
    barrier = threading.Barrier(submitters + 1)

    def submitter(worker: int) -> None:
        barrier.wait()
        try:
            for i in range(worker, n_requests, submitters):
                futures[i] = submit_request(i)
        except Exception as exc:  # noqa: BLE001 — Nones counted by callers
            # Keep the cause visible: an error-count assertion downstream
            # is undebuggable without it.
            print(
                f"workload submitter {worker} stopped: {exc!r}",
                file=sys.stderr,
            )

    threads = [
        threading.Thread(target=submitter, args=(w,), daemon=True)
        for w in range(submitters)
    ]
    prev_switch = sys.getswitchinterval()
    sys.setswitchinterval(1e-3)
    try:
        for t in threads:
            t.start()
        barrier.wait()
        started = time.perf_counter()
        for t in threads:
            t.join()
        if not drain(timeout_s):
            raise RuntimeError(
                f"serving workload failed to drain in {timeout_s:.0f} s"
            )
        wall = time.perf_counter() - started
    finally:
        sys.setswitchinterval(prev_switch)
    return futures, wall


def run_serving_workload(
    dataset: str = "iris",
    n_models: int = 2,
    n_requests: int = 2048,
    submitters: int = 4,
    policy: Optional[BatchPolicy] = None,
    q_f: int = 4,
    q_l: int = 2,
    registry_root: Optional[str] = None,
    offline_batch: int = OFFLINE_BATCH,
    synthetic_classes: int = 20,
    synthetic_features: int = 24,
    seed: int = 0,
    backend: str = "fefet",
    trace_rate: float = 0.0,
    metrics_period_s: Optional[float] = None,
) -> ServingRunResult:
    """Serve a mixed request stream and measure sustained throughput.

    Parameters
    ----------
    dataset:
        A bundled dataset name, or ``"synthetic"`` for independent
        many-class blob tenants.
    n_models:
        Number of tenant models registered and mixed in the traffic.
    n_requests:
        Total single-sample requests across all submitters.
    submitters:
        Concurrent submitter threads (each owns a disjoint slice of the
        request stream, round-robin across tenants).
    registry_root:
        Registry directory; a temporary one is used when omitted.
    offline_batch:
        Dense batch size for the offline ceiling measurement.
    backend:
        Array technology the registry serves (every tenant engine is
        built on it).
    trace_rate:
        When positive, arm observability and sample this fraction of
        requests into traces (``result.traces``).
    metrics_period_s:
        When set, a :class:`~repro.serving.observability.MetricsSampler`
        records the telemetry time-series on this period
        (``result.metrics``); implies arming observability.

    Returns
    -------
    :class:`ServingRunResult` — throughput, ceiling, verification and
    the final telemetry snapshot after a draining shutdown.
    """
    check_positive_int(n_models, "n_models")
    check_positive_int(n_requests, "n_requests")
    check_positive_int(submitters, "submitters")
    check_positive_int(offline_batch, "offline_batch")
    policy = policy or BatchPolicy()

    with tempfile.TemporaryDirectory() as tmp:
        root = registry_root or tmp
        registry = ModelRegistry(
            root, engine_cache_size=max(8, 2 * n_models), backend=backend
        )

        # Train and register the tenants; keep each tenant's discretised
        # request pool and its expected offline predictions.
        tenant_rngs = spawn_rngs(seed, n_models)
        names: List[str] = []
        pools: Dict[str, np.ndarray] = {}
        tenants = _tenant_datasets(
            dataset, n_models, tenant_rngs, synthetic_classes, synthetic_features
        )
        for name, data in tenants:
            X_tr, X_te, y_tr, _ = train_test_split(
                data.data, data.target, test_size=0.5, seed=zlib.crc32(name.encode())
            )
            pipe = FeBiMPipeline(
                q_f=q_f, q_l=q_l, seed=seed, backend=backend
            ).fit(X_tr, y_tr)
            pipe.register_into(registry, name)
            pools[name] = pipe.transform_levels(X_te)
            names.append(name)

        with FeBiMServer(registry, policy=policy, seed=seed) as server:
            observability = None
            sampler = None
            if trace_rate > 0 or metrics_period_s is not None:
                observability = server.enable_observability(
                    trace_rate=trace_rate
                )
                if metrics_period_s is not None:
                    sampler = MetricsSampler(
                        observability.metrics, server, metrics_period_s
                    )
            # Warm every tenant's engine so the run measures steady-state
            # serving, not one-time crossbar programming.
            engines = {name: server.engine_for(name) for name in names}
            expected = {
                name: engines[name].infer_batch(pools[name]).predictions
                for name in names
            }

            # Offline ceiling: dense infer_batch on the serving engines,
            # weighted by each tenant's share of the traffic.
            per_model_sps = []
            for name in names:
                pool = pools[name]
                idx = np.arange(offline_batch) % pool.shape[0]
                dense = pool[idx]
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    engines[name].infer_batch(dense)
                    best = min(best, time.perf_counter() - start)
                per_model_sps.append(offline_batch / max(best, 1e-12))
            offline_sps = float(
                1.0 / np.mean([1.0 / sps for sps in per_model_sps])
            )

            # The mixed request stream: submitter s owns requests
            # s, s + submitters, ... — round-robin across tenants by
            # request index so traffic interleaves models.
            plan = [
                (names[i % len(names)], i) for i in range(n_requests)
            ]

            def submit_request(i: int):
                name, req = plan[i]
                pool = pools[name]
                return server.submit(name, pool[req % pool.shape[0]])

            futures, wall = _drive_submitters(
                submit_request, n_requests, submitters, server.drain
            )

            # Verify: every future resolved exactly once with the
            # bit-identical offline prediction for its sample.
            matched = 0
            for i, future in enumerate(futures):
                name, req = plan[i]
                if future is None:
                    continue
                result = future.result(timeout=0)
                pool = pools[name]
                if result.prediction == expected[name][req % pool.shape[0]]:
                    matched += 1
            if sampler is not None:
                sampler.stop(timeout=5.0)
            telemetry = server.stats()
            traces: Tuple[dict, ...] = ()
            metrics: Tuple[dict, ...] = ()
            if observability is not None:
                traces = tuple(
                    t.to_dict() for t in observability.tracer.traces()
                )
                metrics = tuple(
                    p.to_dict() for p in observability.metrics.points()
                )

    return ServingRunResult(
        dataset=dataset,
        models=tuple(names),
        policy=policy,
        n_requests=n_requests,
        submitters=submitters,
        wall_s=wall,
        served_sps=n_requests / max(wall, 1e-12),
        offline_sps=offline_sps,
        matched=matched,
        telemetry=telemetry,
        backend=backend,
        traces=traces,
        metrics=metrics,
    )


@dataclass(frozen=True)
class DeploymentRunResult:
    """Outcome of one mixed-traffic run against a deployment.

    ``errors`` counts client-visible failures (a request that failed on
    every serviceable replica); internal replica failures that failed
    over transparently appear in ``telemetry.failovers`` instead.
    """

    deployment: dict
    version: int
    n_requests: int
    submitters: int
    wall_s: float
    served_sps: float
    errors: int
    replicas: Tuple[dict, ...]
    telemetry: TelemetrySnapshot

    def to_dict(self) -> dict:
        """JSON-serialisable form (``febim serve --deployment --json``)."""
        return {
            "bench": "deployment",
            "deployment": dict(self.deployment),
            "version": self.version,
            "n_requests": self.n_requests,
            "submitters": self.submitters,
            "wall_s": self.wall_s,
            "served_sps": self.served_sps,
            "errors": self.errors,
            "replicas": [dict(r) for r in self.replicas],
            "telemetry": self.telemetry.to_dict(),
        }


def request_pool(
    registry: ModelRegistry,
    name: str,
    version: Optional[int] = None,
    n_samples: int = 256,
    seed: int = 0,
) -> np.ndarray:
    """A deterministic pool of valid evidence-level requests for a model.

    Levels are drawn uniformly within each feature's discretisation
    width, read off the registered artifact — no dataset required, so
    deployment workloads can drive any registry directory.
    """
    model, _ = registry.load(name, version, backend=registry.backend)
    widths = [t.shape[1] for t in model.likelihood_levels]
    rng = np.random.default_rng(seed)
    pool = np.empty((n_samples, len(widths)), dtype=int)
    for f, width in enumerate(widths):
        pool[:, f] = rng.integers(0, width, size=n_samples)
    return pool


def run_deployment_workload(
    registry: "ModelRegistry | str",
    deployment,
    n_requests: int = 1024,
    submitters: int = 4,
    policy: Optional[BatchPolicy] = None,
    n_clients: int = 8,
    seed: int = 0,
) -> DeploymentRunResult:
    """Drive a mixed request stream through a deployment's router.

    The deployment's model must already be registered in ``registry``
    (a path builds a :class:`ModelRegistry` with default options).
    ``n_clients`` distinct client identities are cycled through the
    traffic so the ``sticky`` policy has affinity keys to hash.

    Returns sustained served throughput, client-visible error count and
    the final telemetry snapshot — per-replica counters included, which
    is what the routing-policy benchmarks tabulate.
    """
    check_positive_int(n_requests, "n_requests")
    check_positive_int(submitters, "submitters")
    check_positive_int(n_clients, "n_clients")
    if not isinstance(registry, ModelRegistry):
        registry = ModelRegistry(registry)
    deployment.validate()
    if deployment.model not in registry:
        raise KeyError(
            f"deployment model {deployment.model!r} is not registered in "
            f"{registry.root}"
        )
    policy = policy or BatchPolicy()
    pool = request_pool(registry, deployment.model, deployment.version, seed=seed)

    with FeBiMServer(registry, policy=policy, seed=seed) as server:
        applied = server.deploy(deployment)

        def submit_request(i: int):
            return server.submit(
                deployment.model,
                pool[i % pool.shape[0]],
                client=f"client-{i % n_clients}",
            )

        futures, wall = _drive_submitters(
            submit_request, n_requests, submitters, server.drain
        )

        errors = 0
        for future in futures:
            if (
                future is None
                or future.cancelled()
                or future.exception(timeout=30.0) is not None
            ):
                errors += 1
        statuses = tuple(
            s.to_dict() for s in server.router.status(deployment.model)
        )
        telemetry = server.stats()

    return DeploymentRunResult(
        deployment=deployment.to_dict(),
        version=applied.version,
        n_requests=n_requests,
        submitters=submitters,
        wall_s=wall,
        served_sps=n_requests / max(wall, 1e-12),
        errors=errors,
        replicas=statuses,
        telemetry=telemetry,
    )


def format_deployment_run(result: DeploymentRunResult) -> str:
    """Human-readable report (``febim serve --deployment``)."""
    spec = result.deployment
    lines = [
        f"deployment workload: {spec['model']}@v{result.version} "
        f"[{spec['policy']['kind']}] — {result.n_requests} requests, "
        f"{result.submitters} submitters",
        f"throughput served {result.served_sps:.0f} sps, "
        f"{result.errors} client-visible errors",
    ]
    for replica in result.replicas:
        lines.append(
            f"  {replica['replica']:26s} {replica['state']:8s} "
            f"unit delay {replica['unit_delay_s'] * 1e9:8.1f} ns  "
            f"weight {replica['weight']:g}"
        )
    lines.append(result.telemetry.format_lines())
    return "\n".join(lines)


class PacedEngine:
    """An engine proxy that restores real-time service cost.

    The simulated engines answer a 16-sample batch in tens of
    microseconds — far too fast for any Python-side submitter to
    saturate, which makes overload scenarios untestable.  This wrapper
    sleeps ``batch_size * per_sample_s`` around each ``infer_batch``,
    modelling a replica with a real service rate of
    ``1 / per_sample_s`` samples/sec while keeping the numerics (and
    bit-identity) of the wrapped engine.  Install through
    ``Router.engine_wrapper``.
    """

    def __init__(self, engine, per_sample_s: float):
        check_positive(per_sample_s, "per_sample_s")
        self._engine = engine
        self._per_sample_s = float(per_sample_s)

    def infer_batch(self, levels):
        report = self._engine.infer_batch(levels)
        time.sleep(np.asarray(levels).shape[0] * self._per_sample_s)
        return report

    def __getattr__(self, name):
        return getattr(self._engine, name)


def bursty_trace(
    duration_s: float,
    base_rps: float,
    spike_factor: float = 10.0,
    spike_window: Tuple[float, float] = (0.35, 0.6),
    diurnal_amplitude: float = 0.3,
    bin_s: float = 0.01,
    seed: int = 0,
) -> np.ndarray:
    """Open-loop Poisson arrival times with a diurnal swell and a spike.

    The rate profile is ``base_rps * (1 + diurnal_amplitude *
    sin(2*pi*t/duration))``, multiplied by ``spike_factor`` while
    ``t/duration`` lies inside ``spike_window`` (fractions of the
    trace).  Arrivals are drawn per ``bin_s`` bin from a Poisson count
    and jittered uniformly within the bin; the trace is *open-loop* —
    arrival times never depend on how the server is coping, which is
    exactly what makes a spike dangerous.

    Returns sorted arrival offsets in seconds from the trace start.
    """
    check_positive(duration_s, "duration_s")
    check_positive(base_rps, "base_rps")
    check_positive(bin_s, "bin_s")
    if spike_factor < 1.0:
        raise ValueError(f"spike_factor must be >= 1, got {spike_factor}")
    lo, hi = float(spike_window[0]), float(spike_window[1])
    if not 0.0 <= lo <= hi <= 1.0:
        raise ValueError(
            f"spike_window must satisfy 0 <= lo <= hi <= 1, got {spike_window}"
        )
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError(
            f"diurnal_amplitude must lie in [0, 1), got {diurnal_amplitude}"
        )
    rng = np.random.default_rng(seed)
    chunks: List[np.ndarray] = []
    for t0 in np.arange(0.0, duration_s, bin_s):
        frac = t0 / duration_s
        rate = base_rps * (
            1.0 + diurnal_amplitude * np.sin(2.0 * np.pi * frac)
        )
        if lo <= frac < hi:
            rate *= spike_factor
        n = int(rng.poisson(rate * bin_s))
        if n:
            chunks.append(t0 + rng.random(n) * bin_s)
    if not chunks:
        return np.empty(0, dtype=float)
    return np.sort(np.concatenate(chunks))


@dataclass(frozen=True)
class AutoscaleRunResult:
    """Outcome of one bursty open-loop run against an SLO deployment.

    The acceptance contract of ``benchmarks/bench_autoscale.py``: the
    spike must be survived with zero *failed* requests (``shed`` are
    typed :class:`~repro.serving.scheduler.Overloaded` rejections, a
    deliberate admission decision), both a scale-up and a scale-down
    observed, and every scale-up placed on the least-worn pool slot.
    """

    n_requests: int
    ok: int
    shed: int
    failed: int
    shed_by_class: Dict[str, int]
    wall_s: float
    p95_ms: float
    target_p95_ms: Optional[float]
    held_slo: bool
    scale_ups: int
    scale_downs: int
    final_replicas: int
    events: Tuple[dict, ...]
    placements: Tuple[dict, ...]
    autoscale: bool
    base_rps: float
    spike_factor: float
    telemetry: TelemetrySnapshot
    traces: Tuple[dict, ...] = ()
    flight: Tuple[dict, ...] = ()
    metrics: Tuple[dict, ...] = ()
    hardware: Tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        """JSON-serialisable form (``BENCH_autoscale.json``)."""
        return {
            "bench": "autoscale",
            "autoscale": self.autoscale,
            "base_rps": self.base_rps,
            "spike_factor": self.spike_factor,
            "n_requests": self.n_requests,
            "ok": self.ok,
            "shed": self.shed,
            "failed": self.failed,
            "shed_by_class": dict(self.shed_by_class),
            "wall_s": self.wall_s,
            "p95_ms": self.p95_ms,
            "target_p95_ms": self.target_p95_ms,
            "held_slo": self.held_slo,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "final_replicas": self.final_replicas,
            "events": [dict(e) for e in self.events],
            "placements": [dict(p) for p in self.placements],
            "telemetry": self.telemetry.to_dict(),
            "traces": [dict(t) for t in self.traces],
            "flight": [dict(e) for e in self.flight],
            "metrics": [dict(p) for p in self.metrics],
            "hardware": [dict(s) for s in self.hardware],
        }


def run_autoscale_workload(
    duration_s: float = 2.5,
    base_rps: float = 100.0,
    spike_factor: float = 12.0,
    spike_window: Tuple[float, float] = (0.3, 0.55),
    service_time_ms: float = 2.0,
    target_p95_ms: float = 150.0,
    max_queue_depth: int = 16,
    min_replicas: int = 1,
    max_replicas: int = 3,
    pool_wear: Tuple[float, ...] = (0.6, 0.2, 0.9),
    maintenance_period_s: float = 0.12,
    scale_down_patience: int = 3,
    max_batch: int = 16,
    interactive_share: int = 4,
    seed: int = 0,
    autoscale: bool = True,
    trace_rate: float = 0.0,
) -> AutoscaleRunResult:
    """Drive a diurnal + spike trace into an SLO-scaled deployment.

    One paced replica (``PacedEngine`` at ``service_time_ms`` per
    sample — a capacity of ``1000 / service_time_ms`` samples/sec)
    serves an iris deployment whose
    :class:`~repro.serving.deployment.SLOPolicy` bounds every queue at
    ``max_queue_depth`` and allows growth to ``max_replicas``.  An
    :class:`~repro.serving.autoscale.AutoscaleController` on the
    maintenance cadence absorbs the ``spike_factor`` burst by drawing
    replicas from a :class:`~repro.serving.autoscale.HardwarePool`
    whose slots are pre-worn per ``pool_wear`` (fractions of usable
    life), so placement order is observable.  Every
    ``interactive_share``-th request carries the high-priority
    ``"interactive"`` client identity; the rest are low-priority batch
    tenants — the shed ordering the result's ``shed_by_class``
    reports.

    After the trace drains, the controller is stepped synchronously
    (no wall-clock polling) until its calm-streak logic has had every
    chance to retire the spike capacity — the scale-*down* half of the
    loop, made deterministic.

    ``autoscale=False`` runs the no-SLO baseline: one unbounded
    replica, no controller — every request is served eventually and
    the p95 shows what the spike does without the loop closed.

    ``trace_rate > 0`` arms the observability plane for the run: the
    result then carries sampled request traces (``traces``), the
    flight-recorder event log (``flight`` — scale decisions with their
    triggering snapshots, sheds, failovers in causal order) and the
    metrics time-series (``metrics``, sampled on the maintenance
    cadence plus a final post-scale-down point).
    """
    check_positive(duration_s, "duration_s")
    check_positive(service_time_ms, "service_time_ms")
    check_positive_int(max_batch, "max_batch")
    check_positive_int(interactive_share, "interactive_share")
    from repro.datasets import load_dataset as _load
    from repro.serving.autoscale import HardwarePool
    from repro.serving.deployment import (
        Deployment,
        ReplicaSpec,
        RoutingPolicy,
        SLOPolicy,
    )

    model = "iris"
    arrivals = bursty_trace(
        duration_s,
        base_rps,
        spike_factor=spike_factor,
        spike_window=spike_window,
        seed=seed,
    )
    n_requests = int(arrivals.shape[0])

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp, backend="ideal")
        data = _load(model)
        X_tr, X_te, y_tr, _ = train_test_split(
            data.data, data.target, test_size=0.5, seed=seed
        )
        pipe = FeBiMPipeline(q_f=4, q_l=2, seed=seed, backend="ideal").fit(
            X_tr, y_tr
        )
        pipe.register_into(registry, model)
        pool = pipe.transform_levels(X_te)

        policy = BatchPolicy(max_batch=max_batch, max_wait_ms=2.0)
        slo = SLOPolicy(
            target_p95_ms=target_p95_ms,
            max_queue_depth=max_queue_depth,
            min_replicas=min_replicas,
            max_replicas=max_replicas,
            priorities={"interactive": 10},
        )
        deployment = Deployment(
            model=model,
            replicas=tuple(ReplicaSpec("ideal") for _ in range(min_replicas)),
            policy=RoutingPolicy(kind="cost"),
            slo=slo if autoscale else None,
        )

        with FeBiMServer(registry, policy=policy, seed=seed) as server:
            observability = None
            if trace_rate > 0:
                observability = server.enable_observability(
                    trace_rate=trace_rate
                )
            server.router.engine_wrapper = lambda engine, replica: PacedEngine(
                engine, service_time_ms / 1e3
            )
            server.deploy(deployment)
            if observability is not None:
                # Anchor the time-series before traffic; the maintenance
                # thread's metrics hook samples during the run.
                server.sample_metrics()
            controller = None
            if autoscale:
                life = EnduranceModel().cycles_to_window_fraction(0.5)
                hw_pool = HardwarePool(
                    (ReplicaSpec("ideal"), frac * life) for frac in pool_wear
                )
                controller = server.enable_autoscale(
                    model,
                    pool=hw_pool,
                    scale_down_patience=scale_down_patience,
                    cooldown_steps=1,
                )
                server.enable_maintenance(maintenance_period_s)

            clients = [
                "interactive" if i % interactive_share == 0 else f"batch-{i % 5}"
                for i in range(n_requests)
            ]
            futures: List[Optional[object]] = [None] * n_requests
            prev_switch = sys.getswitchinterval()
            sys.setswitchinterval(1e-3)
            started = time.perf_counter()
            try:
                for i in range(n_requests):
                    lead = arrivals[i] - (time.perf_counter() - started)
                    if lead > 0:
                        time.sleep(lead)
                    futures[i] = server.submit(
                        model,
                        pool[i % pool.shape[0]],
                        client=clients[i],
                    )
                if not server.drain(60.0):
                    raise RuntimeError(
                        "autoscale workload failed to drain in 60 s"
                    )
                wall = time.perf_counter() - started
            finally:
                sys.setswitchinterval(prev_switch)

            # Let the controller observe the calm and give capacity
            # back — stepped synchronously so the scale-down half needs
            # no wall-clock polling (and no sleeps in tests).
            if autoscale:
                server.stop_maintenance()
                for _ in range(
                    (scale_down_patience + 2) * (max_replicas + 1)
                ):
                    controller.step()

            ok = shed = failed = 0
            shed_by_class: Dict[str, int] = {}
            for i, future in enumerate(futures):
                exc = None if future is None else future.exception(timeout=30.0)
                if future is not None and exc is None:
                    ok += 1
                elif isinstance(exc, Overloaded):
                    shed += 1
                    cls = (
                        "interactive"
                        if clients[i] == "interactive"
                        else "batch"
                    )
                    shed_by_class[cls] = shed_by_class.get(cls, 0) + 1
                else:
                    failed += 1
            telemetry = server.stats()
            final_replicas = len(
                [
                    s
                    for s in server.router.status(model)
                    if s.state in ("healthy", "down")
                ]
            )
            events = tuple(
                e.to_dict() for e in (controller.history if controller else ())
            )
            traces: Tuple[dict, ...] = ()
            flight: Tuple[dict, ...] = ()
            metrics: Tuple[dict, ...] = ()
            hardware: Tuple[dict, ...] = ()
            if observability is not None:
                # Close the series on the post-scale-down steady state.
                server.sample_metrics()
                traces = tuple(
                    t.to_dict() for t in observability.tracer.traces()
                )
                flight = tuple(
                    e.to_dict() for e in observability.recorder.events()
                )
                metrics = tuple(
                    p.to_dict() for p in observability.metrics.points()
                )
                hardware = tuple(
                    s.to_dict() for s in observability.ledger.samples()
                )

    placements = tuple(
        {
            "slot": e["slot"],
            "replica": e["replica"],
            "wear_fraction": e["wear_fraction"],
        }
        for e in events
        if e["action"] == "up"
    )
    p95_ms = float(telemetry.p95_latency_s * 1e3)
    target = target_p95_ms if autoscale else None
    return AutoscaleRunResult(
        n_requests=n_requests,
        ok=ok,
        shed=shed,
        failed=failed,
        shed_by_class=shed_by_class,
        wall_s=wall,
        p95_ms=p95_ms,
        target_p95_ms=target,
        held_slo=(target is None or p95_ms <= target),
        scale_ups=telemetry.scale_ups,
        scale_downs=telemetry.scale_downs,
        final_replicas=final_replicas,
        events=events,
        placements=placements,
        autoscale=autoscale,
        base_rps=base_rps,
        spike_factor=spike_factor,
        telemetry=telemetry,
        traces=traces,
        flight=flight,
        metrics=metrics,
        hardware=hardware,
    )


def format_autoscale_run(result: AutoscaleRunResult) -> str:
    """Human-readable report (``febim serve --slo``)."""
    mode = "slo autoscale" if result.autoscale else "baseline (no slo)"
    lines = [
        f"autoscale workload [{mode}]: {result.n_requests} requests, "
        f"base {result.base_rps:g} rps, spike x{result.spike_factor:g}",
        f"outcome    {result.ok} served  {result.shed} shed  "
        f"{result.failed} failed  in {result.wall_s:.2f} s",
        f"latency    p95 {result.p95_ms:.1f} ms"
        + (
            f" vs target {result.target_p95_ms:g} ms "
            f"({'HELD' if result.held_slo else 'MISSED'})"
            if result.target_p95_ms is not None
            else ""
        ),
        f"scaling    {result.scale_ups} ups  {result.scale_downs} downs  "
        f"{result.final_replicas} replicas at end",
    ]
    for cls in sorted(result.shed_by_class):
        lines.append(f"  shed {cls:12s} {result.shed_by_class[cls]}")
    for event in result.events:
        if event["action"] == "hold":
            continue
        slot = f" slot={event['slot']}" if event["slot"] else ""
        lines.append(
            f"  step {event['step']:3d} {event['action']:4s} "
            f"{event['replica'] or '':26s}{slot}  ({event['reason']})"
        )
    lines.append(result.telemetry.format_lines())
    return "\n".join(lines)


def format_serving(result: ServingRunResult) -> str:
    """Human-readable report block (``febim serve --report``)."""
    lines = [
        f"serving workload on {result.dataset} [{result.backend}]: "
        f"{result.n_requests} requests, {result.submitters} submitters, "
        f"{len(result.models)} tenants",
        f"policy     max_batch {result.policy.max_batch}, "
        f"max_wait {result.policy.max_wait_ms} ms",
        f"throughput served {result.served_sps:.0f} sps vs offline ceiling "
        f"{result.offline_sps:.0f} sps ({result.served_fraction * 100:.0f}%)",
        f"verified   {result.matched}/{result.n_requests} predictions "
        f"bit-identical to offline",
        result.telemetry.format_lines(),
    ]
    return "\n".join(lines)


# --------------------------------------------------------------------- health
@dataclass(frozen=True)
class HealthRunResult:
    """Outcome of one seeded aging run against a live deployment.

    The acceptance contract of ``benchmarks/bench_health.py``: in the
    *reactive* phase (margin floor off) the canary signal ratio must
    cross ``warn_ratio`` strictly before the first prediction flip; in
    the *early-warning* phase (router margin floor at ``warn_ratio``,
    same age schedule) the heal ladder must fire from the
    ``margin_warning`` — at the step where the reactive phase merely
    degraded — restore the margin bit-identically
    (``post_heal_signal_ratio == 1.0`` exactly, noise-free reads), and
    no prediction may ever flip.
    """

    warn_ratio: float
    drift_rate: float
    ages_s: Tuple[float, ...]
    reactive: Tuple[dict, ...]
    first_warning_step: Optional[int]
    first_flip_step: Optional[int]
    early: Tuple[dict, ...]
    heal_step: Optional[int]
    post_heal_signal_ratio: float
    early_flips: int
    reactive_events: Tuple[dict, ...]
    events: Tuple[dict, ...]
    ledger: Tuple[dict, ...]
    metrics: Tuple[dict, ...]
    telemetry: TelemetrySnapshot

    def to_dict(self) -> dict:
        """JSON-serialisable form (``BENCH_health.json``)."""
        return {
            "bench": "health",
            "warn_ratio": self.warn_ratio,
            "drift_rate": self.drift_rate,
            "ages_s": list(self.ages_s),
            "reactive": [dict(s) for s in self.reactive],
            "first_warning_step": self.first_warning_step,
            "first_flip_step": self.first_flip_step,
            "early": [dict(s) for s in self.early],
            "heal_step": self.heal_step,
            "post_heal_signal_ratio": self.post_heal_signal_ratio,
            "early_flips": self.early_flips,
            "reactive_events": [dict(e) for e in self.reactive_events],
            "events": [dict(e) for e in self.events],
            "ledger": [dict(s) for s in self.ledger],
            "metrics": [dict(p) for p in self.metrics],
            "telemetry": self.telemetry.to_dict(),
        }


#: Age schedule for the aging phases: log-spaced bake times, one sweep
#: per point.  Chosen with :data:`HEALTH_DRIFT_RATE` so the signal
#: ratio crosses the warning threshold a few sweeps before the first
#: prediction flip (the campaign-corner failure sequence, compressed).
HEALTH_AGES_S = tuple(float(a) for a in np.geomspace(1e-1, 1e8, 12))
#: Leaky-stack drift corner driving the aging phases — hot enough that
#: differential drift eventually flips a canary inside the horizon.
HEALTH_DRIFT_RATE = 0.2
#: Signal-ratio warning threshold (fraction of the pristine baseline).
HEALTH_WARN_RATIO = 0.7


def _run_aging_phase(
    min_signal_ratio: float,
    ages_s: Tuple[float, ...],
    drift_rate: float,
    seed: int,
    cyclic: bool,
):
    """One deployment aged along ``ages_s`` with per-step heal sweeps.

    ``min_signal_ratio`` is the :class:`HealthMonitor`'s margin floor
    (0 = reactive: the ladder only fires on a prediction flip, since
    the shift channel is disarmed too).  ``cyclic`` restarts the age
    schedule from the top after any heal (the bake clock restarts with
    the reprogrammed array — the early-warning phase's steady state);
    the reactive phase runs the schedule straight through so the flip
    is reached.  Returns ``(steps, post_heal_ratio, events, ledger,
    metrics, telemetry)``.
    """
    from repro.devices.retention import RetentionModel
    from repro.reliability.faults import AgeClock
    from repro.serving.deployment import Deployment, ReplicaSpec, RoutingPolicy
    from repro.serving.health import HealthMonitor

    model = "iris"
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)  # fefet — the drift-capable reference
        data = load_dataset(model)
        X_tr, X_te, y_tr, _ = train_test_split(
            data.data, data.target, test_size=0.5, seed=seed
        )
        pipe = FeBiMPipeline(q_f=4, q_l=2, seed=seed).fit(X_tr, y_tr)
        pipe.register_into(registry, model)
        with FeBiMServer(registry, seed=seed) as server:
            observability = server.enable_observability()
            server.deploy(
                Deployment(
                    model=model,
                    replicas=(ReplicaSpec("fefet"),),
                    policy=RoutingPolicy(kind="cost"),
                )
            )
            # The monitor carries the margin floor; the shift channel
            # is disarmed so the reactive phase fails on prediction
            # flips alone.
            monitor = HealthMonitor(
                server,
                max_current_shift=float("inf"),
                min_signal_ratio=float(min_signal_ratio),
            )
            monitor.install(model, pipe.transform_levels(X_te[:32]))
            # Replica 0 on the registry backend shares the legacy
            # cached engine object, so baking this engine ages the
            # serving replica the router samples.
            engine = server.engine_for(model)
            clock = AgeClock(
                engine.backend, retention=RetentionModel(drift_rate=drift_rate)
            )
            steps: List[dict] = []
            post_heal_ratio = float("nan")
            pos = 0
            for step in range(len(ages_s)):
                target = float(ages_s[pos])
                clock.advance(max(target - clock.age_s, 0.0))
                pos += 1
                # Router sweep first: refreshes the per-replica margin
                # reading the hardware ledger samples (its synthetic
                # canaries are flip-proof at this corner, so it only
                # observes), then the monitor's real-canary ladder.
                server.router.check_all()
                report = monitor.check(model)
                server.sample_metrics()
                steps.append({"step": step, "age_s": target, **report.to_dict()})
                if report.action in ("refresh", "replace"):
                    # The heal reprogrammed the array: the bake restarts
                    # from pristine, so the clock restarts too.
                    clock.reset()
                    if post_heal_ratio != post_heal_ratio:
                        # Unaged post-heal read: exactly 1.0 when the
                        # reprogram restored the pristine currents
                        # bit-identically.
                        post_heal_ratio = monitor.check(model).signal_ratio
                    if cyclic:
                        pos = 0
                if pos >= len(ages_s):
                    break
            telemetry = server.stats()
            events = tuple(
                e.to_dict() for e in observability.recorder.events()
            )
            ledger = tuple(
                s.to_dict() for s in observability.ledger.samples()
            )
            metrics = tuple(
                p.to_dict() for p in observability.metrics.points()
            )
    return steps, post_heal_ratio, events, ledger, metrics, telemetry


def run_health_workload(
    warn_ratio: float = HEALTH_WARN_RATIO,
    drift_rate: float = HEALTH_DRIFT_RATE,
    ages_s: Tuple[float, ...] = HEALTH_AGES_S,
    seed: int = 0,
) -> HealthRunResult:
    """Watch an array age, twice — reactively, then with margin probes.

    **Reactive phase** (margin floor off): the deployment bakes along
    ``ages_s``; each sweep's heal ladder fires only when a canary
    prediction flips.  The per-step records show the failure sequence
    the campaigns predicted: signal ratio collapsing for sweeps on end
    while every prediction stays correct, then the flip.

    **Early-warning phase** (router margin floor at ``warn_ratio``,
    fresh identically-seeded deployment, same schedule): the ladder
    fires from the ``margin_warning`` at the step where the reactive
    phase merely degraded, the refresh restores the pristine read
    bit-identically, the bake restarts, and no prediction ever flips.
    """
    check_positive(warn_ratio, "warn_ratio")
    reactive, _, reactive_events, _, _, _ = _run_aging_phase(
        0.0, ages_s, drift_rate, seed, cyclic=False
    )
    first_warning = next(
        (
            s["step"]
            for s in reactive
            if s["action"] == "ok"
            and s["signal_ratio"] is not None
            and s["signal_ratio"] < warn_ratio
        ),
        None,
    )
    first_flip = next(
        (s["step"] for s in reactive if s["accuracy"] < 1.0), None
    )
    early, post_heal, events, ledger, metrics, telemetry = _run_aging_phase(
        warn_ratio, ages_s, drift_rate, seed, cyclic=True
    )
    heal_step = next(
        (s["step"] for s in early if s["action"] != "ok"), None
    )
    early_flips = sum(1 for s in early if s["accuracy"] < 1.0)
    return HealthRunResult(
        warn_ratio=float(warn_ratio),
        drift_rate=float(drift_rate),
        ages_s=tuple(float(a) for a in ages_s),
        reactive=tuple(reactive),
        first_warning_step=first_warning,
        first_flip_step=first_flip,
        early=tuple(early),
        heal_step=heal_step,
        post_heal_signal_ratio=post_heal,
        early_flips=early_flips,
        reactive_events=reactive_events,
        events=events,
        ledger=ledger,
        metrics=metrics,
        telemetry=telemetry,
    )


def format_health_run(result: HealthRunResult) -> str:
    """Human-readable report (``febim health``)."""
    from repro.reliability.observability import format_health_timeline

    def _r(value) -> str:
        return "-" if value is None else f"{value:.3f}"

    lines = [
        f"health workload: drift {result.drift_rate:g}, "
        f"{len(result.ages_s)} ages to {result.ages_s[-1]:.3g} s, "
        f"warn below {result.warn_ratio:g}x pristine signal",
        "reactive phase (margin floor off):",
    ]
    for s in result.reactive:
        mark = ""
        if s["step"] == result.first_warning_step:
            mark = "  <- would warn"
        if s["step"] == result.first_flip_step:
            mark = "  <- PREDICTION FLIP"
        lines.append(
            f"  step {s['step']:2d}  age {s['age_s']:.3g}s  "
            f"signal {_r(s['signal_ratio'])}  "
            f"accuracy {s['accuracy']:.3f}  {s['action']}{mark}"
        )
    lines.append(
        f"early-warning phase (floor {result.warn_ratio:g}): "
        f"heal at step {result.heal_step}, "
        f"post-heal signal {_r(result.post_heal_signal_ratio)}, "
        f"{result.early_flips} flips"
    )
    for s in result.early:
        lines.append(
            f"  step {s['step']:2d}  age {s['age_s']:.3g}s  "
            f"signal {_r(s['signal_ratio'])}  "
            f"accuracy {s['accuracy']:.3f}  {s['action']}"
        )
    lines.append("")
    lines.append(format_health_timeline(result.ledger, result.events))
    return "\n".join(lines)


# --------------------------------------------------------------------------
# cluster (cross-process placement) workload


@dataclass(frozen=True)
class ClusterRunResult:
    """Outcome of one traffic run against a ``placement: process`` cluster.

    ``errors`` counts client-visible failures, exactly as in
    :class:`DeploymentRunResult` — with ``killed_worker`` set the run
    SIGKILLed a worker mid-burst, so a zero here means every orphaned
    request failed over to a survivor.  ``event_counts`` tallies the
    flight-recorder kinds the incident produced (``worker_lost``,
    ``worker_respawn``, ``failover``, ``replace``, ...).
    """

    deployment: dict
    version: int
    workers: int
    n_requests: int
    submitters: int
    wall_s: float
    served_sps: float
    errors: int
    killed_worker: Optional[str]
    workers_up_after: int
    replicas: Tuple[dict, ...]
    event_counts: Dict[str, int]
    telemetry: TelemetrySnapshot

    def to_dict(self) -> dict:
        """JSON-serialisable form (``febim cluster --json``)."""
        return {
            "bench": "cluster",
            "deployment": dict(self.deployment),
            "version": self.version,
            "workers": self.workers,
            "n_requests": self.n_requests,
            "submitters": self.submitters,
            "wall_s": self.wall_s,
            "served_sps": self.served_sps,
            "errors": self.errors,
            "killed_worker": self.killed_worker,
            "workers_up_after": self.workers_up_after,
            "replicas": [dict(r) for r in self.replicas],
            "event_counts": dict(self.event_counts),
            "telemetry": self.telemetry.to_dict(),
        }


def run_cluster_workload(
    registry: "ModelRegistry | str",
    deployment,
    n_requests: int = 512,
    submitters: int = 4,
    policy: Optional[BatchPolicy] = None,
    n_clients: int = 8,
    seed: int = 0,
    kill_worker: bool = False,
    heartbeat_period_s: float = 0.1,
    maintenance_period_s: float = 0.1,
) -> ClusterRunResult:
    """Drive a request stream through a multi-process cluster.

    The deployment must carry ``placement: process``.  With
    ``kill_worker`` the run SIGKILLs one worker a quarter of the way
    into the burst — the supervised-failover acceptance scenario: the
    orphaned in-flight requests must fail over to survivors (zero
    client-visible errors), the dead worker's replicas re-place, and
    the supervisor respawns the process, all recorded in the flight
    ring.  After the burst the run waits for the respawn to land so
    ``workers_up_after`` reports the healed cluster.
    """
    from repro.serving.cluster import ClusterServer

    check_positive_int(n_requests, "n_requests")
    check_positive_int(submitters, "submitters")
    check_positive_int(n_clients, "n_clients")
    if not isinstance(registry, ModelRegistry):
        registry = ModelRegistry(registry)
    deployment.validate()
    placement = deployment.placement
    if placement is None or placement.kind != "process":
        raise ValueError(
            "run_cluster_workload needs a 'process' placement deployment"
        )
    if deployment.model not in registry:
        raise KeyError(
            f"deployment model {deployment.model!r} is not registered in "
            f"{registry.root}"
        )
    policy = policy or BatchPolicy()
    pool = request_pool(registry, deployment.model, deployment.version, seed=seed)
    kill_at = n_requests // 4
    killed: List[Optional[str]] = [None]

    with ClusterServer(
        registry,
        policy=policy,
        seed=seed,
        heartbeat_period_s=heartbeat_period_s,
        maintenance_period_s=maintenance_period_s,
    ) as cluster:
        applied = cluster.deploy(deployment)
        cluster.enable_observability(trace_rate=0.0)

        def submit_request(i: int):
            if kill_worker and i == kill_at and killed[0] is None:
                victim = sorted(cluster.worker_pids())[0]
                killed[0] = victim
                cluster.kill_worker(victim)
            return cluster.submit(
                deployment.model,
                pool[i % pool.shape[0]],
                client=f"client-{i % n_clients}",
            )

        futures, wall = _drive_submitters(
            submit_request, n_requests, submitters, cluster.drain
        )

        errors = 0
        for future in futures:
            if (
                future is None
                or future.cancelled()
                or future.exception(timeout=30.0) is not None
            ):
                errors += 1

        if kill_worker:
            # Wait out the supervision ladder: the killed worker must
            # respawn (or exhaust its budget) before the report reads
            # the healed cluster state.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(cluster.worker_pids()) >= placement.workers and (
                    cluster.stats().worker_respawns > 0
                ):
                    break
                time.sleep(0.05)

        statuses = tuple(
            s.to_dict() for s in cluster.status(deployment.model)
        )
        telemetry = cluster.stats()
        event_counts: Dict[str, int] = {}
        for event in cluster.observability.recorder.events():
            event_counts[event.kind] = event_counts.get(event.kind, 0) + 1
        workers_up_after = len(cluster.worker_pids())

    return ClusterRunResult(
        deployment=deployment.to_dict(),
        version=applied.version,
        workers=placement.workers,
        n_requests=n_requests,
        submitters=submitters,
        wall_s=wall,
        served_sps=n_requests / max(wall, 1e-12),
        errors=errors,
        killed_worker=killed[0],
        workers_up_after=workers_up_after,
        replicas=statuses,
        event_counts=event_counts,
        telemetry=telemetry,
    )


def format_cluster_run(result: ClusterRunResult) -> str:
    """Human-readable report (``febim cluster``)."""
    spec = result.deployment
    lines = [
        f"cluster workload: {spec['model']}@v{result.version} "
        f"[{spec['policy']['kind']}] — {result.workers} workers, "
        f"{result.n_requests} requests, {result.submitters} submitters",
        f"throughput served {result.served_sps:.0f} sps, "
        f"{result.errors} client-visible errors",
    ]
    if result.killed_worker is not None:
        counts = result.event_counts
        lines.append(
            f"chaos: SIGKILL {result.killed_worker} mid-burst — "
            f"{counts.get('worker_lost', 0)} lost, "
            f"{counts.get('replace', 0)} replicas re-placed, "
            f"{counts.get('worker_respawn', 0)} respawned, "
            f"{result.telemetry.failovers} failovers; "
            f"{result.workers_up_after}/{result.workers} workers up after"
        )
    for replica in result.replicas:
        lines.append(
            f"  {replica['replica']:26s} {replica['state']:8s} "
            f"unit delay {replica['unit_delay_s'] * 1e9:8.1f} ns  "
            f"weight {replica['weight']:g}"
        )
    lines.append(result.telemetry.format_lines())
    return "\n".join(lines)
