"""Multi-tenant online inference front end over tiled FeBiM engines.

:class:`FeBiMServer` ties the serving layers together: a
:class:`~repro.serving.registry.ModelRegistry` says *what* can be
served, a :class:`~repro.serving.scheduler.MicroBatchScheduler`
decides *when* requests reach the crossbar, and the server handles the
*who* — routing each request to its model's programmed engine, with
every tenant drawing from an independent RNG stream so one model's
noise realisation can never leak into another's.

The per-model streams are derived the same way the engine splits its
own seed (:func:`~repro.utils.rng.spawn_rngs` /
``numpy.random.SeedSequence``): the server's base seed is extended with
a stable digest of the model name and version, so a given
``(seed, name, version)`` always materialises the identical engine —
the property the bit-identity acceptance test leans on — while distinct
tenants get statistically independent streams.
"""

from __future__ import annotations

import zlib
from concurrent.futures import Future
from typing import Dict, Hashable, List, NamedTuple, Optional, Union

import numpy as np

from repro.core.quantization import QuantizedBayesianModel
from repro.devices.fefet import MultiLevelCellSpec
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import BatchPolicy, MicroBatchScheduler, ServedResult
from repro.serving.telemetry import Telemetry, TelemetrySnapshot


def model_stream_seed(base_seed: Optional[int], name: str, version: int) -> Optional[int]:
    """Deterministic per-tenant engine seed.

    ``None`` stays ``None`` (fresh entropy per materialisation);
    otherwise the base seed is extended with a digest of the routing
    identity through ``SeedSequence``, which is exactly how
    :func:`~repro.utils.rng.spawn_rngs` derives independent child
    streams — here keyed by name/version instead of spawn order so the
    stream survives cache eviction and process restarts.
    """
    if base_seed is None:
        return None
    entropy = (int(base_seed), zlib.crc32(name.encode("utf-8")), int(version))
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])


class RouteKey(NamedTuple):
    """A resolved routing identity: model name plus pinned version."""

    name: str
    version: int

    def __str__(self) -> str:
        return f"{self.name}@v{self.version}"


class FeBiMServer:
    """Online serving over a model registry with micro-batched execution.

    Parameters
    ----------
    registry:
        The model store; a path-like builds a fresh
        :class:`ModelRegistry` rooted there.
    policy:
        Micro-batch coalescing bounds (:class:`BatchPolicy`).
    seed:
        Base seed for the per-model engine streams (``None`` for fresh
        entropy).  Two servers with the same seed and registry serve
        bit-identical results under the default noise-free models.
    max_rows:
        When given, engines materialise as hierarchical
        :class:`~repro.crossbar.tiling.TiledFeBiM` with this local-WTA
        fan-in limit; flat engines otherwise.

    Use as a context manager for guaranteed graceful shutdown::

        with FeBiMServer(registry, seed=0) as server:
            future = server.submit("iris", levels)
            result = future.result()
    """

    def __init__(
        self,
        registry: Union[ModelRegistry, str],
        policy: Optional[BatchPolicy] = None,
        seed: Optional[int] = None,
        max_rows: Optional[int] = None,
    ):
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.policy = policy or BatchPolicy()
        self.seed = seed
        self.max_rows = max_rows
        self.telemetry = Telemetry(self.policy.max_batch)
        self.scheduler = MicroBatchScheduler(
            self._resolve, policy=self.policy, telemetry=self.telemetry
        )

    # ---------------------------------------------------------------- routing
    def _route(self, name: str, version: Optional[int]) -> RouteKey:
        return RouteKey(name, self.registry.resolve_version(name, version))

    def _resolve(self, key: Hashable):
        name, version = key
        return self.registry.get_engine(
            name,
            version,
            max_rows=self.max_rows,
            seed=model_stream_seed(self.seed, name, version),
        )

    def engine_for(self, name: str, version: Optional[int] = None):
        """The engine instance requests for ``name`` are served by.

        Materialises (and caches) it if needed — useful for comparing
        served results against direct ``infer_batch`` calls.
        """
        return self._resolve(self._route(name, version))

    # ---------------------------------------------------------------- tenants
    def register(
        self,
        name: str,
        model: QuantizedBayesianModel,
        spec: Optional[MultiLevelCellSpec] = None,
    ) -> int:
        """Register/update a tenant model; returns its new version.

        Delegates to the registry, whose engine-cache invalidation
        guarantees no request batched after this call is served by the
        previous version's weights.
        """
        return self.registry.register(name, model, spec)

    def models(self) -> Dict[str, List[int]]:
        """Registered tenants and their versions."""
        return self.registry.list_models()

    # --------------------------------------------------------------- requests
    def submit(
        self,
        name: str,
        evidence_levels: np.ndarray,
        version: Optional[int] = None,
    ) -> "Future[ServedResult]":
        """Enqueue one discretised sample for ``name``; returns a future."""
        return self.scheduler.submit(self._route(name, version), evidence_levels)

    def submit_many(
        self,
        name: str,
        evidence_levels: np.ndarray,
        version: Optional[int] = None,
    ) -> List["Future[ServedResult]"]:
        """Enqueue a stack of samples as independent single requests."""
        return self.scheduler.submit_many(
            self._route(name, version), evidence_levels
        )

    def predict(
        self,
        name: str,
        evidence_levels: np.ndarray,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        """Blocking single-sample convenience: submit and wait."""
        return self.submit(name, evidence_levels, version).result(timeout)

    # ------------------------------------------------------------- lifecycle
    def stats(self) -> TelemetrySnapshot:
        """Current serving telemetry (requests, batches, latency)."""
        return self.telemetry.snapshot()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Serve everything queued; returns False on timeout."""
        return self.scheduler.drain(timeout)

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Graceful (draining) shutdown by default; idempotent."""
        self.scheduler.shutdown(drain=drain, timeout=timeout)

    def __enter__(self) -> "FeBiMServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:
        return (
            f"FeBiMServer({len(self.models())} models, "
            f"max_batch={self.policy.max_batch}, "
            f"max_wait_ms={self.policy.max_wait_ms})"
        )
