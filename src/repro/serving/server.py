"""Multi-tenant online inference front end over tiled FeBiM engines.

:class:`FeBiMServer` ties the serving layers together: a
:class:`~repro.serving.registry.ModelRegistry` says *what* can be
served, a :class:`~repro.serving.scheduler.MicroBatchScheduler`
decides *when* requests reach the crossbar, and the server handles the
*who* — routing each request to its model's programmed engine, with
every tenant drawing from an independent RNG stream so one model's
noise realisation can never leak into another's.

The per-model streams are derived the same way the engine splits its
own seed (:func:`~repro.utils.rng.spawn_rngs` /
``numpy.random.SeedSequence``): the server's base seed is extended with
a stable digest of the model name and version, so a given
``(seed, name, version)`` always materialises the identical engine —
the property the bit-identity acceptance test leans on — while distinct
tenants get statistically independent streams.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import Future
from typing import Dict, Hashable, List, NamedTuple, Optional, Union

import numpy as np

from repro.core.quantization import QuantizedBayesianModel
from repro.devices.fefet import MultiLevelCellSpec
from repro.serving.deployment import Deployment, DeploymentError
from repro.serving.observability import (
    HardwareGauges,
    Observability,
    count_replicas,
)
from repro.serving.registry import ModelRegistry
from repro.serving.router import Router
from repro.serving.scheduler import BatchPolicy, MicroBatchScheduler, ServedResult
from repro.serving.telemetry import Telemetry, TelemetrySnapshot


def model_stream_seed(base_seed: Optional[int], name: str, version: int) -> Optional[int]:
    """Deterministic per-tenant engine seed.

    ``None`` stays ``None`` (fresh entropy per materialisation);
    otherwise the base seed is extended with a digest of the routing
    identity through ``SeedSequence``, which is exactly how
    :func:`~repro.utils.rng.spawn_rngs` derives independent child
    streams — here keyed by name/version instead of spawn order so the
    stream survives cache eviction and process restarts.
    """
    if base_seed is None:
        return None
    entropy = (int(base_seed), zlib.crc32(name.encode("utf-8")), int(version))
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])


class MaintenanceThread:
    """Scheduled background health sweeps over a server's engines.

    The primary health path: instead of callers remembering to invoke
    :meth:`~repro.serving.health.HealthMonitor.check`, the server runs
    ``monitor.check_all()`` every ``period_s`` seconds on a daemon
    thread.  Each sweep quiesces the scheduler only if it heals (the
    monitor's own ladder), so healthy sweeps never stall traffic.

    Shutdown is drain-safe: :meth:`stop` wakes the sleeper, waits out
    any in-progress sweep and joins the thread *before* the server
    drains its scheduler, so a sweep can never race a closing queue.
    Tenants are checked individually: a check that raises (e.g. its
    model was unregistered mid-sweep) is counted in ``sweep_errors``
    and the sweep moves on — one bad tenant must not starve health
    checks for the rest.
    """

    def __init__(
        self,
        monitor,
        period_s: float,
        telemetry=None,
        router=None,
        controllers=None,
        metrics_hook=None,
    ):
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        self.monitor = monitor
        self.period_s = float(period_s)
        self.telemetry = telemetry
        self.router = router
        # Zero-arg callable returning the autoscale controllers to step
        # each sweep (resolved live so deploy/undeploy between sweeps
        # takes effect without restarting the thread).
        self.controllers = controllers
        # Zero-arg callable run at the end of every sweep — the
        # observability layer's periodic metrics sample rides the
        # maintenance cadence instead of paying for its own thread.
        self.metrics_hook = metrics_hook
        self.sweep_errors = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="febim-maintenance", daemon=True
        )
        self._thread.start()

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop.wait(self.period_s):
            try:
                # Per-tenant isolation (not monitor.check_all(), which
                # aborts on the first raising tenant): a canary set
                # whose model vanished must not shadow the tenants
                # after it.  installed() snapshots the canary dict, but
                # it (and telemetry) runs outside the per-tenant guard,
                # so the loop wraps the whole sweep too — e.g. an
                # install() racing the snapshot must degrade to one
                # missed sweep, never kill the thread.
                for name, version in self.monitor.installed():
                    if self._stop.is_set():
                        break
                    try:
                        self.monitor.check(name, version)
                    except Exception:  # noqa: BLE001 — survive bad tenants
                        self.sweep_errors += 1
                if self.router is not None and not self._stop.is_set():
                    # Deployment replicas sweep through their own heal
                    # ladder (refresh -> replace -> evict); same
                    # isolation contract — a failing deployment must
                    # not starve the canary checks above.
                    try:
                        self.router.check_all()
                    except Exception:  # noqa: BLE001
                        self.sweep_errors += 1
                if self.controllers is not None and not self._stop.is_set():
                    # Autoscale controllers step on the same cadence,
                    # after health: a replica the heal ladder just
                    # evicted should be seen missing *this* sweep, not
                    # next.  Same isolation contract as above.
                    for controller in self.controllers():
                        if self._stop.is_set():
                            break
                        try:
                            controller.step()
                        except Exception:  # noqa: BLE001
                            self.sweep_errors += 1
                if self.metrics_hook is not None:
                    try:
                        self.metrics_hook()
                    except Exception:  # noqa: BLE001
                        self.sweep_errors += 1
                if self.telemetry is not None:
                    self.telemetry.record_maintenance_sweep()
            except Exception:  # noqa: BLE001 — maintenance must survive
                self.sweep_errors += 1

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Stop sweeping and join the thread; idempotent.

        Returns ``True`` once the thread has exited; ``False`` when
        ``timeout`` expired with a sweep still in progress (the stop
        flag stays set, so the thread exits after that sweep)."""
        self._stop.set()
        self._thread.join(timeout)
        return not self._thread.is_alive()


class RouteKey(NamedTuple):
    """A resolved routing identity: model name plus pinned version."""

    name: str
    version: int

    def __str__(self) -> str:
        return f"{self.name}@v{self.version}"


class FeBiMServer:
    """Online serving over a model registry with micro-batched execution.

    Parameters
    ----------
    registry:
        The model store; a path-like builds a fresh
        :class:`ModelRegistry` rooted there.
    policy:
        Micro-batch coalescing bounds (:class:`BatchPolicy`).
    seed:
        Base seed for the per-model engine streams (``None`` for fresh
        entropy).  Two servers with the same seed and registry serve
        bit-identical results under the default noise-free models.
    max_rows:
        When given, engines materialise as hierarchical
        :class:`~repro.crossbar.tiling.TiledFeBiM` with this local-WTA
        fan-in limit; flat engines otherwise.
    maintenance_period_s:
        When given, start a background :class:`MaintenanceThread`
        immediately: a default auto-healing
        :class:`~repro.serving.health.HealthMonitor` sweeps every
        installed canary set on this period.  Install canaries through
        :attr:`monitor`; :meth:`enable_maintenance` configures a custom
        monitor instead.

    Use as a context manager for guaranteed graceful shutdown::

        with FeBiMServer(registry, seed=0) as server:
            future = server.submit("iris", levels)
            result = future.result()
    """

    def __init__(
        self,
        registry: Union[ModelRegistry, str],
        policy: Optional[BatchPolicy] = None,
        seed: Optional[int] = None,
        max_rows: Optional[int] = None,
        maintenance_period_s: Optional[float] = None,
    ):
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.policy = policy or BatchPolicy()
        self.seed = seed
        self.max_rows = max_rows
        self.telemetry = Telemetry(self.policy.max_batch)
        self.scheduler = MicroBatchScheduler(
            self._resolve, policy=self.policy, telemetry=self.telemetry
        )
        self.router = Router(self)
        self.monitor = None
        self.observability: Optional[Observability] = None
        self.maintenance: Optional[MaintenanceThread] = None
        # Autoscale controllers by model name; stepped on the
        # maintenance cadence (see enable_maintenance).
        self._autoscalers: Dict[str, object] = {}
        if maintenance_period_s is not None:
            self.enable_maintenance(maintenance_period_s)

    # ---------------------------------------------------------------- routing
    def _route(self, name: str, version: Optional[int]) -> RouteKey:
        return RouteKey(name, self.registry.resolve_version(name, version))

    def _resolve(self, key: Hashable):
        name, version = key
        return self.registry.get_engine(
            name,
            version,
            max_rows=self.max_rows,
            seed=model_stream_seed(self.seed, name, version),
        )

    def engine_for(self, name: str, version: Optional[int] = None):
        """The engine instance requests for ``name`` are served by.

        Materialises (and caches) it if needed — useful for comparing
        served results against direct ``infer_batch`` calls.
        """
        return self._resolve(self._route(name, version))

    # ---------------------------------------------------------------- tenants
    def register(
        self,
        name: str,
        model: QuantizedBayesianModel,
        spec: Optional[MultiLevelCellSpec] = None,
    ) -> int:
        """Register/update a tenant model; returns its new version.

        Delegates to the registry, whose engine-cache invalidation
        guarantees no request batched after this call is served by the
        previous version's weights.
        """
        return self.registry.register(name, model, spec)

    def models(self) -> Dict[str, List[int]]:
        """Registered tenants and their versions."""
        return self.registry.list_models()

    # ------------------------------------------------------------ deployments
    def deploy(self, deployment: Deployment):
        """Apply a declarative multi-replica deployment for a model.

        Validates the spec (backends, capabilities, policy), programs
        and probes every replica, and installs it in the
        :attr:`router` — subsequent :meth:`submit`/:meth:`predict`
        calls for the model are arbitrated across the replicas by the
        deployment's routing policy, each replica coalescing on its own
        micro-batch queue.  Undeployed models keep being served through
        the legacy single-engine path, which is exactly a one-replica
        deployment on the registry's backend.

        The resolved model version is pinned at apply time; re-apply
        after registering a new version to roll the deployment forward.
        A deployment carrying an ``slo`` block automatically gets a
        default :class:`~repro.serving.autoscale.AutoscaleController`
        (customise with :meth:`enable_autoscale`), stepped on the
        maintenance cadence once maintenance runs.
        Returns the applied deployment handle (status/introspection).
        """
        placement = deployment.placement
        if placement is not None and placement.kind == "process":
            raise DeploymentError(
                f"deployment {deployment.model!r} asks for process "
                f"placement; host it on a ClusterServer (or "
                f"repro.serving.transport.serve_deployment) — FeBiMServer "
                f"hosts local placements only"
            )
        applied = self.router.apply(deployment)
        self._autoscalers.pop(deployment.model, None)
        if deployment.slo is not None:
            self.enable_autoscale(deployment.model)
        return applied

    def undeploy(self, name: str, timeout: Optional[float] = None) -> bool:
        """Remove a model's deployment (drains its replica queues).

        The model falls back to the legacy single-engine path; returns
        ``False`` when no deployment was applied.
        """
        self._autoscalers.pop(name, None)
        return self.router.remove(name, timeout=timeout)

    def deployments(self) -> Dict[str, Deployment]:
        """Applied deployment specs by model name."""
        return self.router.deployments()

    def enable_autoscale(self, name: str, pool=None, **controller_kwargs):
        """Attach (or replace) the autoscale controller for ``name``.

        ``pool`` is an optional
        :class:`~repro.serving.autoscale.HardwarePool` of spare slots;
        ``controller_kwargs`` forward to
        :class:`~repro.serving.autoscale.AutoscaleController` (e.g.
        ``scale_down_patience=5``).  The deployment must carry an
        ``slo`` block.  Controllers step on the maintenance cadence —
        start :meth:`enable_maintenance` for closed-loop operation, or
        call ``controller.step()`` directly.  Returns the controller.
        """
        from repro.serving.autoscale import AutoscaleController

        controller = AutoscaleController(
            self, name, pool=pool, **controller_kwargs
        )
        self._autoscalers[name] = controller
        return controller

    def autoscaler(self, name: str):
        """The autoscale controller serving ``name`` (or ``None``)."""
        return self._autoscalers.get(name)

    # --------------------------------------------------------------- requests
    def submit(
        self,
        name: str,
        evidence_levels: np.ndarray,
        version: Optional[int] = None,
        client: Optional[object] = None,
    ) -> "Future[ServedResult]":
        """Enqueue one discretised sample for ``name``; returns a future.

        Deployed models route through the :attr:`router`'s policy
        (``client`` is the affinity identity the ``sticky`` policy
        hashes; the other policies ignore it).  Undeployed models — and
        version pins older than the applied deployment — take the
        legacy single-engine path unchanged.
        """
        deployment = self.router.deployment_for(name, version)
        if deployment is not None:
            levels = np.asarray(evidence_levels, dtype=int)
            if levels.ndim != 1:
                raise ValueError(
                    f"submit takes one 1-D sample, got shape {levels.shape}"
                )
            return self.router.submit(deployment, levels, client=client)
        return self.scheduler.submit(self._route(name, version), evidence_levels)

    def submit_many(
        self,
        name: str,
        evidence_levels: np.ndarray,
        version: Optional[int] = None,
        client: Optional[object] = None,
    ) -> List["Future[ServedResult]"]:
        """Enqueue a stack of samples as independent single requests."""
        deployment = self.router.deployment_for(name, version)
        if deployment is not None:
            levels = np.asarray(evidence_levels, dtype=int)
            if levels.ndim != 2:
                raise ValueError(
                    f"submit_many takes (n, features) samples, got "
                    f"{levels.shape}"
                )
            return [
                self.router.submit(deployment, row, client=client)
                for row in levels
            ]
        return self.scheduler.submit_many(
            self._route(name, version), evidence_levels
        )

    def predict(
        self,
        name: str,
        evidence_levels: np.ndarray,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
        client: Optional[object] = None,
    ):
        """Blocking single-sample convenience: submit and wait."""
        return self.submit(name, evidence_levels, version, client=client).result(
            timeout
        )

    # ---------------------------------------------------------- observability
    def enable_observability(
        self, observability: Optional[Observability] = None, **kwargs
    ) -> Observability:
        """Arm tracing, the flight recorder, and the metrics ring.

        Pass an existing :class:`~repro.serving.observability.
        Observability` bundle, or ``kwargs`` to build one here (e.g.
        ``trace_rate=0.05``).  Wiring: the tracer attaches to the
        legacy scheduler and the router (deployment requests are traced
        across failover hops by the router itself), the flight recorder
        hangs off :attr:`telemetry` so every layer's ``emit`` lands in
        it, and the metrics ring is sampled on the maintenance cadence
        once maintenance runs (or by a
        :class:`~repro.serving.observability.MetricsSampler`).
        Returns the armed bundle; idempotent per bundle.
        """
        if observability is not None and kwargs:
            raise ValueError(
                "pass kwargs only when the bundle is created here"
            )
        if observability is None:
            observability = Observability(**kwargs)
        self.observability = observability
        self.telemetry.recorder = observability.recorder
        self.scheduler.tracer = observability.tracer
        self.router.tracer = observability.tracer
        self.router.ledger = getattr(observability, "ledger", None)
        return observability

    def disable_observability(self) -> None:
        """Detach all observability surfaces (hot path back to zero)."""
        self.observability = None
        self.telemetry.recorder = None
        self.scheduler.tracer = None
        self.router.tracer = None
        self.router.ledger = None

    def sample_hardware(self):
        """One device-health sweep over every deployment's replicas.

        Returns the flat list of
        :class:`~repro.reliability.observability.DeviceHealthSample`
        rows (recorded into the armed ledger), or ``None`` when
        observability is off.  Per-deployment failures are isolated —
        a deployment racing an undeploy is skipped, not fatal.
        """
        if self.observability is None:
            return None
        samples = []
        for name in list(self.router.deployments()):
            try:
                samples.extend(self.router.hardware_status(name))
            except KeyError:
                continue  # undeployed between the snapshot and the sweep
        return samples

    def sample_metrics(self):
        """Fold one telemetry snapshot into the metrics ring (no-op
        without observability); returns the new point or ``None``.

        Hardware gauges ride along: the device-health sweep runs first,
        and its worst-case fold (weakest margin, deepest wear) lands on
        the same metrics point the Prometheus exporter publishes."""
        observability = self.observability
        if observability is None:
            return None
        hardware = None
        samples = self.sample_hardware()
        if samples:
            hardware = HardwareGauges.from_samples(samples)
        return observability.metrics.sample(
            self.telemetry.snapshot(),
            replicas=count_replicas(self),
            hardware=hardware,
        )

    # ------------------------------------------------------------ maintenance
    def enable_maintenance(
        self,
        period_s: float,
        monitor=None,
        **monitor_kwargs,
    ):
        """Start (or replace) the background health-sweep thread.

        ``monitor`` is an existing
        :class:`~repro.serving.health.HealthMonitor`; when omitted a
        default auto-healing one is created over this server with
        ``monitor_kwargs`` forwarded (e.g. ``max_current_shift=0.05``).
        Returns the monitor, whose
        :meth:`~repro.serving.health.HealthMonitor.install` arms
        canaries per model — until then sweeps are no-ops.
        """
        from repro.serving.health import HealthMonitor

        # Validate everything BEFORE stopping the running thread or
        # touching self.monitor: a bad argument must leave live
        # maintenance (and its installed canary baselines) untouched.
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        if monitor is not None and monitor_kwargs:
            raise ValueError(
                "pass monitor_kwargs only when the monitor is created here"
            )
        if monitor is None:
            monitor = HealthMonitor(self, **monitor_kwargs)
        self.stop_maintenance()
        self.monitor = monitor
        self.maintenance = MaintenanceThread(
            monitor,
            period_s,
            telemetry=self.telemetry,
            router=self.router,
            controllers=lambda: list(self._autoscalers.values()),
            metrics_hook=self.sample_metrics,
        )
        return monitor

    def stop_maintenance(self, timeout: Optional[float] = None) -> bool:
        """Stop the background sweeps (the monitor stays usable
        directly); idempotent.

        Returns ``True`` when no sweep thread is left running.  On a
        ``timeout`` expiring mid-sweep the handle is *kept* (and
        ``False`` returned) so a later ``stop_maintenance()`` /
        ``close()`` still waits the thread out — dropping it would
        allow a healing sweep to race the scheduler drain.
        """
        if self.maintenance is None:
            return True
        if not self.maintenance.stop(timeout):
            return False
        self.maintenance = None
        return True

    # ------------------------------------------------------------- lifecycle
    def stats(self) -> TelemetrySnapshot:
        """Current serving telemetry (requests, batches, latency)."""
        return self.telemetry.snapshot()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Serve everything queued (legacy queue *and* every deployment
        replica queue); returns False on timeout.

        ``timeout`` bounds the whole drain with one shared deadline.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = self.scheduler.drain(timeout)
        remaining = (
            None if deadline is None else max(deadline - time.monotonic(), 0.0)
        )
        return self.router.drain(remaining) and drained

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Graceful (draining) shutdown by default; idempotent.

        The maintenance thread stops (and any in-flight sweep
        finishes) *before* the schedulers drain, so a healing repair
        can never race the shutdown; deployment replica queues shut
        down alongside the legacy queue.  ``timeout`` bounds each
        phase: when set, a sweep mid-heal may be left finishing on its
        daemon thread (the stop flag is set, so it exits right after)
        instead of blocking the close indefinitely.
        """
        self.stop_maintenance(timeout)
        self.router.close(drain=drain, timeout=timeout)
        self.scheduler.shutdown(drain=drain, timeout=timeout)

    def __enter__(self) -> "FeBiMServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:
        return (
            f"FeBiMServer({len(self.models())} models, "
            f"max_batch={self.policy.max_batch}, "
            f"max_wait_ms={self.policy.max_wait_ms})"
        )
