"""Serialization of trained/quantised FeBiM models.

A deployment artifact for FeBiM is small: the quantised level tables,
the cell spec and (for provenance) the write-configuration table.  This
package round-trips that artifact through JSON so a model trained on one
machine can be programmed onto an engine elsewhere.
"""

from repro.io.serialize import (
    DEFAULT_BACKEND,
    artifact_backend,
    engine_manifest,
    load_artifact,
    load_deployment,
    load_model,
    model_from_dict,
    model_to_dict,
    save_deployment,
    save_model,
)

__all__ = [
    "DEFAULT_BACKEND",
    "artifact_backend",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_artifact",
    "load_model",
    "save_deployment",
    "load_deployment",
    "engine_manifest",
]
