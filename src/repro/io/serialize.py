"""JSON round-trip for quantised FeBiM models.

The serialised form is deliberately plain JSON (no pickle): integer
level tables, the quantiser's range parameters and the cell spec — the
exact information a programming controller needs to write an array.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.core.engine import FeBiMEngine
from repro.core.quantization import (
    LOG_DECADE,
    QuantizedBayesianModel,
    UniformQuantizer,
)
from repro.devices.fefet import MultiLevelCellSpec

FORMAT_VERSION = 1


#: Backend identifier assumed for artifacts written before the backend
#: field existed (every pre-backend artifact programmed a FeFET array).
DEFAULT_BACKEND = "fefet"


def model_to_dict(
    model: QuantizedBayesianModel,
    spec: MultiLevelCellSpec = None,
    backend: str = DEFAULT_BACKEND,
) -> dict:
    """Serialise a quantised model (and optional cell spec) to a dict.

    ``backend`` records the array technology the artifact was
    registered for, so a serving registry can refuse to program the
    wrong array type (see
    :meth:`repro.serving.registry.ModelRegistry.load`).
    """
    spec = spec or MultiLevelCellSpec(n_levels=model.quantizer.n_levels)
    if spec.n_levels != model.quantizer.n_levels:
        raise ValueError(
            f"spec has {spec.n_levels} levels but model is quantised to "
            f"{model.quantizer.n_levels}"
        )
    if not isinstance(backend, str) or not backend:
        raise ValueError(f"backend must be a non-empty string, got {backend!r}")
    return {
        "format_version": FORMAT_VERSION,
        "backend": backend,
        "quantizer": {
            "n_levels": model.quantizer.n_levels,
            "clip_decades": (1.0 - model.quantizer.lo) / LOG_DECADE,
        },
        "spec": {
            "n_levels": spec.n_levels,
            "i_min": spec.i_min,
            "i_max": spec.i_max,
            "v_read": spec.v_read,
        },
        "classes": np.asarray(model.classes).tolist(),
        "prior_levels": (
            None if model.prior_levels is None else model.prior_levels.tolist()
        ),
        "likelihood_levels": [t.tolist() for t in model.likelihood_levels],
    }


def artifact_backend(data: dict) -> str:
    """The backend identifier an artifact dict was registered for.

    Artifacts written before the backend field existed default to
    :data:`DEFAULT_BACKEND` — they all programmed FeFET arrays.
    """
    backend = data.get("backend", DEFAULT_BACKEND)
    if not isinstance(backend, str) or not backend:
        raise ValueError(
            f"model artifact has a malformed backend field: {backend!r}"
        )
    return backend


def model_from_dict(data: dict) -> Tuple[QuantizedBayesianModel, MultiLevelCellSpec]:
    """Rebuild ``(model, spec)`` from :func:`model_to_dict` output.

    Raises
    ------
    ValueError
        On any malformed artifact — wrong version, missing sections or
        out-of-range level tables.  A truncated or hand-edited file
        must fail with a diagnosable message, never a raw ``KeyError``.
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"model artifact must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    try:
        qz = data["quantizer"]
        quantizer = UniformQuantizer(int(qz["n_levels"]), float(qz["clip_decades"]))
        sp = data["spec"]
        spec = MultiLevelCellSpec(
            n_levels=int(sp["n_levels"]),
            i_min=float(sp["i_min"]),
            i_max=float(sp["i_max"]),
            v_read=float(sp["v_read"]),
        )
        prior = data["prior_levels"]
        model = QuantizedBayesianModel(
            likelihood_levels=[
                np.asarray(t, dtype=int) for t in data["likelihood_levels"]
            ],
            prior_levels=None if prior is None else np.asarray(prior, dtype=int),
            quantizer=quantizer,
            classes=np.asarray(data["classes"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(
            f"truncated or corrupt model artifact: {exc!r}"
        ) from exc
    # Validate level ranges against the quantiser.
    for f, table in enumerate(model.likelihood_levels):
        if np.any(table < 0) or np.any(table >= quantizer.n_levels):
            raise ValueError(f"likelihood table {f} has out-of-range levels")
    if model.prior_levels is not None and (
        np.any(model.prior_levels < 0)
        or np.any(model.prior_levels >= quantizer.n_levels)
    ):
        raise ValueError("prior levels out of range")
    return model, spec


def _atomic_write_text(path: Path, payload: str) -> Path:
    """Write ``payload`` atomically (temp file + ``os.replace``) so a
    concurrent reader can never observe a half-written artifact."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def _read_json(path: Path, what: str) -> dict:
    """Parse a JSON artifact, wrapping decode errors diagnosably."""
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{what} {path} is not valid JSON (truncated or corrupt?): {exc}"
        ) from exc


def save_model(
    path: Union[str, Path],
    model: QuantizedBayesianModel,
    spec: MultiLevelCellSpec = None,
    backend: str = DEFAULT_BACKEND,
) -> Path:
    """Write the model artifact as JSON; returns the path.

    The write is atomic so a concurrent reader — e.g. a serving
    registry resolving a model that is being hot re-registered — can
    never observe a half-written artifact.
    """
    return _atomic_write_text(
        Path(path),
        json.dumps(model_to_dict(model, spec, backend=backend), indent=2),
    )


def load_model(path: Union[str, Path]) -> Tuple[QuantizedBayesianModel, MultiLevelCellSpec]:
    """Read a model artifact written by :func:`save_model`.

    Raises
    ------
    ValueError
        If the file is not valid JSON (e.g. truncated mid-write) or
        fails :func:`model_from_dict` validation.
    """
    model, spec, _ = load_artifact(path)
    return model, spec


def load_artifact(
    path: Union[str, Path],
) -> Tuple[QuantizedBayesianModel, MultiLevelCellSpec, str]:
    """:func:`load_model` plus the artifact's backend identifier.

    Returns ``(model, spec, backend)``; artifacts without the field
    report :data:`DEFAULT_BACKEND`.
    """
    path = Path(path)
    data = _read_json(path, "model artifact")
    model, spec = model_from_dict(data)
    return model, spec, artifact_backend(data)


def save_deployment(path: Union[str, Path], deployment) -> Path:
    """Write a validated deployment spec as JSON; returns the path.

    Same atomic-write contract as :func:`save_model`: a ``febim serve
    --deployment`` process re-reading the spec can never observe a
    half-written file.
    """
    deployment.validate()
    return _atomic_write_text(
        Path(path), json.dumps(deployment.to_dict(), indent=2)
    )


def load_deployment(path: Union[str, Path]):
    """Read and validate a deployment spec written by
    :func:`save_deployment` (or by hand).

    Raises
    ------
    ValueError
        If the file is not valid JSON, is structurally malformed, or
        names backends/options/policies the installed backend registry
        cannot honour (:class:`repro.serving.deployment.
        DeploymentError` is a ``ValueError``).
    """
    from repro.serving.deployment import Deployment

    return Deployment.from_dict(_read_json(Path(path), "deployment spec"))


def engine_manifest(engine: FeBiMEngine) -> dict:
    """Programming manifest for an engine: geometry, write configs, map.

    What a hardware programming controller would consume: per-level
    pulse counts plus the full level matrix.  Pulse-train write
    configurations are FeFET physics, so the manifest exists only for
    engines on the ``fefet`` backend.
    """
    if getattr(engine.backend, "crossbar", None) is None:
        raise ValueError(
            f"engine_manifest describes FeFET pulse-train programming and "
            f"requires the 'fefet' backend, not "
            f"{engine.backend_name!r}"
        )
    programmer = engine.crossbar._programmer
    return {
        "rows": engine.crossbar.rows,
        "cols": engine.crossbar.cols,
        "include_prior": engine.layout.include_prior,
        "write_configurations": [
            {
                "level": cfg.level,
                "n_pulses": cfg.n_pulses,
                "amplitude_v": cfg.amplitude,
                "width_s": cfg.width,
                "target_current_a": cfg.target_current,
            }
            for cfg in programmer.build_table()
        ],
        "level_matrix": engine.level_matrix.tolist(),
    }
