"""Synthetic stand-in for the UCI breast-cancer (WDBC) dataset.

The real data (569 samples, 30 features, classes malignant=212 /
benign=357) is replaced by per-class Gaussian draws calibrated to the
published per-class statistics of the ten "mean" cell-nucleus features;
the "standard error" and "worst" feature groups are derived from the same
base statistics with the scale relationships observed in the original
data.  As with :mod:`repro.datasets.wine`, a Gaussian naive Bayes model
only ever sees per-class means/variances, so this preserves the
experiment's behaviour (float64 baseline accuracy ~93-95 %%).
"""

from __future__ import annotations

import numpy as np

from repro.datasets._base import Dataset
from repro.utils.rng import ensure_rng

_BASE_FEATURES = [
    "radius",
    "texture",
    "perimeter",
    "area",
    "smoothness",
    "compactness",
    "concavity",
    "concave_points",
    "symmetry",
    "fractal_dimension",
]

FEATURE_NAMES = (
    [f"mean_{f}" for f in _BASE_FEATURES]
    + [f"se_{f}" for f in _BASE_FEATURES]
    + [f"worst_{f}" for f in _BASE_FEATURES]
)
TARGET_NAMES = ["malignant", "benign"]

CLASS_COUNTS = (212, 357)  # malignant, benign

# Calibrated per-class statistics for the ten "mean" features:
# (malignant mean, benign mean, malignant std, benign std)
_MEAN_STATS = np.array(
    [
        [17.46, 12.15, 3.20, 1.78],     # radius
        [21.60, 17.91, 3.78, 4.00],     # texture
        [115.4, 78.08, 21.9, 11.8],     # perimeter
        [978.4, 462.8, 368.0, 134.3],   # area
        [0.1029, 0.0925, 0.0126, 0.0134],  # smoothness
        [0.1452, 0.0801, 0.0540, 0.0337],  # compactness
        [0.1608, 0.0461, 0.0750, 0.0434],  # concavity
        [0.0880, 0.0257, 0.0344, 0.0159],  # concave points
        [0.1929, 0.1742, 0.0274, 0.0248],  # symmetry
        [0.0627, 0.0629, 0.0075, 0.0071],  # fractal dimension
    ]
)

# The "se" group scales like base/10 with ~half the relative spread; the
# "worst" group scales like 1.25x the base with a wider spread.  These
# factors approximate the relationships in the original WDBC data.
_SE_MEAN_FACTOR = 0.10
_SE_STD_FACTOR = 0.05
_WORST_MEAN_FACTOR = 1.25
_WORST_STD_FACTOR = 1.45


def _class_distribution(cls: int) -> tuple:
    """Return (means, stds) vectors over all 30 features for class ``cls``."""
    mean_mu = _MEAN_STATS[:, cls]
    mean_sd = _MEAN_STATS[:, 2 + cls]
    se_mu = mean_mu * _SE_MEAN_FACTOR
    se_sd = np.maximum(mean_sd * _SE_STD_FACTOR, 1e-6)
    worst_mu = mean_mu * _WORST_MEAN_FACTOR
    worst_sd = mean_sd * _WORST_STD_FACTOR
    mus = np.concatenate([mean_mu, se_mu, worst_mu])
    sds = np.concatenate([mean_sd, se_sd, worst_sd])
    return mus, sds


def load_cancer(seed: int = 2024) -> Dataset:
    """Return a calibrated synthetic WDBC dataset (569 x 30, 2 classes)."""
    rng = ensure_rng(seed)
    blocks = []
    labels = []
    for cls, count in enumerate(CLASS_COUNTS):
        mus, sds = _class_distribution(cls)
        samples = rng.normal(loc=mus, scale=sds, size=(count, len(FEATURE_NAMES)))
        np.clip(samples, 0.0, None, out=samples)
        blocks.append(samples)
        labels.append(np.full(count, cls, dtype=int))
    return Dataset(
        name="cancer",
        data=np.vstack(blocks),
        target=np.concatenate(labels),
        feature_names=list(FEATURE_NAMES),
        target_names=list(TARGET_NAMES),
        synthetic=True,
    )
