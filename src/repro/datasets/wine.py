"""Synthetic stand-in for the UCI ``wine`` dataset.

The real wine data (178 samples, 13 chemical-analysis features, 3
cultivars with 59/71/48 samples) cannot be shipped here, so we draw
samples from per-class Gaussian distributions calibrated to the published
per-class feature means and standard deviations.  A Gaussian naive Bayes
classifier — the only model the paper trains on this data — is fully
characterised by exactly those statistics, so the generated data exercises
the same code path and produces accuracies in the same band (~97 %% for
the float64 baseline).  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._base import Dataset
from repro.utils.rng import ensure_rng

FEATURE_NAMES = [
    "alcohol",
    "malic_acid",
    "ash",
    "alcalinity_of_ash",
    "magnesium",
    "total_phenols",
    "flavanoids",
    "nonflavanoid_phenols",
    "proanthocyanins",
    "color_intensity",
    "hue",
    "od280/od315_of_diluted_wines",
    "proline",
]
TARGET_NAMES = ["class_0", "class_1", "class_2"]

CLASS_COUNTS = (59, 71, 48)

# Per-class feature means, calibrated to the published UCI wine statistics.
_CLASS_MEANS = np.array(
    [
        # class 0 (59 samples)
        [13.74, 2.01, 2.46, 17.0, 106.3, 2.84, 2.98, 0.29, 1.90, 5.53, 1.06, 3.16, 1115.7],
        # class 1 (71 samples)
        [12.28, 1.93, 2.24, 20.2, 94.5, 2.26, 2.08, 0.36, 1.63, 3.09, 1.06, 2.79, 519.5],
        # class 2 (48 samples)
        [13.15, 3.33, 2.44, 21.4, 99.3, 1.68, 0.78, 0.45, 1.15, 7.40, 0.68, 1.68, 629.9],
    ]
)

# Per-class feature standard deviations (same calibration source).
_CLASS_STDS = np.array(
    [
        [0.46, 0.69, 0.23, 2.5, 10.5, 0.34, 0.40, 0.07, 0.41, 1.24, 0.12, 0.36, 221.5],
        [0.54, 1.02, 0.32, 3.3, 16.8, 0.55, 0.71, 0.12, 0.60, 0.92, 0.20, 0.50, 157.2],
        [0.53, 1.09, 0.18, 2.3, 10.9, 0.36, 0.29, 0.12, 0.41, 2.31, 0.11, 0.27, 115.1],
    ]
)


def load_wine(seed: int = 2024) -> Dataset:
    """Return a calibrated synthetic wine dataset (178 x 13, 3 classes).

    Parameters
    ----------
    seed:
        Seed for the sample draw.  The default gives a fixed, reproducible
        dataset so experiments are repeatable; pass a different seed to get
        an independent draw from the same class-conditional distributions.
    """
    rng = ensure_rng(seed)
    blocks = []
    labels = []
    for cls, count in enumerate(CLASS_COUNTS):
        samples = rng.normal(
            loc=_CLASS_MEANS[cls], scale=_CLASS_STDS[cls], size=(count, len(FEATURE_NAMES))
        )
        # Chemical measurements are non-negative.
        np.clip(samples, 0.0, None, out=samples)
        blocks.append(samples)
        labels.append(np.full(count, cls, dtype=int))
    return Dataset(
        name="wine",
        data=np.vstack(blocks),
        target=np.concatenate(labels),
        feature_names=list(FEATURE_NAMES),
        target_names=list(TARGET_NAMES),
        synthetic=True,
    )
