"""Train/test splitting and scoring (scikit-learn is unavailable offline).

The paper's protocol (Sec. 4.2): "The test/train ratio is 0.7, and the
number of training-inference epochs is set to 100" — i.e. 100 independent
random 30 %% train / 70 %% test splits, reporting the mean accuracy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def train_test_split(
    data: np.ndarray,
    target: np.ndarray,
    test_size: float = 0.7,
    stratify: bool = True,
    seed: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split into train/test sets; returns ``(X_train, X_test, y_train, y_test)``.

    Parameters
    ----------
    test_size:
        Fraction of samples assigned to the *test* set.  The paper uses
        0.7 (a deliberately low-data training regime, where Bayesian
        methods shine), which is the default here.
    stratify:
        Preserve per-class proportions (and guarantee at least two
        training samples per class, needed to estimate a variance).
    """
    data = np.asarray(data, dtype=float)
    target = np.asarray(target)
    if data.ndim != 2 or target.ndim != 1 or len(data) != len(target):
        raise ValueError("data must be 2-D and target 1-D with matching length")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    rng = ensure_rng(seed)

    n = len(target)
    if stratify:
        train_idx_parts = []
        test_idx_parts = []
        for cls in np.unique(target):
            cls_idx = np.flatnonzero(target == cls)
            rng.shuffle(cls_idx)
            n_test = int(round(len(cls_idx) * test_size))
            # Keep >= 2 train samples per class so variances are estimable.
            n_test = min(n_test, max(len(cls_idx) - 2, 0))
            test_idx_parts.append(cls_idx[:n_test])
            train_idx_parts.append(cls_idx[n_test:])
        train_idx = np.concatenate(train_idx_parts)
        test_idx = np.concatenate(test_idx_parts)
    else:
        order = rng.permutation(n)
        n_test = int(round(n * test_size))
        test_idx, train_idx = order[:n_test], order[n_test:]

    rng.shuffle(train_idx)
    rng.shuffle(test_idx)
    return data[train_idx], data[test_idx], target[train_idx], target[test_idx]


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot score empty label arrays")
    return float(np.mean(y_true == y_pred))
