"""Common dataset container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A labelled classification dataset.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"iris"``.
    data:
        Feature matrix of shape ``(n_samples, n_features)``.
    target:
        Integer class labels of shape ``(n_samples,)`` in ``0..n_classes-1``.
    feature_names:
        Human-readable feature names, length ``n_features``.
    target_names:
        Human-readable class names, length ``n_classes``.
    synthetic:
        True when the data was generated from calibrated statistics rather
        than measured samples (see package docstring).
    """

    name: str
    data: np.ndarray
    target: np.ndarray
    feature_names: List[str] = field(default_factory=list)
    target_names: List[str] = field(default_factory=list)
    synthetic: bool = False

    def __post_init__(self) -> None:
        data = np.asarray(self.data, dtype=float)
        target = np.asarray(self.target, dtype=int)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if target.ndim != 1 or target.shape[0] != data.shape[0]:
            raise ValueError(
                f"target shape {target.shape} incompatible with data {data.shape}"
            )
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "target", target)

    @property
    def n_samples(self) -> int:
        return self.data.shape[0]

    @property
    def n_features(self) -> int:
        return self.data.shape[1]

    @property
    def n_classes(self) -> int:
        return int(self.target.max()) + 1 if self.target.size else 0

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, shape ``(n_classes,)``."""
        return np.bincount(self.target, minlength=self.n_classes)

    def describe(self) -> str:
        """One-line human-readable summary."""
        kind = "synthetic" if self.synthetic else "measured"
        return (
            f"{self.name}: {self.n_samples} samples x {self.n_features} features, "
            f"{self.n_classes} classes {self.class_counts().tolist()} ({kind})"
        )
