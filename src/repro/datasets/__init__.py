"""Datasets used by the paper's evaluation (Sec. 4.2).

The paper trains Gaussian naive Bayes classifiers on scikit-learn's
``iris``, ``wine`` and ``cancer`` loaders.  scikit-learn is not available
in this offline environment, so:

* :func:`load_iris` returns the classic Fisher/UCI iris data embedded
  verbatim (150 samples, 4 features, 3 balanced classes — public domain).
* :func:`load_wine` and :func:`load_cancer` return *synthetic* datasets
  drawn from Gaussian class-conditional distributions calibrated to the
  published per-class feature statistics and class counts of the UCI
  originals.  Because the Gaussian naive Bayes model is fully specified by
  per-class means and variances, these exercise the identical code path
  and land in the same accuracy band (see DESIGN.md, substitutions).
"""

from repro.datasets._base import Dataset
from repro.datasets.iris import load_iris
from repro.datasets.wine import load_wine
from repro.datasets.cancer import load_cancer
from repro.datasets.synthetic import make_gaussian_blobs, make_two_moons_like
from repro.datasets.digits import load_digits_like
from repro.datasets.splits import accuracy_score, train_test_split

_LOADERS = {
    "iris": load_iris,
    "wine": load_wine,
    "cancer": load_cancer,
}


def load_dataset(name: str, **kwargs) -> Dataset:
    """Load one of the paper's three benchmark datasets by name."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(_LOADERS)}"
        ) from None
    return loader(**kwargs)


__all__ = [
    "Dataset",
    "load_digits_like",
    "load_iris",
    "load_wine",
    "load_cancer",
    "load_dataset",
    "make_gaussian_blobs",
    "make_two_moons_like",
    "train_test_split",
    "accuracy_score",
]
