"""Generic synthetic dataset generators for tests and scaling studies."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets._base import Dataset
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int


def make_gaussian_blobs(
    n_samples: int = 300,
    n_features: int = 4,
    n_classes: int = 3,
    class_sep: float = 3.0,
    scale: float = 1.0,
    weights: Optional[Sequence[float]] = None,
    seed: RngLike = None,
) -> Dataset:
    """Gaussian class-conditional blobs with controllable separation.

    Class centres are drawn uniformly in a hypercube whose side grows with
    ``class_sep``; within-class spread is isotropic with std ``scale``.
    ``class_sep/scale`` therefore controls problem difficulty — large
    ratios are near-separable, small ratios overlap heavily.

    Parameters
    ----------
    weights:
        Optional per-class sampling probabilities (normalised internally);
        defaults to balanced classes.  Unbalanced weights produce
        non-uniform priors, exercising FeBiM's prior column.
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    n_features = check_positive_int(n_features, "n_features")
    n_classes = check_positive_int(n_classes, "n_classes")
    check_positive(scale, "scale")
    check_positive(class_sep, "class_sep")
    rng = ensure_rng(seed)

    if weights is None:
        probs = np.full(n_classes, 1.0 / n_classes)
    else:
        probs = np.asarray(weights, dtype=float)
        if probs.shape != (n_classes,) or np.any(probs < 0) or probs.sum() == 0:
            raise ValueError("weights must be n_classes non-negative values")
        probs = probs / probs.sum()

    centers = rng.uniform(
        -class_sep * n_classes / 2.0,
        class_sep * n_classes / 2.0,
        size=(n_classes, n_features),
    )
    target = rng.choice(n_classes, size=n_samples, p=probs)
    data = centers[target] + rng.normal(scale=scale, size=(n_samples, n_features))
    return Dataset(
        name="gaussian_blobs",
        data=data,
        target=target,
        feature_names=[f"x{i}" for i in range(n_features)],
        target_names=[f"class_{c}" for c in range(n_classes)],
        synthetic=True,
    )


def make_two_moons_like(
    n_samples: int = 200, noise: float = 0.15, seed: RngLike = None
) -> Dataset:
    """Two interleaved half-circles — a deliberately *non*-Gaussian problem.

    Used in tests to show that the in-memory GNBC degrades gracefully (it
    matches the software GNBC, which itself is the wrong model here), and
    in examples to illustrate model-mismatch behaviour.
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    check_positive(noise, "noise")
    rng = ensure_rng(seed)

    n0 = n_samples // 2
    n1 = n_samples - n0
    theta0 = rng.uniform(0.0, np.pi, size=n0)
    theta1 = rng.uniform(0.0, np.pi, size=n1)
    upper = np.column_stack([np.cos(theta0), np.sin(theta0)])
    lower = np.column_stack([1.0 - np.cos(theta1), 0.5 - np.sin(theta1)])
    data = np.vstack([upper, lower]) + rng.normal(scale=noise, size=(n_samples, 2))
    target = np.concatenate([np.zeros(n0, dtype=int), np.ones(n1, dtype=int)])
    return Dataset(
        name="two_moons_like",
        data=data,
        target=target,
        feature_names=["x0", "x1"],
        target_names=["upper", "lower"],
        synthetic=True,
    )
