"""Synthetic digits-like dataset: a many-class workload.

The paper's three benchmark datasets have 2-3 classes, which never
stresses the WTA fan-in (Fig. 6c shows why that matters: delay grows
with rows).  This generator produces a 10-class, 64-feature problem in
the spirit of the classic 8x8 handwritten-digits data: each class has a
fixed 8x8 intensity prototype (a coarse glyph) and samples are noisy
renderings of it.  Used by the tiling extension studies.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._base import Dataset
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int

# Coarse 8x8 glyph prototypes for the ten digits: '#' marks high
# intensity.  Fidelity to real handwriting is irrelevant — what matters
# is 10 distinguishable 64-dimensional class-conditional distributions.
_GLYPHS = [
    [".####...",
     "#....#..",
     "#....#..",
     "#....#..",
     "#....#..",
     "#....#..",
     "#....#..",
     ".####..."],
    ["...#....",
     "..##....",
     ".#.#....",
     "...#....",
     "...#....",
     "...#....",
     "...#....",
     ".#####.."],
    [".####...",
     "#....#..",
     ".....#..",
     "....#...",
     "...#....",
     "..#.....",
     ".#......",
     "######.."],
    [".####...",
     "#....#..",
     ".....#..",
     "..###...",
     ".....#..",
     ".....#..",
     "#....#..",
     ".####..."],
    ["...##...",
     "..#.#...",
     ".#..#...",
     "#...#...",
     "######..",
     "....#...",
     "....#...",
     "....#..."],
    ["######..",
     "#.......",
     "#.......",
     "#####...",
     ".....#..",
     ".....#..",
     "#....#..",
     ".####..."],
    [".####...",
     "#.......",
     "#.......",
     "#####...",
     "#....#..",
     "#....#..",
     "#....#..",
     ".####..."],
    ["######..",
     ".....#..",
     "....#...",
     "...#....",
     "..#.....",
     "..#.....",
     "..#.....",
     "..#....."],
    [".####...",
     "#....#..",
     "#....#..",
     ".####...",
     "#....#..",
     "#....#..",
     "#....#..",
     ".####..."],
    [".####...",
     "#....#..",
     "#....#..",
     ".#####..",
     ".....#..",
     ".....#..",
     ".....#..",
     ".####..."],
]


def _prototypes() -> np.ndarray:
    protos = np.zeros((10, 64))
    for digit, rows in enumerate(_GLYPHS):
        grid = np.array([[c == "#" for c in row] for row in rows], dtype=float)
        protos[digit] = (grid * 12.0 + 2.0).ravel()  # intensities 2 / 14
    return protos


def load_digits_like(
    n_samples: int = 1000,
    noise: float = 3.0,
    blur: float = 0.35,
    seed: RngLike = 2024,
) -> Dataset:
    """A 10-class, 64-feature noisy-glyph dataset.

    Parameters
    ----------
    n_samples:
        Total samples, spread uniformly over the ten classes.
    noise:
        Per-pixel Gaussian noise std (intensity units; prototypes span
        2-14).
    blur:
        Fraction of each pixel's neighbours mixed in (crude optics),
        which correlates nearby features — deliberately violating naive
        independence a little, like real images do.
    """
    check_positive_int(n_samples, "n_samples")
    check_positive(noise, "noise")
    if not 0.0 <= blur < 1.0:
        raise ValueError(f"blur must lie in [0, 1), got {blur}")
    rng = ensure_rng(seed)
    protos = _prototypes()
    target = rng.integers(0, 10, size=n_samples)
    clean = protos[target]

    if blur > 0:
        grids = clean.reshape(-1, 8, 8)
        neighbours = (
            np.roll(grids, 1, axis=1)
            + np.roll(grids, -1, axis=1)
            + np.roll(grids, 1, axis=2)
            + np.roll(grids, -1, axis=2)
        ) / 4.0
        clean = ((1 - blur) * grids + blur * neighbours).reshape(-1, 64)

    data = np.clip(clean + rng.normal(scale=noise, size=clean.shape), 0.0, 16.0)
    return Dataset(
        name="digits_like",
        data=data,
        target=target,
        feature_names=[f"px_{r}{c}" for r in range(8) for c in range(8)],
        target_names=[str(d) for d in range(10)],
        synthetic=True,
    )
