"""Write-configuration search: pulse counts for target states (Fig. 4b).

For each discrete level of a :class:`MultiLevelCellSpec`, the programmer
finds the number of nominal write pulses that lands the FeFET's read
current closest to the level's target.  Because the switched fraction is
monotone in the pulse count, a simple monotone search suffices — this is
the software analogue of the paper's per-state "write configuration".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class WriteConfiguration:
    """Recipe for programming one discrete state into a FeFET.

    Attributes
    ----------
    level:
        Target state index (0-based).
    n_pulses:
        Number of nominal write pulses after a full erase.
    amplitude, width:
        Pulse amplitude (V) and width (s).
    target_current, achieved_current:
        The level's ideal read current and the current actually reached
        by ``n_pulses`` (amperes) — their gap is the programming error.
    """

    level: int
    n_pulses: int
    amplitude: float
    width: float
    target_current: float
    achieved_current: float

    @property
    def current_error(self) -> float:
        """Absolute programming error (amperes)."""
        return abs(self.achieved_current - self.target_current)


class PulseProgrammer:
    """Finds and applies write configurations for a multi-level spec.

    Parameters
    ----------
    device:
        Template FeFET (its layer physics and I-V model define the
        search space).  The programmer never mutates the template.
    spec:
        The multi-level cell specification to program against.
    max_pulses:
        Upper bound of the pulse-count search.
    """

    def __init__(
        self,
        device: FeFET,
        spec: MultiLevelCellSpec,
        max_pulses: int = 500,
    ):
        self.device = device
        self.spec = spec
        self.max_pulses = check_positive_int(max_pulses, "max_pulses")

    def _current_after(self, n_pulses: int) -> float:
        """Ideal read current after n pulses from erase (pure prediction)."""
        pol = self.device.layer.switched_fraction_after(n_pulses)
        vth = self.device.vth_for_polarization(pol)
        return float(self.device.idvg.current(self.spec.v_read, vth))

    def configuration_for_level(self, level: int) -> WriteConfiguration:
        """Best pulse count for one level (minimum current error)."""
        target = self.spec.current_for_level(level)
        # The current-after-N curve is monotone non-decreasing; scan for
        # the first N meeting the target, then compare with N-1.
        lo, hi = 0, self.max_pulses
        if self._current_after(hi) < target:
            raise ValueError(
                f"level {level}: target {target:.3e} A unreachable within "
                f"{self.max_pulses} pulses — widen the memory window or "
                "raise max_pulses"
            )
        while lo < hi:
            mid = (lo + hi) // 2
            if self._current_after(mid) < target:
                lo = mid + 1
            else:
                hi = mid
        candidates = [n for n in (lo - 1, lo) if n >= 0]
        best = min(candidates, key=lambda n: abs(self._current_after(n) - target))
        return WriteConfiguration(
            level=level,
            n_pulses=best,
            amplitude=self.device.layer.nominal_amplitude,
            width=self.device.layer.nominal_width,
            target_current=target,
            achieved_current=self._current_after(best),
        )

    def build_table(self) -> List[WriteConfiguration]:
        """Write configuration for every level — the Fig. 4(b) staircase."""
        return [self.configuration_for_level(lv) for lv in range(self.spec.n_levels)]

    def pulse_count_map(self) -> Dict[int, int]:
        """{level: pulse count} convenience view of :meth:`build_table`."""
        return {cfg.level: cfg.n_pulses for cfg in self.build_table()}

    def program(self, device: FeFET, level: int) -> WriteConfiguration:
        """Erase ``device`` and program it to ``level``; returns the recipe.

        The achieved current recorded in the returned configuration is the
        *ideal* one; the device's own read current additionally reflects
        its V_TH offset (device variation).
        """
        cfg = self.configuration_for_level(level)
        device.erase()
        device.apply_write_pulses(
            cfg.n_pulses, amplitude=cfg.amplitude, width=cfg.width
        )
        return cfg

    def max_programming_error(self) -> float:
        """Worst-case |achieved - target| over all levels (amperes).

        Should be well below the level separation for reliable MLC
        operation; tests assert this margin.
        """
        return max(cfg.current_error for cfg in self.build_table())
