"""FeFET device substrate.

Behavioural models of the multi-level ferroelectric FET that FeBiM uses
as its 1-transistor probability storage cell (Sec. 2.1, Fig. 1):

* :class:`IdVgCharacteristic` — smooth subthreshold-to-saturation drain
  current model ``I_DS(V_G; V_TH)`` (Fig. 1c), invertible so that target
  read currents map back to threshold voltages.
* :class:`FerroelectricLayer` — partial polarisation switching under a
  train of gate write pulses (Fig. 1b), a nucleation-limited-switching
  flavour of the experimentally calibrated Preisach model the paper uses
  in SPECTRE.
* :class:`FeFET` — the complete device: erase, pulse-train programming,
  threshold-voltage state, current readout with variation.
* :class:`MultiLevelCellSpec` — the discrete-state abstraction (L states
  <-> evenly spaced I_DS targets) the mapping scheme of Sec. 3.3 relies on.
* :class:`PulseProgrammer` — finds the write pulse count for each state
  (Fig. 4b) and verifies programming accuracy.
* :class:`VariationModel` — Gaussian V_TH device-to-device variation used
  by the Monte-Carlo robustness study (Fig. 8c).
"""

from repro.devices.idvg import IdVgCharacteristic
from repro.devices.preisach import FerroelectricLayer
from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.devices.programming import PulseProgrammer, WriteConfiguration
from repro.devices.variation import VariationModel
from repro.devices.retention import RetentionModel
from repro.devices.endurance import EnduranceModel

__all__ = [
    "RetentionModel",
    "EnduranceModel",
    "IdVgCharacteristic",
    "FerroelectricLayer",
    "FeFET",
    "MultiLevelCellSpec",
    "PulseProgrammer",
    "WriteConfiguration",
    "VariationModel",
]
