"""FeFET write endurance: wake-up and fatigue (extension study).

HfO2 ferroelectrics show a characteristic endurance signature: the
memory window first *widens* over the initial cycles ("wake-up", domain
de-pinning), stays flat through the usable life, then *narrows* as
charge trapping fatigues the film, and finally collapses toward
breakdown (typically 10^5-10^10 cycles depending on the stack).

FeBiM reprograms a cell only when the model is retrained, so endurance
is rarely limiting — but a deployment study needs the number: this
model scales the memory window with cycle count so the accuracy impact
of repeated retraining can be quantified (`bench_extensions` ablation).

The window factor is

    w(n) = (1 + a_wake * (1 - exp(-n / n_wake)))           # wake-up
           * 1 / (1 + (n / n_fatigue)^p)                   # fatigue

normalised so the pristine device has factor ~1; defaults give a +5 %
wake-up by ~1e3 cycles and a 50 % window loss at 1e9 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.fefet import FeFET
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EnduranceModel:
    """Memory-window evolution with program/erase cycling.

    Attributes
    ----------
    wakeup_gain:
        Fractional window gain at full wake-up.
    wakeup_cycles:
        Cycle scale of the wake-up exponential.
    fatigue_cycles:
        Cycle count at which fatigue has halved the window.
    fatigue_power:
        Sharpness of the fatigue roll-off.
    """

    wakeup_gain: float = 0.05
    wakeup_cycles: float = 1e3
    fatigue_cycles: float = 1e9
    fatigue_power: float = 0.7

    def __post_init__(self) -> None:
        if self.wakeup_gain < 0:
            raise ValueError("wakeup_gain must be >= 0")
        check_positive(self.wakeup_cycles, "wakeup_cycles")
        check_positive(self.fatigue_cycles, "fatigue_cycles")
        check_positive(self.fatigue_power, "fatigue_power")

    def window_factor(self, cycles) -> np.ndarray:
        """Memory window relative to the pristine device."""
        n = np.asarray(cycles, dtype=float)
        if np.any(n < 0):
            raise ValueError("cycles must be >= 0")
        wake = 1.0 + self.wakeup_gain * (1.0 - np.exp(-n / self.wakeup_cycles))
        fatigue = 1.0 / (1.0 + (n / self.fatigue_cycles) ** self.fatigue_power)
        return wake * fatigue

    def cycles_to_window_fraction(self, fraction: float) -> float:
        """Cycles until the window falls to ``fraction`` of pristine.

        Bisection on the monotone (post-wake-up) tail; raises if the
        requested fraction is never reached below 10^14 cycles.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must lie in (0, 1)")
        lo, hi = self.wakeup_cycles, 1e14
        if self.window_factor(hi) > fraction:
            raise ValueError(f"window never falls to {fraction} below 1e14 cycles")
        for _ in range(200):
            mid = np.sqrt(lo * hi)  # bisect in log space
            if self.window_factor(mid) > fraction:
                lo = mid
            else:
                hi = mid
        return float(np.sqrt(lo * hi))

    def aged_device(self, template: FeFET, cycles: float) -> FeFET:
        """A copy of ``template`` with its memory window scaled.

        The window shrinks symmetrically about its midpoint (both the
        erased and programmed extremes relax inward), which is the
        dominant fatigue signature.
        """
        factor = float(self.window_factor(cycles))
        mid = 0.5 * (template.vth_high + template.vth_low)
        half = 0.5 * template.memory_window * factor
        return FeFET(
            idvg=template.idvg,
            layer=template.layer.clone(),
            vth_high=mid + half,
            vth_low=mid - half,
            vth_offset=template.vth_offset,
        )
