"""FeFET retention: polarisation relaxation over time (extension study).

The paper evaluates programming-time variation (Fig. 8c) but not
retention; for a deployable engine the stored states must also survive
bake time.  HfO2 FeFET retention measurements consistently show a
log-time V_TH drift of the *partially switched* states toward their
depolarised positions, roughly linear in ``log10(t)`` and largest for
mid-window states (fully erased/fully switched states are stable).

:class:`RetentionModel` implements that shape:

    dV_TH(t) = rate * log10(1 + t / t0) * w(p)

where ``w(p) = 4 p (1 - p)`` weights the drift by how partial the
state's polarisation ``p`` is, and the drift moves V_TH back toward the
erased level.  This is an *extension* (marked as such in DESIGN.md):
the functional form is standard retention phenomenology, with a default
rate of 5 mV of mid-state drift per decade — consistent with reported
multi-year HfO2 FeFET retention, and enough to study when FeBiM would
need a refresh.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RetentionModel:
    """Log-time partial-polarisation relaxation.

    Attributes
    ----------
    drift_rate:
        V_TH drift per decade of time for a half-switched state (volts).
    t0:
        Onset time below which no drift accumulates (seconds).
    """

    drift_rate: float = 0.005
    t0: float = 1.0

    def __post_init__(self) -> None:
        if self.drift_rate < 0:
            raise ValueError("drift_rate must be >= 0")
        check_positive(self.t0, "t0")

    def state_weight(self, polarization) -> np.ndarray:
        """Drift susceptibility of a state: maximal at p = 0.5, zero at
        the fully erased/switched extremes."""
        p = np.asarray(polarization, dtype=float)
        if np.any((p < 0) | (p > 1)):
            raise ValueError("polarization must lie in [0, 1]")
        return 4.0 * p * (1.0 - p)

    def vth_shift(self, polarization, elapsed: float) -> np.ndarray:
        """V_TH drift (volts, toward the erased level) after ``elapsed`` s."""
        if elapsed < 0:
            raise ValueError("elapsed must be >= 0")
        decades = np.log10(1.0 + elapsed / self.t0)
        return self.drift_rate * decades * self.state_weight(polarization)

    def apply_to_crossbar(self, crossbar, elapsed: float) -> np.ndarray:
        """Perturbed V_TH matrix of a crossbar after a bake.

        Does not mutate the crossbar; returns the aged V_TH matrix so
        studies can compare fresh vs aged reads.
        """
        pol = crossbar.polarization_matrix()
        return crossbar.vth_matrix() + self.vth_shift(pol, elapsed)

    def aged_wordline_currents(
        self, crossbar, active_cols, elapsed: float
    ) -> np.ndarray:
        """I_WL of an aged array for one activation pattern."""
        mask = crossbar._column_mask(active_cols)
        v_gates = np.where(mask, crossbar.params.v_on, crossbar.params.v_off)
        vth = self.apply_to_crossbar(crossbar, elapsed)
        currents = crossbar.template.idvg.current(v_gates[None, :], vth)
        return currents.sum(axis=1)
