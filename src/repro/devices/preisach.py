"""Partial polarisation switching under gate pulse trains (Fig. 1b).

The paper's SPECTRE flow uses the experimentally calibrated Preisach
model of Ni et al. (VLSI 2018).  Behaviourally, what FeBiM relies on is:

1. a full erase (negative gate pulse) resets polarisation to one extreme;
2. each subsequent positive write pulse of amplitude ``V_w`` switches a
   *fraction* of the remaining unswitched ferroelectric domains, moving
   V_TH monotonically from the high-V_TH toward the low-V_TH state;
3. the pulse count therefore selects the intermediate V_TH state
   (Fig. 4b), with well-separated multi-level states.

We model the domain ensemble with nucleation-limited switching (NLS)
statistics: each domain has a log-normally distributed characteristic
switching time whose median follows Merz's law ``t_c ~ t0 exp(alpha/V)``.
After ``N`` pulses of width ``t_p`` at amplitude ``V_w`` the accumulated
switching time is ``N t_p``, and the switched fraction is the log-normal
CDF evaluated there.  This reproduces the gradual, pulse-count-controlled
state staircase of Fig. 1(b)/4(b) with a handful of physical parameters.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

from repro.utils.validation import check_positive


def _lognormal_cdf(t: np.ndarray, median: float, sigma: float) -> np.ndarray:
    """CDF of a log-normal with given median and log-space sigma."""
    t = np.asarray(t, dtype=float)
    out = np.zeros_like(t)
    positive = t > 0
    z = (np.log(t[positive]) - np.log(median)) / (sigma * np.sqrt(2.0))
    out[positive] = 0.5 * (1.0 + erf(z))
    return out


class FerroelectricLayer:
    """NLS/Preisach-style domain-ensemble model of the HfO2 gate layer.

    State is the switched domain fraction ``polarization`` in [0, 1]:
    0 after a full erase (high-V_TH state), 1 when fully programmed
    (low-V_TH state).

    Parameters
    ----------
    t0:
        Merz-law attempt time prefactor (seconds).
    merz_alpha:
        Merz activation voltage (volts); switching accelerates as
        ``exp(-alpha / V)`` with pulse amplitude.
    sigma:
        Log-space spread of domain switching times.  Larger sigma spreads
        the staircase over more pulses (finer state control).
    nominal_pulse:
        (amplitude V, width s) of the paper's write pulse: 4 V, 300 ns.
    """

    def __init__(
        self,
        t0: float = 4.2e-10,
        merz_alpha: float = 42.0,
        sigma: float = 0.92,
        nominal_pulse: tuple = (4.0, 300e-9),
    ):
        self.t0 = check_positive(t0, "t0")
        self.merz_alpha = check_positive(merz_alpha, "merz_alpha")
        self.sigma = check_positive(sigma, "sigma")
        amp, width = nominal_pulse
        self.nominal_amplitude = check_positive(amp, "nominal pulse amplitude")
        self.nominal_width = check_positive(width, "nominal pulse width")
        self._accumulated_time = 0.0

    # --------------------------------------------------------------- physics
    def median_switching_time(self, amplitude: float) -> float:
        """Merz-law median domain switching time at a pulse amplitude."""
        check_positive(amplitude, "amplitude")
        return self.t0 * float(np.exp(self.merz_alpha / amplitude))

    def switched_fraction_after(
        self, n_pulses: int, amplitude: float = None, width: float = None
    ) -> float:
        """Predicted polarisation after ``n_pulses`` from a fresh erase.

        Pure function (does not mutate the layer); used by the programmer
        to search pulse counts.
        """
        if n_pulses < 0:
            raise ValueError(f"n_pulses must be >= 0, got {n_pulses}")
        amplitude = self.nominal_amplitude if amplitude is None else amplitude
        width = self.nominal_width if width is None else width
        if n_pulses == 0:
            return 0.0
        t_eff = n_pulses * check_positive(width, "width")
        median = self.median_switching_time(amplitude)
        return float(_lognormal_cdf(np.array([t_eff]), median, self.sigma)[0])

    # ----------------------------------------------------------------- state
    @property
    def polarization(self) -> float:
        """Current switched domain fraction in [0, 1]."""
        if self._accumulated_time <= 0.0:
            return 0.0
        median = self.median_switching_time(self.nominal_amplitude)
        return float(
            _lognormal_cdf(np.array([self._accumulated_time]), median, self.sigma)[0]
        )

    def erase(self) -> None:
        """Full erase: negative gate pulse resets all domains (Sec. 3.3)."""
        self._accumulated_time = 0.0

    def apply_pulses(
        self, n_pulses: int, amplitude: float = None, width: float = None
    ) -> float:
        """Apply ``n_pulses`` write pulses; returns the new polarisation.

        Pulses at a non-nominal amplitude are converted into equivalent
        nominal-amplitude exposure time through the Merz-law time-scaling
        (the standard NLS field-time equivalence), so mixed-amplitude
        pulse trains — including sub-write disturb pulses at ``V_w/2`` —
        accumulate consistently.
        """
        if n_pulses < 0:
            raise ValueError(f"n_pulses must be >= 0, got {n_pulses}")
        if n_pulses == 0:
            return self.polarization
        amplitude = self.nominal_amplitude if amplitude is None else amplitude
        width = self.nominal_width if width is None else width
        check_positive(amplitude, "amplitude")
        check_positive(width, "width")
        scale = self.median_switching_time(self.nominal_amplitude) / self.median_switching_time(amplitude)
        self._accumulated_time += n_pulses * width * scale
        return self.polarization

    def clone(self) -> "FerroelectricLayer":
        """Independent copy with the same parameters and state."""
        twin = FerroelectricLayer(
            t0=self.t0,
            merz_alpha=self.merz_alpha,
            sigma=self.sigma,
            nominal_pulse=(self.nominal_amplitude, self.nominal_width),
        )
        twin._accumulated_time = self._accumulated_time
        return twin
