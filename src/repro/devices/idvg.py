"""FeFET drain-current model ``I_DS(V_G; V_TH)`` (Fig. 1c).

We use the EKV-style interpolation

    I_DS = I_spec * [ln(1 + exp((V_G - V_TH) / (2 n phi_t)))]^2

which is exponential in weak inversion (subthreshold) and quadratic in
strong inversion, with a smooth transition — adequate for a behavioural
crossbar model where only the *read* operating points matter:

* activated gate (``V_on`` = 0.5 V): the device conducts an I_DS set by
  its programmed V_TH; the mapping scheme targets 0.1–1.0 uA.
* inhibited gate (``V_off`` = -0.5 V): the device is cut off (fA-range
  leakage), so unselected columns contribute ~nothing to the wordline sum.

Default constants are calibrated so the full mapped current range
(0.1–1.0 uA at V_on) corresponds to V_TH in roughly [0.0, 0.35] V, inside
the multi-level window demonstrated by MLC FeFET experiments.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

#: Thermal voltage at 300 K (volts).
PHI_T = 0.02585


class IdVgCharacteristic:
    """Smooth I_D-V_G curve parameterised by threshold voltage.

    Parameters
    ----------
    i_spec:
        Specific current prefactor (amperes).  Sets the absolute current
        scale; the default places 1.0 uA at ``V_G - V_TH ~ 0.5 V``.
    ideality:
        Subthreshold ideality factor ``n`` (dimensionless, > 1).
    phi_t:
        Thermal voltage (volts).
    """

    def __init__(
        self,
        i_spec: float = 8.0e-8,
        ideality: float = 1.0,
        phi_t: float = PHI_T,
    ):
        self.i_spec = check_positive(i_spec, "i_spec")
        self.ideality = check_positive(ideality, "ideality")
        self.phi_t = check_positive(phi_t, "phi_t")

    @property
    def _slope(self) -> float:
        """The EKV slope voltage ``2 n phi_t`` (volts)."""
        return 2.0 * self.ideality * self.phi_t

    def current(self, v_gate, v_th) -> np.ndarray:
        """Drain current for gate voltage(s) and threshold voltage(s).

        Broadcasts over both arguments; returns amperes.
        """
        x = (np.asarray(v_gate, dtype=float) - np.asarray(v_th, dtype=float)) / self._slope
        # log1p(exp(x)) computed stably for large |x|.
        soft = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))
        return self.i_spec * soft**2

    def transconductance(self, v_gate, v_th) -> np.ndarray:
        """dI_DS/dV_G (siemens), used for variation sensitivity analysis."""
        x = (np.asarray(v_gate, dtype=float) - np.asarray(v_th, dtype=float)) / self._slope
        xs = np.minimum(x, 30.0)
        soft = np.where(x > 30.0, x, np.log1p(np.exp(xs)))
        sigmoid = np.where(x > 30.0, 1.0, 1.0 / (1.0 + np.exp(-xs)))
        return 2.0 * self.i_spec * soft * sigmoid / self._slope

    def vth_for_current(
        self, target_current: float, v_gate: float, tol: float = 1e-15
    ) -> float:
        """Invert the curve: the V_TH giving ``target_current`` at ``v_gate``.

        Exact analytic inversion of the EKV expression:
        ``x = ln(exp(sqrt(I/I_spec)) - 1)`` and ``V_TH = V_G - x * slope``.
        Falls back to bisection when the analytic form is numerically
        degenerate (extremely small currents).
        """
        check_positive(target_current, "target_current")
        sqrt_ratio = np.sqrt(target_current / self.i_spec)
        if sqrt_ratio > 1e-12:
            with np.errstate(over="ignore"):
                inner = np.expm1(sqrt_ratio)
            if np.isfinite(inner) and inner > 0:
                x = float(np.log(inner))
                return v_gate - x * self._slope
        # Bisection fallback over a wide V_TH window.
        lo, hi = v_gate - 5.0, v_gate + 5.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.current(v_gate, mid) > target_current:
                lo = mid
            else:
                hi = mid
            if hi - lo < tol:
                break
        return 0.5 * (lo + hi)

    def sweep(
        self, v_th: float, v_start: float = -0.4, v_stop: float = 1.2, points: int = 161
    ) -> tuple:
        """Return ``(v_gate, i_ds)`` arrays for one Fig. 1(c)-style curve."""
        if points < 2:
            raise ValueError(f"points must be >= 2, got {points}")
        v = np.linspace(v_start, v_stop, points)
        return v, self.current(v, v_th)
