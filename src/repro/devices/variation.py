"""Device-to-device variation models (Fig. 8c robustness study).

The paper sweeps Gaussian V_TH variation with sigma up to 45 mV and cites
38 mV as an experimentally observed value.  The dominant effect on FeBiM
is a static per-device V_TH offset that perturbs every programmed state's
read current; we also support an optional cycle-to-cycle read-noise term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class VariationModel:
    """Gaussian variation parameters.

    Attributes
    ----------
    sigma_vth:
        Std of the static device-to-device V_TH offset (volts).
    sigma_read:
        Std of a per-read V_TH-equivalent noise term (volts); zero by
        default (the paper's Monte-Carlo sweep varies only sigma_vth).
    """

    sigma_vth: float = 0.0
    sigma_read: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma_vth < 0 or self.sigma_read < 0:
            raise ValueError("variation sigmas must be >= 0")

    @classmethod
    def from_millivolts(cls, sigma_vth_mv: float, sigma_read_mv: float = 0.0) -> "VariationModel":
        """Construct from mV values (the paper quotes 0/15/30/45 mV)."""
        return cls(sigma_vth=sigma_vth_mv * 1e-3, sigma_read=sigma_read_mv * 1e-3)

    @property
    def is_ideal(self) -> bool:
        """True when both noise sources are zero."""
        return self.sigma_vth == 0.0 and self.sigma_read == 0.0

    def sample_offsets(self, shape, seed: RngLike = None) -> np.ndarray:
        """Static V_TH offsets for an array of devices (volts)."""
        rng = ensure_rng(seed)
        if self.sigma_vth == 0.0:
            return np.zeros(shape)
        return rng.normal(0.0, self.sigma_vth, size=shape)

    def sample_read_noise(self, shape, seed: RngLike = None) -> np.ndarray:
        """Per-read V_TH-equivalent noise (volts)."""
        rng = ensure_rng(seed)
        if self.sigma_read == 0.0:
            return np.zeros(shape)
        return rng.normal(0.0, self.sigma_read, size=shape)
