"""The complete FeFET device model and its multi-level-cell abstraction.

A :class:`FeFET` ties together the ferroelectric layer (polarisation
state, pulse programming) and the transistor I-V curve: the switched
domain fraction linearly interpolates V_TH between the erased high-V_TH
state and the fully-programmed low-V_TH state (the memory window), and
the I-V model turns V_TH into a read current.

:class:`MultiLevelCellSpec` captures the discrete-state abstraction of
Sec. 3.3: ``L`` states whose read currents are evenly spaced over
[``i_min``, ``i_max``] = [0.1, 1.0] uA at ``V_on`` = 0.5 V — exactly the
linear level -> I_DS mapping of Fig. 4(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.devices.idvg import IdVgCharacteristic
from repro.devices.preisach import FerroelectricLayer
from repro.utils.validation import check_positive, check_positive_int

#: Paper operating voltages (Sec. 3.2).
V_ON = 0.5
V_OFF = -0.5
V_WRITE = 4.0


@dataclass(frozen=True)
class MultiLevelCellSpec:
    """Discrete multi-level cell specification.

    Parameters
    ----------
    n_levels:
        Number of programmable states ``L`` (e.g. 4 for Q_l = 2 bit, 10
        for the Fig. 4 example).
    i_min, i_max:
        Read currents (amperes, at ``v_read``) of the lowest/highest
        state.  The paper uses 0.1 and 1.0 uA.
    v_read:
        Gate read voltage ``V_on``.
    """

    n_levels: int = 4
    i_min: float = 0.1e-6
    i_max: float = 1.0e-6
    v_read: float = V_ON

    def __post_init__(self) -> None:
        check_positive_int(self.n_levels, "n_levels")
        check_positive(self.i_min, "i_min")
        check_positive(self.i_max, "i_max")
        if self.i_max <= self.i_min and self.n_levels > 1:
            raise ValueError(
                f"i_max ({self.i_max}) must exceed i_min ({self.i_min})"
            )

    @property
    def bits(self) -> float:
        """Equivalent storage bits per cell, ``log2(L)``."""
        return float(np.log2(self.n_levels))

    def level_currents(self) -> np.ndarray:
        """Target read current of every level, shape ``(n_levels,)``.

        Level 0 is the *lowest* current (most negative quantised
        log-probability); level ``L-1`` the highest (probability ~1).
        """
        if self.n_levels == 1:
            return np.array([self.i_max])
        return np.linspace(self.i_min, self.i_max, self.n_levels)

    def current_for_level(self, level: int) -> float:
        """Target current of one level (amperes)."""
        if not 0 <= level < self.n_levels:
            raise ValueError(
                f"level must lie in 0..{self.n_levels - 1}, got {level}"
            )
        return float(self.level_currents()[level])

    def level_separation(self) -> float:
        """Current gap between adjacent levels (amperes)."""
        if self.n_levels == 1:
            return 0.0
        return (self.i_max - self.i_min) / (self.n_levels - 1)

    def verify_tolerance(self) -> float:
        """Default BIST/verify-read tolerance band (amperes).

        40 % of the level separation — wide enough to pass programming
        residuals and benign drift, tight enough to catch stuck cells
        and dead lines.  The single source of this policy: every
        backend's default ``bist_scan`` tolerance derives from here.
        """
        sep = self.level_separation()
        return 0.4 * sep if sep > 0 else 0.1 * self.i_max


class FeFET:
    """A single multi-level FeFET storage cell.

    Parameters
    ----------
    idvg:
        Transistor I-V model (defaults calibrated to the 0.1-1.0 uA
        window at V_on = 0.5 V).
    layer:
        Ferroelectric switching model.
    vth_high, vth_low:
        Memory window: erased (polarisation 0) and fully programmed
        (polarisation 1) threshold voltages.
    vth_offset:
        Static device-to-device V_TH deviation (volts), normally supplied
        by a :class:`~repro.devices.variation.VariationModel`.
    """

    def __init__(
        self,
        idvg: Optional[IdVgCharacteristic] = None,
        layer: Optional[FerroelectricLayer] = None,
        vth_high: float = 0.70,
        vth_low: float = 0.10,
        vth_offset: float = 0.0,
    ):
        if vth_low >= vth_high:
            raise ValueError(
                f"memory window requires vth_low < vth_high, got "
                f"[{vth_low}, {vth_high}]"
            )
        self.idvg = idvg or IdVgCharacteristic()
        self.layer = layer or FerroelectricLayer()
        self.vth_high = float(vth_high)
        self.vth_low = float(vth_low)
        self.vth_offset = float(vth_offset)

    # ----------------------------------------------------------------- state
    @property
    def memory_window(self) -> float:
        """V_TH span between erased and fully-programmed states (volts)."""
        return self.vth_high - self.vth_low

    @property
    def vth(self) -> float:
        """Current threshold voltage including the device offset."""
        pol = self.layer.polarization
        return self.vth_high - pol * self.memory_window + self.vth_offset

    def vth_for_polarization(self, polarization: float) -> float:
        """Ideal (offset-free) V_TH at a given switched fraction."""
        if not 0.0 <= polarization <= 1.0:
            raise ValueError(
                f"polarization must lie in [0, 1], got {polarization}"
            )
        return self.vth_high - polarization * self.memory_window

    def polarization_for_vth(self, vth: float) -> float:
        """Switched fraction needed for an ideal V_TH (clamped to [0,1])."""
        pol = (self.vth_high - vth) / self.memory_window
        return float(np.clip(pol, 0.0, 1.0))

    # ------------------------------------------------------------ operations
    def erase(self) -> None:
        """Full erase to the high-V_TH state."""
        self.layer.erase()

    def apply_write_pulses(
        self, n_pulses: int, amplitude: float = V_WRITE, width: float = None
    ) -> float:
        """Apply a write pulse train; returns the resulting V_TH."""
        self.layer.apply_pulses(n_pulses, amplitude=amplitude, width=width)
        return self.vth

    def read_current(self, v_gate: float = V_ON) -> float:
        """Drain-source current at the given gate voltage (amperes)."""
        return float(self.idvg.current(v_gate, self.vth))

    def is_cut_off(self, v_gate: float = V_OFF, threshold: float = 1e-9) -> bool:
        """True when the inhibited current is below ``threshold`` amps."""
        return self.read_current(v_gate) < threshold

    def clone(self) -> "FeFET":
        """Independent copy (shared I-V model, copied layer state)."""
        return FeFET(
            idvg=self.idvg,
            layer=self.layer.clone(),
            vth_high=self.vth_high,
            vth_low=self.vth_low,
            vth_offset=self.vth_offset,
        )
