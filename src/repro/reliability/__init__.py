"""Reliability: fault injection, aging, and repair for FeBiM arrays.

The paper validates FeBiM under programming-time V_TH variation
(Fig. 8c); this package covers the rest of the lifetime — the failure
modes a production deployment meets after programming:

* :mod:`repro.reliability.faults` — stuck-at cells, dead rows/columns
  (:class:`FaultInjector`), retention drift under a monotonic
  :class:`AgeClock`, and write wear (:class:`WearState`), all injected
  through the crossbar's cache-invalidating mutation API;
* :mod:`repro.reliability.campaign` — Monte-Carlo fault/aging sweeps
  over a ``multiprocessing`` pool with per-trial ``SeedSequence``
  streams (bit-identical at any worker count), reporting
  accuracy-vs-fault-rate and time-to-refresh curves;
* :mod:`repro.reliability.mitigation` — behavioural BIST detection plus
  the repair strategies: refresh-by-reprogram, spare-row remapping and
  tile retirement;
* :mod:`repro.reliability.observability` — hardware-plane telemetry:
  read-margin probes derived from batch reports
  (:class:`MarginProbe`), a bounded per-replica device-health ledger
  (:class:`DeviceHealthLedger`) and the aggregated
  :class:`HardwareGauges` the serving metrics exporter publishes.

The serving-side consumer is :class:`repro.serving.HealthMonitor`,
which runs canary inputs against live engines and triggers the same
repairs automatically.  See ``benchmarks/RELIABILITY.md`` for measured
curves and ``examples/reliability_demo.py`` for a walkthrough.
"""

from repro.reliability.campaign import (
    CampaignConfig,
    CampaignPoint,
    CampaignResult,
    TrialResult,
    aging_points,
    fault_rate_points,
    format_campaign,
    parallel_map,
    run_campaign,
    trial_seeds,
)
from repro.reliability.faults import (
    AgeClock,
    FaultInjector,
    FaultReport,
    FaultSpec,
    WearState,
    inject_into_engine,
)
from repro.reliability.mitigation import (
    MITIGATIONS,
    apply_mitigation,
    faulty_rows,
    refresh_engine,
    retire_faulty_tiles,
    scan_faulty_cells,
    spare_row_repair,
)
from repro.reliability.observability import (
    LEDGER_CAPACITY,
    DeviceHealthLedger,
    DeviceHealthSample,
    HardwareGauges,
    MarginProbe,
    MarginReading,
    format_health_timeline,
    margin_signal,
    sample_margin,
)

__all__ = [
    "AgeClock",
    "CampaignConfig",
    "CampaignPoint",
    "CampaignResult",
    "DeviceHealthLedger",
    "DeviceHealthSample",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "HardwareGauges",
    "LEDGER_CAPACITY",
    "MITIGATIONS",
    "MarginProbe",
    "MarginReading",
    "TrialResult",
    "WearState",
    "format_health_timeline",
    "margin_signal",
    "sample_margin",
    "aging_points",
    "apply_mitigation",
    "fault_rate_points",
    "faulty_rows",
    "inject_into_engine",
    "format_campaign",
    "parallel_map",
    "refresh_engine",
    "retire_faulty_tiles",
    "run_campaign",
    "scan_faulty_cells",
    "spare_row_repair",
    "trial_seeds",
]
