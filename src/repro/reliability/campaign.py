"""Monte-Carlo fault/aging campaigns over a process pool.

A campaign sweeps *lifetime conditions* (fault rates, bake ages, wear
cycles) the way the paper's Fig. 8(c) sweeps V_TH variation: every
point is evaluated over independent trials, each trial retraining,
reprogramming, degrading and (optionally) repairing a fresh engine.

Determinism contract
--------------------

Trials are embarrassingly parallel, so the runner fans them out over a
``multiprocessing`` pool — but *reproducibility cannot depend on the
schedule*.  Every trial derives its entire randomness from one
``numpy.random.SeedSequence`` child (:func:`trial_seeds`), spawned
up-front in trial order and carried inside the trial payload; results
come back in payload order regardless of which worker ran what.  A
campaign is therefore **bit-identical at ``workers=1`` and
``workers=N``** (asserted by ``scripts/ci.sh`` on every run), and the
``workers=1`` path is a plain serial loop — no pool, no pickling — so
small sweeps stay cheap.

:func:`parallel_map` is the generic payload mapper; the V_TH variation
sweep (:mod:`repro.analysis.montecarlo`) rides the same runner for its
parallel mode.
"""

from __future__ import annotations

import multiprocessing
import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import Capability, backend_capabilities
from repro.core.engine import FeBiMEngine
from repro.core.pipeline import FeBiMPipeline
from repro.crossbar.tiling import TiledFeBiM
from repro.datasets import load_dataset
from repro.datasets.splits import train_test_split
from repro.devices.endurance import EnduranceModel
from repro.devices.retention import RetentionModel
from repro.reliability.faults import AgeClock, FaultSpec, WearState, inject_into_engine
from repro.reliability.mitigation import MITIGATIONS, apply_mitigation
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_positive_int


def trial_seeds(seed: Optional[int], n: int) -> List[int]:
    """``n`` independent per-trial integer seeds from one root seed.

    Spawned through ``numpy.random.SeedSequence`` in trial order, so a
    trial's stream depends only on ``(seed, trial index)`` — never on
    scheduling.  ``None`` draws fresh OS entropy (a non-reproducible
    campaign, deliberately mirroring the library-wide seed semantics).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = np.random.SeedSequence(seed)
    return [int(child.generate_state(1, np.uint64)[0]) for child in root.spawn(n)]


def runs_in_process(workers: int, n_payloads: int) -> bool:
    """Whether :func:`parallel_map` will dispatch serially in-process.

    The single source of truth for that decision: callers that install
    process-global state through the initializer (the shared-model
    campaign path) consult it to know whether the install lands in
    *their* process and needs in-process locking/cleanup.
    """
    return workers <= 1 or n_payloads <= 1


def parallel_map(
    fn: Callable,
    payloads: Sequence,
    workers: int = 1,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
) -> list:
    """Order-preserving map over a process pool (serial at ``workers<=1``).

    ``fn`` must be a module-level callable and every payload picklable;
    results arrive indexed by payload position, so any worker count
    yields the identical list when ``fn`` is a pure function of its
    payload (and of state ``initializer`` installed).

    ``initializer(*initargs)`` runs once per worker — the place to ship
    a large shared object (e.g. a dataset) *once* instead of embedding
    it in every payload.  On the serial path it runs once in-process,
    so ``fn`` sees the same world either way.
    """
    payloads = list(payloads)
    if runs_in_process(workers, len(payloads)):
        if initializer is not None:
            initializer(*initargs)
        return [fn(p) for p in payloads]
    workers = min(workers, len(payloads))
    with multiprocessing.Pool(
        processes=workers, initializer=initializer, initargs=initargs
    ) as pool:
        return pool.map(fn, payloads)


# --------------------------------------------------------------------- config
@dataclass(frozen=True)
class CampaignPoint:
    """One lifetime condition: a fault population plus an age/wear state."""

    label: str
    fault: FaultSpec = field(default_factory=FaultSpec)
    age_s: float = 0.0
    wear_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.age_s < 0:
            raise ValueError("age_s must be >= 0")
        if self.wear_cycles < 0:
            raise ValueError("wear_cycles must be >= 0")

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "fault": self.fault.to_dict(),
            "age_s": self.age_s,
            "wear_cycles": self.wear_cycles,
        }


@dataclass(frozen=True)
class CampaignConfig:
    """A full campaign: the sweep points plus the shared trial recipe.

    ``backend`` selects the array technology every trial engine is
    built on.  The configuration is validated against the backend's
    declared capability set up front: sweeping ages on a backend
    without analog drift, wear on one without a swappable template, or
    requesting spare-row repair where no spares exist all fail here
    with the missing capability named — explicit degradation instead
    of a crash ten layers down a trial.

    ``shared_model`` switches the trial recipe: instead of an
    independent split + retrain per trial (the default, which the
    golden campaign regressions pin), the model is trained and
    quantised **once per campaign** and every trial programs *fresh
    hardware* from it — isolating hardware variance (fault draws,
    variation, repair) from train-split variance, and roughly halving
    the campaign cost.
    """

    points: Tuple[CampaignPoint, ...]
    dataset: str = "iris"
    trials: int = 20
    q_f: int = 4
    q_l: int = 2
    test_size: float = 0.7
    mitigation: str = "none"
    spare_rows: int = 2
    max_rows: Optional[int] = None
    retention: RetentionModel = field(default_factory=RetentionModel)
    endurance: EnduranceModel = field(default_factory=EnduranceModel)
    backend: str = "fefet"
    shared_model: bool = False

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("campaign needs at least one point")
        object.__setattr__(self, "points", tuple(self.points))
        check_positive_int(self.trials, "trials")
        if self.mitigation not in MITIGATIONS:
            raise ValueError(
                f"mitigation must be one of {MITIGATIONS}, got {self.mitigation!r}"
            )
        if self.mitigation == "retire-tiles" and self.max_rows is None:
            raise ValueError("retire-tiles needs max_rows (a tiled engine)")
        if self.mitigation == "spare-rows" and self.max_rows is not None:
            raise ValueError(
                "spare-rows repairs a flat engine's array; with "
                "max_rows (tiled engines) use retire-tiles instead"
            )
        self._check_backend_capabilities()

    def _check_backend_capabilities(self) -> None:
        """Fail fast when the sweep needs what the backend lacks."""
        caps = backend_capabilities(self.backend)  # validates the name too

        def need(capability: str, why: str) -> None:
            if capability not in caps:
                raise ValueError(
                    f"backend {self.backend!r} does not support capability "
                    f"{capability!r}, needed for {why}; run this sweep on a "
                    f"backend that declares it (e.g. 'fefet')"
                )

        if any(not p.fault.is_null for p in self.points):
            need(Capability.STUCK_FAULTS, "the fault-injection points")
        if any(p.age_s > 0 for p in self.points):
            need(Capability.VTH_DRIFT, "the retention-aging points")
        if any(p.wear_cycles > 0 for p in self.points):
            need(Capability.WEAR, "the write-wear points")
        if self.mitigation == "spare-rows":
            need(Capability.SPARE_ROWS, "spare-row repair")


def fault_rate_points(
    rates: Sequence[float], dead_col_mode: str = "off"
) -> Tuple[CampaignPoint, ...]:
    """Accuracy-vs-fault-rate sweep: each rate split evenly between the
    stuck polarities (the mix hardware qual reports usually assume)."""
    return tuple(
        CampaignPoint(
            label=f"rate={rate:g}",
            fault=FaultSpec(
                stuck_on_rate=rate / 2.0,
                stuck_off_rate=rate / 2.0,
                dead_col_mode=dead_col_mode,
            ),
        )
        for rate in rates
    )


def aging_points(ages_s: Sequence[float]) -> Tuple[CampaignPoint, ...]:
    """Time-to-refresh sweep: pure retention bake, no hard faults."""
    return tuple(CampaignPoint(label=f"age={age:g}s", age_s=age) for age in ages_s)


# --------------------------------------------------------------------- trial
def _prediction_crc(predictions: np.ndarray) -> int:
    """Order-stable 32-bit digest of a prediction vector.

    CRCs travel through the process pool for free and make the
    ``workers=1`` vs ``workers=N`` equality check genuinely
    bit-for-bit, not merely accuracy-equal.
    """
    return zlib.crc32(np.ascontiguousarray(predictions, dtype=np.int64).tobytes())


@dataclass(frozen=True)
class TrialResult:
    """One trial's lifecycle: pristine -> degraded -> mitigated.

    ``*_signal`` is the mean winning wordline current (amperes): the
    sensing margin proxy that catches common-mode retention drift,
    which erodes read current long before it flips a decision.
    """

    point: int
    trial: int
    pristine_acc: float
    degraded_acc: float
    mitigated_acc: float
    pristine_signal: float
    degraded_signal: float
    mitigated_signal: float
    faulty_cells: int
    repaired_rows: int
    retired_tiles: int
    refreshed: int
    degraded_crc: int
    mitigated_crc: int


#: Shared-model campaign state, installed once per worker process by
#: :func:`_install_shared_model` (and once in-process on the serial
#: path) — the trained/quantised model every trial programs fresh
#: hardware from, plus the fixed evaluation split.  On the serial path
#: the slot lives in *this* process: :data:`_SHARED_SERIAL_LOCK`
#: serialises concurrent in-process shared-model campaigns against
#: each other, and :func:`run_campaign` clears the slot afterwards so
#: the model/dataset are not retained for the life of the process.
_SHARED_MODEL = None
_SHARED_SERIAL_LOCK = threading.Lock()


def _build_shared_model(config: "CampaignConfig", shared_seed: int):
    """Train/quantise once per campaign (shared-model mode).

    ``shared_seed`` is a concrete integer resolved once by
    :func:`run_campaign` in the parent process (the ``SeedSequence``
    child *after* the trial children, so the per-trial payload seeds
    are identical to the per-trial-retrain mode's).  Resolving in the
    parent matters for ``seed=None`` campaigns: every pool worker must
    install the *same* fresh-entropy model, not one of its own.
    """
    split_rng, model_rng = spawn_rngs(int(shared_seed), 2)
    data = load_dataset(config.dataset)
    X_tr, X_te, y_tr, y_te = train_test_split(
        data.data, data.target, test_size=config.test_size, seed=split_rng
    )
    pipe = FeBiMPipeline(
        q_f=config.q_f,
        q_l=config.q_l,
        seed=model_rng,
        backend=config.backend,
    ).fit(X_tr, y_tr)
    return (
        pipe.quantized_model_,
        pipe.engine_.spec,
        pipe.transform_levels(X_te),
        np.asarray(y_te),
    )


def _install_shared_model(config: "CampaignConfig", shared_seed: int) -> None:
    global _SHARED_MODEL
    _SHARED_MODEL = _build_shared_model(config, shared_seed)


def _run_trial(payload) -> TrialResult:
    """One campaign trial (module-level: pickled into pool workers).

    The default recipe is the paper's epoch protocol extended with a
    lifetime: independent split -> retrain -> program -> measure
    pristine -> inject faults/wear/age -> measure degraded -> apply the
    campaign's mitigation -> measure repaired.  In ``shared_model``
    mode the first two steps are hoisted out of the trial: the
    worker-installed model is programmed onto fresh per-trial hardware
    and scored on the campaign's fixed test split.
    """
    config, point_idx, trial_idx, seed = payload
    point = config.points[point_idx]
    spare_rows = config.spare_rows if config.mitigation == "spare-rows" else 0

    # Both recipe modes spawn the same four children — the split
    # stream goes unused in shared-model mode — so the fault/repair
    # draws at a given (seed, trial) are identical in both: shared-
    # model campaigns isolate hardware variance against the *same*
    # fault populations the per-trial-retrain mode samples.
    split_rng, engine_rng, fault_rng, repair_rng = spawn_rngs(int(seed), 4)
    engine = None
    if config.shared_model:
        model, spec, levels_te, y_te = _SHARED_MODEL
    else:
        data = load_dataset(config.dataset)
        X_tr, X_te, y_tr, y_te = train_test_split(
            data.data, data.target, test_size=config.test_size, seed=split_rng
        )
        pipe = FeBiMPipeline(
            q_f=config.q_f,
            q_l=config.q_l,
            spare_rows=spare_rows,
            seed=engine_rng,
            backend=config.backend,
        ).fit(X_tr, y_tr)
        model, spec = pipe.quantized_model_, pipe.engine_.spec
        levels_te = pipe.transform_levels(X_te)
        y_te = np.asarray(y_te)
        if config.max_rows is None:
            engine = pipe.engine_  # already programmed from engine_rng
    if engine is None:
        if config.max_rows is not None:
            engine = TiledFeBiM(
                model,
                max_rows=config.max_rows,
                spec=spec,
                seed=engine_rng,
                backend=config.backend,
            )
        else:
            engine = FeBiMEngine(
                model,
                spec=spec,
                spare_rows=spare_rows,
                seed=engine_rng,
                backend=config.backend,
            )

    def accuracy(predictions):
        return float(np.mean(predictions == y_te))

    def measure():
        """(predictions, mean winning current) from one batched read."""
        report = engine.infer_batch(levels_te)
        currents = getattr(report, "wordline_currents", None)
        if currents is None:
            currents = report.tile_currents
        return report.predictions, float(np.mean(np.max(currents, axis=1)))

    pristine_pred, pristine_signal = measure()
    pristine = accuracy(pristine_pred)

    arrays = [tile.backend for tile in getattr(engine, "tiles", [engine])]
    faulty_cells = 0
    if not point.fault.is_null:
        faulty_cells = inject_into_engine(engine, point.fault, fault_rng)
    if point.wear_cycles > 0:
        for array in arrays:
            WearState(array, config.endurance).add_cycles(point.wear_cycles)
    clocks = []
    if point.age_s > 0:
        for array in arrays:
            clock = AgeClock(array, config.retention)
            clock.advance(point.age_s)
            clocks.append(clock)

    degraded_pred, degraded_signal = measure()
    degraded = accuracy(degraded_pred)

    if config.mitigation == "none":
        mitigated_pred, mitigated_signal = degraded_pred, degraded_signal
        stats = {"refreshed": 0, "repaired_rows": [], "retired_tiles": []}
    else:
        stats = apply_mitigation(
            config.mitigation, engine, age_clock=clocks or None, seed=repair_rng
        )
        mitigated_pred, mitigated_signal = measure()

    return TrialResult(
        point=point_idx,
        trial=trial_idx,
        pristine_acc=pristine,
        degraded_acc=degraded,
        mitigated_acc=accuracy(mitigated_pred),
        pristine_signal=pristine_signal,
        degraded_signal=degraded_signal,
        mitigated_signal=mitigated_signal,
        faulty_cells=faulty_cells,
        repaired_rows=len(stats["repaired_rows"]),
        retired_tiles=len(stats["retired_tiles"]),
        refreshed=int(stats["refreshed"]),
        degraded_crc=_prediction_crc(degraded_pred),
        mitigated_crc=_prediction_crc(mitigated_pred),
    )


# --------------------------------------------------------------------- result
@dataclass(frozen=True)
class CampaignResult:
    """Aggregated campaign outcome, trial results in (point, trial) order."""

    config: CampaignConfig
    seed: Optional[int]
    workers: int
    results: Tuple[TrialResult, ...]

    def _per_point(self, attr: str) -> List[np.ndarray]:
        out = []
        for p in range(len(self.config.points)):
            out.append(
                np.array(
                    [getattr(r, attr) for r in self.results if r.point == p]
                )
            )
        return out

    def pristine_accuracy(self) -> List[np.ndarray]:
        return self._per_point("pristine_acc")

    def degraded_accuracy(self) -> List[np.ndarray]:
        return self._per_point("degraded_acc")

    def mitigated_accuracy(self) -> List[np.ndarray]:
        return self._per_point("mitigated_acc")

    def accuracy_curve(self) -> List[dict]:
        """Per-point summary rows — the accuracy-vs-condition curve."""
        # One scan of the results per attribute, not one per point.
        pristine_all = self._per_point("pristine_acc")
        degraded_all = self._per_point("degraded_acc")
        mitigated_all = self._per_point("mitigated_acc")
        faults_all = self._per_point("faulty_cells")
        p_sig_all = self._per_point("pristine_signal")
        d_sig_all = self._per_point("degraded_signal")
        m_sig_all = self._per_point("mitigated_signal")
        rows = []
        for p, point in enumerate(self.config.points):
            pristine = pristine_all[p]
            degraded = degraded_all[p]
            mitigated = mitigated_all[p]
            faults = faults_all[p]
            p_sig = p_sig_all[p]
            d_sig = d_sig_all[p]
            m_sig = m_sig_all[p]
            rows.append(
                {
                    "label": point.label,
                    "age_s": point.age_s,
                    "mean_faulty_cells": float(faults.mean()),
                    "pristine_mean": float(pristine.mean()),
                    "degraded_mean": float(degraded.mean()),
                    "degraded_min": float(degraded.min()),
                    "mitigated_mean": float(mitigated.mean()),
                    "recovered": float(mitigated.mean() - degraded.mean()),
                    "signal_ratio": float(np.mean(d_sig / p_sig)),
                    "mitigated_signal_ratio": float(np.mean(m_sig / p_sig)),
                }
            )
        return rows

    def time_to_refresh(
        self, max_drop: float = 0.02, min_signal: float = 0.5
    ) -> Optional[float]:
        """Earliest swept age needing a refresh — the refresh deadline.

        A point needs refresh when its mean degraded accuracy has
        fallen more than ``max_drop`` below pristine **or** its mean
        winning wordline current has dropped below ``min_signal`` of
        pristine.  The second condition matters: retention drift is
        largely common-mode, so the read *margin* collapses well before
        predictions start flipping — exactly what a retention screen
        must catch.  ``None`` when no aged point crosses either
        threshold inside the swept horizon.
        """
        aged = [row for row in self.accuracy_curve() if row["age_s"] > 0]
        for row in sorted(aged, key=lambda r: r["age_s"]):
            degraded = row["degraded_mean"] < row["pristine_mean"] - max_drop
            dimmed = row["signal_ratio"] < min_signal
            if degraded or dimmed:
                return row["age_s"]
        return None

    def to_dict(self) -> dict:
        """JSON-serialisable form (``febim reliability --json``)."""
        ttr = self.time_to_refresh()
        return {
            "bench": "reliability",
            "dataset": self.config.dataset,
            "backend": self.config.backend,
            "shared_model": self.config.shared_model,
            "trials": self.config.trials,
            "mitigation": self.config.mitigation,
            "seed": self.seed,
            "workers": self.workers,
            "points": [p.to_dict() for p in self.config.points],
            "curve": self.accuracy_curve(),
            "time_to_refresh_s": ttr,
        }


def run_campaign(
    config: CampaignConfig, seed: Optional[int] = 0, workers: int = 1
) -> CampaignResult:
    """Execute every (point, trial) pair; see the determinism contract.

    ``workers=1`` runs serially in-process; ``workers>1`` fans the same
    payloads over a ``multiprocessing`` pool.  Both orderings and all
    trial streams are fixed up-front, so the two are bit-identical.

    In ``shared_model`` mode the once-per-campaign training runs in the
    pool initializer (once per worker, from a dedicated stream), so the
    bit-identity contract holds there too — every worker derives the
    identical model.
    """
    check_positive_int(workers, "workers")
    n_points = len(config.points)
    n_trials = n_points * config.trials
    # One SeedSequence root for everything: children 0..n-1 seed the
    # trials (identical in both recipe modes — spawn children are
    # index-stable), child n seeds the shared-model training.  The
    # shared seed is resolved HERE, in the parent: with seed=None each
    # worker would otherwise draw its own entropy and install a
    # different model, silently breaking the bit-identity contract.
    seeds = trial_seeds(seed, n_trials + 1 if config.shared_model else n_trials)
    payloads = [
        (config, p, t, seeds[p * config.trials + t])
        for p in range(n_points)
        for t in range(config.trials)
    ]

    def _map():
        initializer = initargs = None
        if config.shared_model:
            initializer, initargs = _install_shared_model, (config, seeds[n_trials])
        return parallel_map(
            _run_trial,
            payloads,
            workers,
            initializer=initializer,
            initargs=initargs or (),
        )

    if config.shared_model and runs_in_process(workers, len(payloads)):
        # parallel_map runs these in-process, installing the shared
        # model into *this* process's slot: hold the lock so
        # concurrent in-process campaigns cannot clobber each other
        # mid-run, and clear the slot afterwards so the model/dataset
        # are not pinned in memory for the life of the process.
        global _SHARED_MODEL
        with _SHARED_SERIAL_LOCK:
            try:
                results = _map()
            finally:
                _SHARED_MODEL = None
    else:
        results = _map()
    return CampaignResult(
        config=config, seed=seed, workers=workers, results=tuple(results)
    )


def format_campaign(result: CampaignResult) -> str:
    """Human-readable campaign table (``febim reliability``)."""
    lines = [
        f"reliability campaign on {result.config.dataset} "
        f"[{result.config.backend}]: "
        f"{len(result.config.points)} points x {result.config.trials} trials, "
        f"mitigation={result.config.mitigation}, workers={result.workers}"
        + (", shared model" if result.config.shared_model else ""),
        "condition        faults  pristine  degraded   (min)   mitigated  "
        "recovered  signal",
    ]
    for row in result.accuracy_curve():
        lines.append(
            f"{row['label']:<16s} {row['mean_faulty_cells']:6.1f}  "
            f"{row['pristine_mean'] * 100:7.2f}%  "
            f"{row['degraded_mean'] * 100:7.2f}%  "
            f"{row['degraded_min'] * 100:6.2f}%  "
            f"{row['mitigated_mean'] * 100:8.2f}%  "
            f"{row['recovered'] * 100:+8.2f}%  "
            f"{row['signal_ratio'] * 100:5.1f}%"
        )
    ttr = result.time_to_refresh()
    if any(p.age_s > 0 for p in result.config.points):
        lines.append(
            "time-to-refresh: "
            + (f"{ttr:g} s" if ttr is not None else "beyond swept horizon")
        )
    return "\n".join(lines)
