"""Repair strategies: detect degraded cells, then route around or reset.

Detection is *behavioural*, not oracular: :func:`scan_faulty_cells`
performs the BIST pass a real array controller would — one
all-columns-activated verify read, compared against each cell's
programmed target current — so it sees exactly what the hardware can
see.  Faults whose current error stays inside the scan tolerance are
indistinguishable from programming residuals and legitimately escape
(they are also, by the same argument, mostly harmless).

Three repair strategies, matching the fault taxonomy:

* **refresh** (:func:`refresh_engine`) — reprogram the array from its
  level matrix.  Clears retention drift and accumulated write disturb;
  powerless against stuck-at defects.
* **spare rows** (:func:`spare_row_repair`) — remap rows with detected
  hard faults onto manufactured spares
  (:meth:`~repro.crossbar.array.FeFETCrossbar.remap_row`).
* **tile retirement** (:func:`retire_faulty_tiles`) — for hierarchical
  :class:`~repro.crossbar.tiling.TiledFeBiM` engines, swap any tile
  with detected faults for freshly programmed hardware.

:func:`apply_mitigation` dispatches by name so campaigns
(:mod:`repro.reliability.campaign`) and the CLI can select a strategy
per run.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.mapping import levels_to_currents
from repro.crossbar.array import FeFETCrossbar
from repro.utils.rng import RngLike, spawn_rngs

#: Strategy names accepted by :func:`apply_mitigation`.
MITIGATIONS = ("none", "refresh", "spare-rows", "retire-tiles")


def scan_faulty_cells(
    crossbar: FeFETCrossbar, tolerance: Optional[float] = None
) -> np.ndarray:
    """Behavioural BIST: flag cells whose read current misses its target.

    One all-columns-activated verify read (the noise-free maintenance
    read a controller schedules between traffic) against the per-cell
    expectation: the spec's target current for programmed cells, the
    erased-state leakage for unprogrammed ones.  Returns a boolean
    logical ``(rows, cols)`` map of cells outside ``tolerance``
    (default 40 % of the level separation — wide enough to pass
    programming residuals and benign drift, tight enough to catch
    stuck cells and dead lines).

    The measurement comes from the cached noise-free read matrices,
    *not* a live ``current_matrix()`` read: a maintenance scan must
    neither flag phantom faults out of per-read noise (at a realistic
    ``sigma_read`` every row would fail a noisy compare) nor advance
    the array's RNG stream and silently shift subsequent served reads.
    """
    spec = crossbar.spec
    if tolerance is None:
        sep = spec.level_separation()
        tolerance = 0.4 * sep if sep > 0 else 0.1 * spec.i_max
    # I_on with every column activated == the all-on verify read.
    measured = crossbar.read_current_matrices()[0]
    levels = crossbar.programmed_levels()
    erased_current = float(
        crossbar.template.idvg.current(
            crossbar.params.v_on, crossbar.template.vth_high
        )
    )
    expected = np.full(levels.shape, erased_current)
    programmed = levels >= 0
    if programmed.any():
        expected[programmed] = levels_to_currents(levels[programmed], spec)
    return np.abs(measured - expected) > tolerance


def faulty_rows(
    crossbar: FeFETCrossbar, tolerance: Optional[float] = None
) -> np.ndarray:
    """Logical row indices with at least one BIST-flagged cell."""
    return np.flatnonzero(scan_faulty_cells(crossbar, tolerance).any(axis=1))


def refresh_engine(engine, age_clock=None) -> int:
    """Refresh-by-reprogram: replay the engine's level matrix in place.

    Works on flat :class:`~repro.core.engine.FeBiMEngine` and tiled
    :class:`~repro.crossbar.tiling.TiledFeBiM` engines (each tile is
    reprogrammed).  Clears retention drift and write disturb through
    the block erase; stuck-at defects survive.  Resets ``age_clock``
    (or each clock of an iterable) when given.  Returns the number of
    arrays reprogrammed.
    """
    refreshed = 0
    for tile in getattr(engine, "tiles", [engine]):
        tile.crossbar.program_matrix(tile.level_matrix)
        refreshed += 1
    if age_clock is not None:
        clocks = age_clock if isinstance(age_clock, (list, tuple)) else [age_clock]
        for clock in clocks:
            clock.reset()
    return refreshed


def spare_row_repair(
    engine, rows: Optional[np.ndarray] = None, tolerance: Optional[float] = None
) -> List[int]:
    """Remap BIST-flagged rows onto spare hardware; returns repaired rows.

    ``rows`` overrides the scan (e.g. rows an external monitor already
    localised); otherwise flagged rows are repaired worst-first (most
    flagged cells), since with a dry spare pool a *partial* repair that
    leaves one stuck-on row unmatched can be worse than none — the
    surviving defects no longer cancel across competing wordlines.
    Repairs stop silently when the pool runs dry; the caller sees which
    rows made it and can escalate for the rest.
    """
    xbar = engine.crossbar
    if rows is None:
        flagged = scan_faulty_cells(xbar, tolerance).sum(axis=1)
        rows = np.flatnonzero(flagged)
        rows = rows[np.argsort(-flagged[rows], kind="stable")]
    repaired: List[int] = []
    for row in rows:
        if xbar.spare_rows_free == 0:
            break
        xbar.remap_row(int(row))
        repaired.append(int(row))
    return repaired


def retire_faulty_tiles(
    tiled, tolerance: Optional[float] = None, seed: RngLike = None
) -> List[int]:
    """Retire every tile with BIST-flagged cells; returns retired indices.

    Replacement hardware draws from per-tile child streams of ``seed``
    (``SeedSequence`` spawning), so the repair is deterministic under a
    fixed seed regardless of which subset of tiles happens to be
    faulty.
    """
    seeds = spawn_rngs(seed, tiled.n_tiles)
    retired: List[int] = []
    for index, tile in enumerate(tiled.tiles):
        if scan_faulty_cells(tile.crossbar, tolerance).any():
            tiled.retire_tile(index, seed=seeds[index])
            retired.append(index)
    return retired


def apply_mitigation(
    name: str,
    engine,
    age_clock=None,
    seed: RngLike = None,
    tolerance: Optional[float] = None,
) -> dict:
    """Dispatch one named strategy against an engine; returns its stats.

    The returned dict always carries ``refreshed`` (arrays
    reprogrammed), ``repaired_rows`` and ``retired_tiles`` so campaign
    aggregation never branches on the strategy.
    """
    if name not in MITIGATIONS:
        raise ValueError(f"mitigation must be one of {MITIGATIONS}, got {name!r}")
    stats = {"refreshed": 0, "repaired_rows": [], "retired_tiles": []}
    if name == "refresh":
        stats["refreshed"] = refresh_engine(engine, age_clock)
    elif name == "spare-rows":
        stats["repaired_rows"] = spare_row_repair(engine, tolerance=tolerance)
    elif name == "retire-tiles":
        stats["retired_tiles"] = retire_faulty_tiles(
            engine, tolerance=tolerance, seed=seed
        )
    return stats
