"""Repair strategies: detect degraded cells, then route around or reset.

Detection is *behavioural*, not oracular: :func:`scan_faulty_cells`
performs the BIST pass a real array controller would — one
all-columns-activated verify read, compared against each cell's
programmed target current — so it sees exactly what the hardware can
see.  Faults whose current error stays inside the scan tolerance are
indistinguishable from programming residuals and legitimately escape
(they are also, by the same argument, mostly harmless).

Three repair strategies, matching the fault taxonomy:

* **refresh** (:func:`refresh_engine`) — reprogram the array from its
  level matrix.  Clears retention drift and accumulated write disturb;
  powerless against stuck-at defects.
* **spare rows** (:func:`spare_row_repair`) — remap rows with detected
  hard faults onto manufactured spares
  (:meth:`~repro.crossbar.array.FeFETCrossbar.remap_row`).
* **tile retirement** (:func:`retire_faulty_tiles`) — for hierarchical
  :class:`~repro.crossbar.tiling.TiledFeBiM` engines, swap any tile
  with detected faults for freshly programmed hardware.

:func:`apply_mitigation` dispatches by name so campaigns
(:mod:`repro.reliability.campaign`) and the CLI can select a strategy
per run.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.rng import RngLike, spawn_rngs

#: Strategy names accepted by :func:`apply_mitigation`.
MITIGATIONS = ("none", "refresh", "spare-rows", "retire-tiles")


def scan_faulty_cells(
    crossbar, tolerance: Optional[float] = None
) -> np.ndarray:
    """Behavioural BIST: flag cells whose read current misses its target.

    Thin dispatcher: ``crossbar`` is anything with a ``bist_scan`` —
    an :class:`~repro.backends.base.ArrayBackend` (each technology
    knows its own expected read) or a raw
    :class:`~repro.crossbar.array.FeFETCrossbar` (whose
    :meth:`~repro.crossbar.array.FeFETCrossbar.bist_scan` holds the
    FeFET verify-read logic).  Returns a boolean logical ``(rows,
    cols)`` map of cells outside the scan tolerance.
    """
    return crossbar.bist_scan(tolerance)


def faulty_rows(
    crossbar, tolerance: Optional[float] = None
) -> np.ndarray:
    """Logical row indices with at least one BIST-flagged cell."""
    return np.flatnonzero(scan_faulty_cells(crossbar, tolerance).any(axis=1))


def refresh_engine(engine, age_clock=None) -> int:
    """Refresh-by-reprogram: replay the engine's level matrix in place.

    Works on flat :class:`~repro.core.engine.FeBiMEngine` and tiled
    :class:`~repro.crossbar.tiling.TiledFeBiM` engines (each tile is
    reprogrammed).  Works on every backend — a reprogram is the one
    mutation the :class:`~repro.backends.base.ArrayBackend` protocol
    makes mandatory.  Clears retention drift and write disturb through
    the block erase (where the technology has any); stuck-at defects
    survive.  Resets ``age_clock`` (or each clock of an iterable) when
    given.  Returns the number of arrays reprogrammed.
    """
    refreshed = 0
    for tile in getattr(engine, "tiles", [engine]):
        tile.backend.program(tile.level_matrix)
        refreshed += 1
    if age_clock is not None:
        clocks = age_clock if isinstance(age_clock, (list, tuple)) else [age_clock]
        for clock in clocks:
            clock.reset()
    return refreshed


def spare_row_repair(
    engine, rows: Optional[np.ndarray] = None, tolerance: Optional[float] = None
) -> List[int]:
    """Remap BIST-flagged rows onto spare hardware; returns repaired rows.

    ``rows`` overrides the scan (e.g. rows an external monitor already
    localised); otherwise flagged rows are repaired worst-first (most
    flagged cells), since with a dry spare pool a *partial* repair that
    leaves one stuck-on row unmatched can be worse than none — the
    surviving defects no longer cancel across competing wordlines.
    Repairs stop silently when the pool runs dry; the caller sees which
    rows made it and can escalate for the rest.  Requires a backend
    with the ``spare-rows`` capability (the FeFET reference); others
    raise :class:`~repro.backends.base.CapabilityError` — use refresh
    or tile retirement there instead.
    """
    xbar = engine.backend
    if rows is None:
        flagged = scan_faulty_cells(xbar, tolerance).sum(axis=1)
        rows = np.flatnonzero(flagged)
        rows = rows[np.argsort(-flagged[rows], kind="stable")]
    repaired: List[int] = []
    for row in rows:
        if xbar.spare_rows_free == 0:
            break
        xbar.remap_row(int(row))
        repaired.append(int(row))
    return repaired


def retire_faulty_tiles(
    tiled, tolerance: Optional[float] = None, seed: RngLike = None
) -> List[int]:
    """Retire every tile with BIST-flagged cells; returns retired indices.

    Replacement hardware draws from per-tile child streams of ``seed``
    (``SeedSequence`` spawning), so the repair is deterministic under a
    fixed seed regardless of which subset of tiles happens to be
    faulty.
    """
    seeds = spawn_rngs(seed, tiled.n_tiles)
    retired: List[int] = []
    for index, tile in enumerate(tiled.tiles):
        if scan_faulty_cells(tile.backend, tolerance).any():
            tiled.retire_tile(index, seed=seeds[index])
            retired.append(index)
    return retired


def apply_mitigation(
    name: str,
    engine,
    age_clock=None,
    seed: RngLike = None,
    tolerance: Optional[float] = None,
) -> dict:
    """Dispatch one named strategy against an engine; returns its stats.

    The returned dict always carries ``refreshed`` (arrays
    reprogrammed), ``repaired_rows`` and ``retired_tiles`` so campaign
    aggregation never branches on the strategy.
    """
    if name not in MITIGATIONS:
        raise ValueError(f"mitigation must be one of {MITIGATIONS}, got {name!r}")
    stats = {"refreshed": 0, "repaired_rows": [], "retired_tiles": []}
    if name == "refresh":
        stats["refreshed"] = refresh_engine(engine, age_clock)
    elif name == "spare-rows":
        stats["repaired_rows"] = spare_row_repair(engine, tolerance=tolerance)
    elif name == "retire-tiles":
        stats["retired_tiles"] = retire_faulty_tiles(
            engine, tolerance=tolerance, seed=seed
        )
    return stats
