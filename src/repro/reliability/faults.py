"""Fault and aging models over a programmed array backend.

The device layer has carried retention (:class:`RetentionModel`) and
endurance (:class:`EnduranceModel`) physics since the seed without any
system-level consumer.  This module turns them — plus hard stuck-at
defects — into injectable lifetime state, driven entirely through the
backend mutation API (:meth:`~repro.backends.base.ArrayBackend.
inject_stuck_faults` / :meth:`~repro.backends.base.ArrayBackend.
apply_vth_drift` / :meth:`~repro.backends.base.ArrayBackend.
set_template`), so every read after an injection goes through a
correctly invalidated read cache.  The injectors are duck-typed over
that surface: they accept an :class:`~repro.backends.base.ArrayBackend`
or a raw :class:`~repro.crossbar.array.FeFETCrossbar` (which predates
the protocol and exposes the same methods).  A backend that does not
support a mutation raises
:class:`~repro.backends.base.CapabilityError` naming the gap —
reliability degrades explicitly, never silently.

Fault taxonomy
--------------

* **stuck-on / stuck-off cells** — random hard defects: a cell's read
  current is pinned regardless of gate bias.  Survive erase and
  reprogram; only spare-row remapping or tile retirement route around
  them.
* **dead rows** — an open wordline contact: every cell on the row reads
  zero (the row can never win the WTA).
* **dead columns** — a failed bitline driver, in either polarity: stuck
  *off* (the column never activates; its evidence is lost) or stuck
  *on* (the column conducts into every read; every row gains a
  spurious current term — the classic hard-to-miss accuracy killer).
* **retention drift** — V_TH relaxation of partially switched states
  under a monotonic :class:`AgeClock`; soft, and fully cleared by a
  refresh (reprogram).
* **write wear** — memory-window narrowing with cumulative program
  cycles (:class:`WearState`), applied by swapping an endurance-aged
  template device into the array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.devices.endurance import EnduranceModel
from repro.devices.retention import RetentionModel
from repro.utils.rng import RngLike, ensure_rng

_DEAD_COL_MODES = ("off", "on")


@dataclass(frozen=True)
class FaultSpec:
    """A sampled hard-fault population for one array.

    Attributes
    ----------
    stuck_on_rate / stuck_off_rate:
        Independent per-cell probabilities of the two stuck polarities.
    dead_rows / dead_cols:
        Count of whole wordlines / bitlines to kill (sampled without
        replacement).
    dead_col_mode:
        ``"off"`` — the column never conducts; ``"on"`` — the column
        conducts into every read (driver stuck active).
    """

    stuck_on_rate: float = 0.0
    stuck_off_rate: float = 0.0
    dead_rows: int = 0
    dead_cols: int = 0
    dead_col_mode: str = "off"

    def __post_init__(self) -> None:
        for name in ("stuck_on_rate", "stuck_off_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate}")
        for name in ("dead_rows", "dead_cols"):
            if int(getattr(self, name)) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.dead_col_mode not in _DEAD_COL_MODES:
            raise ValueError(
                f"dead_col_mode must be one of {_DEAD_COL_MODES}, "
                f"got {self.dead_col_mode!r}"
            )

    @property
    def is_null(self) -> bool:
        """True when the spec injects nothing at all."""
        return (
            self.stuck_on_rate == 0.0
            and self.stuck_off_rate == 0.0
            and self.dead_rows == 0
            and self.dead_cols == 0
        )

    def to_dict(self) -> dict:
        return {
            "stuck_on_rate": self.stuck_on_rate,
            "stuck_off_rate": self.stuck_off_rate,
            "dead_rows": self.dead_rows,
            "dead_cols": self.dead_cols,
            "dead_col_mode": self.dead_col_mode,
        }


@dataclass(frozen=True)
class FaultReport:
    """What one injection pass actually planted.

    Cell counts are the *visible* (logically mapped) stuck cells after
    the injection — including overlaps with faults planted earlier.
    """

    stuck_on_cells: int
    stuck_off_cells: int
    dead_rows: Tuple[int, ...]
    dead_cols: Tuple[int, ...]

    @property
    def total_cells(self) -> int:
        return self.stuck_on_cells + self.stuck_off_cells

    def to_dict(self) -> dict:
        return {
            "stuck_on_cells": self.stuck_on_cells,
            "stuck_off_cells": self.stuck_off_cells,
            "dead_rows": list(self.dead_rows),
            "dead_cols": list(self.dead_cols),
        }


class FaultInjector:
    """Samples a :class:`FaultSpec` and plants it into one array.

    ``crossbar`` is any object with the stuck-fault mutation surface —
    an :class:`~repro.backends.base.ArrayBackend` or a raw
    :class:`~repro.crossbar.array.FeFETCrossbar`.

    The draw order is fixed (stuck-on cells, stuck-off cells, dead
    rows, dead columns), so a given ``(spec, rng state)`` always plants
    the identical fault population — the property the campaign runner's
    ``workers=1`` vs ``workers=N`` bit-identity rests on.
    """

    def __init__(self, crossbar, seed: RngLike = None):
        self.crossbar = crossbar
        self._rng = ensure_rng(seed)

    def inject(self, spec: FaultSpec) -> FaultReport:
        """Sample and plant one fault population; returns the report.

        A null spec touches nothing — not even the RNG — so zero-fault
        campaigns stay bit-identical to a pristine engine.
        """
        xbar = self.crossbar
        rows, cols = xbar.rows, xbar.cols
        if spec.is_null:
            return FaultReport(0, 0, (), ())
        on = np.zeros((rows, cols), dtype=bool)
        off = np.zeros((rows, cols), dtype=bool)
        if spec.stuck_on_rate > 0.0:
            on |= self._rng.random((rows, cols)) < spec.stuck_on_rate
        if spec.stuck_off_rate > 0.0:
            off |= self._rng.random((rows, cols)) < spec.stuck_off_rate
        dead_rows: Tuple[int, ...] = ()
        if spec.dead_rows > 0:
            chosen = self._rng.choice(
                rows, size=min(spec.dead_rows, rows), replace=False
            )
            dead_rows = tuple(sorted(int(r) for r in chosen))
            off[list(dead_rows), :] = True
        dead_cols: Tuple[int, ...] = ()
        if spec.dead_cols > 0:
            chosen = self._rng.choice(
                cols, size=min(spec.dead_cols, cols), replace=False
            )
            dead_cols = tuple(sorted(int(c) for c in chosen))
            target = on if spec.dead_col_mode == "on" else off
            target[:, list(dead_cols)] = True
        xbar.inject_stuck_faults(stuck_on=on, stuck_off=off)
        mask_on, mask_off = xbar.stuck_fault_masks()
        return FaultReport(
            stuck_on_cells=int(np.count_nonzero(mask_on)),
            stuck_off_cells=int(np.count_nonzero(mask_off)),
            dead_rows=dead_rows,
            dead_cols=dead_cols,
        )

    def inject_dead_row(self, row: int) -> None:
        """Kill one specific wordline (open contact)."""
        mask = np.zeros((self.crossbar.rows, self.crossbar.cols), dtype=bool)
        mask[row, :] = True
        self.crossbar.inject_stuck_faults(stuck_off=mask)

    def inject_dead_column(self, col: int, mode: str = "off") -> None:
        """Kill one specific bitline in the chosen polarity."""
        if mode not in _DEAD_COL_MODES:
            raise ValueError(f"mode must be one of {_DEAD_COL_MODES}, got {mode!r}")
        mask = np.zeros((self.crossbar.rows, self.crossbar.cols), dtype=bool)
        mask[:, col] = True
        if mode == "on":
            self.crossbar.inject_stuck_faults(stuck_on=mask)
        else:
            self.crossbar.inject_stuck_faults(stuck_off=mask)


def inject_into_engine(engine, spec: FaultSpec, seed: RngLike = None) -> int:
    """Plant one fault population across a flat *or* tiled engine.

    Per-cell stuck rates apply i.i.d. to every array (cells are
    disjoint, so the rate semantics do not change with tiling).  Whole
    dead *rows* are sampled over the engine's global row space and
    routed to the owning tile — ``dead_rows=1`` always means one dead
    wordline in the whole engine, however it is tiled.  Dead *columns*
    are per physical array (each tile has its own bitline drivers), so
    one dead column means one failed driver in one sampled tile.

    Returns the number of logical cells left pinned across all arrays.
    """
    rng = ensure_rng(seed)
    tiles = getattr(engine, "tiles", None)
    if tiles is None:
        FaultInjector(engine.backend, rng).inject(spec)
        return engine.backend.stuck_fault_count()
    cell_spec = FaultSpec(
        stuck_on_rate=spec.stuck_on_rate, stuck_off_rate=spec.stuck_off_rate
    )
    injectors = [FaultInjector(tile.backend, rng) for tile in tiles]
    if not cell_spec.is_null:
        for injector in injectors:
            injector.inject(cell_spec)
    if spec.dead_rows > 0:
        total_rows = engine.total_rows
        chosen = rng.choice(
            total_rows, size=min(spec.dead_rows, total_rows), replace=False
        )
        for global_row in sorted(int(r) for r in chosen):
            for t, rows in enumerate(engine.tile_rows):
                local = np.flatnonzero(rows == global_row)
                if local.size:
                    injectors[t].inject_dead_row(int(local[0]))
                    break
    if spec.dead_cols > 0:
        n_tiles = len(tiles)
        cols = tiles[0].backend.cols
        drivers = n_tiles * cols
        chosen = rng.choice(
            drivers, size=min(spec.dead_cols, drivers), replace=False
        )
        for driver in sorted(int(d) for d in chosen):
            t, col = divmod(driver, cols)
            injectors[t].inject_dead_column(col, mode=spec.dead_col_mode)
    return sum(tile.backend.stuck_fault_count() for tile in tiles)


class AgeClock:
    """A monotonic bake-time clock driving retention drift into an array.

    Each :meth:`advance` applies the *incremental* V_TH drift between
    the old and new age — ``shift(p, t1 + dt) - shift(p, t1)`` at the
    cells' current polarisation — through
    :meth:`~repro.crossbar.array.FeFETCrossbar.apply_vth_drift`, so
    arbitrary advance schedules land on the same total drift as one
    jump (the retention model is a pure function of total age).  The
    clock only moves forward; a refresh (reprogram) clears the array's
    drift, after which :meth:`reset` restarts the bake.

    ``crossbar`` is any object with the drift surface
    (``polarization_matrix`` / ``apply_vth_drift``) — a backend
    declaring the ``vth-drift`` capability or a raw FeFET crossbar;
    others raise :class:`~repro.backends.base.CapabilityError` on the
    first :meth:`advance`.  With ``crossbar=None`` the clock is a pure
    *ledger*: :meth:`advance` only accumulates ``age_s`` and no device
    is touched — the bookkeeping mode the serving autoscaler uses to
    track a hardware slot's bake time without perturbing live arrays.
    """

    def __init__(
        self, crossbar=None, retention: Optional[RetentionModel] = None
    ):
        self.crossbar = crossbar
        self.retention = retention or RetentionModel()
        self.age_s = 0.0

    def advance(self, dt_s: float) -> float:
        """Bake for ``dt_s`` more seconds; returns the new total age."""
        if dt_s < 0:
            raise ValueError(f"age clock only moves forward, got dt={dt_s}")
        if dt_s > 0:
            if self.crossbar is not None:
                pol = self.crossbar.polarization_matrix()
                delta = self.retention.vth_shift(
                    pol, self.age_s + dt_s
                ) - self.retention.vth_shift(pol, self.age_s)
                self.crossbar.apply_vth_drift(delta)
            self.age_s += dt_s
        return self.age_s

    def reset(self) -> None:
        """Restart the bake clock (call after a refresh reprogram)."""
        self.age_s = 0.0


#: Window fraction treated as end of usable life for the
#: :attr:`WearState.fraction_used` gauge: at half the pristine memory
#: window, sensing margin is gone for practical purposes.
END_OF_LIFE_WINDOW = 0.5


class WearState:
    """Cumulative program/erase cycle wear for one array.

    Remembers the pristine template so repeated :meth:`add_cycles`
    calls age from the true origin (the endurance model maps *total*
    cycles to a window factor, not increments).

    ``crossbar`` is any object with the wear surface (``template`` /
    ``set_template``) — a backend declaring the ``wear`` capability or
    a raw FeFET crossbar; others raise
    :class:`~repro.backends.base.CapabilityError` at construction
    (reading the pristine template).  With ``crossbar=None`` the state
    is a pure *ledger*: cycles are counted (seeding via ``cycles``)
    but no template is ever rewritten — serving keeps bit-identical
    engines while the autoscaler still ranks hardware by
    :attr:`fraction_used`.
    """

    def __init__(
        self,
        crossbar=None,
        endurance: Optional[EnduranceModel] = None,
        cycles: float = 0.0,
    ):
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        self.crossbar = crossbar
        self.endurance = endurance or EnduranceModel()
        self._pristine = None if crossbar is None else crossbar.template
        self.cycles = float(cycles)

    def add_cycles(self, n: float) -> float:
        """Record ``n`` more program/erase cycles; returns the total."""
        if n < 0:
            raise ValueError(f"cycles must be >= 0, got {n}")
        if n > 0:
            self.cycles += float(n)
            if self.crossbar is not None:
                self.crossbar.set_template(
                    self.endurance.aged_device(self._pristine, self.cycles)
                )
        return self.cycles

    @property
    def fraction_used(self) -> float:
        """Fraction of usable life consumed (0 = pristine, 1 = the
        window has fatigued to :data:`END_OF_LIFE_WINDOW`); may exceed
        1 for hardware cycled past end of life."""
        life = self.endurance.cycles_to_window_fraction(END_OF_LIFE_WINDOW)
        return self.cycles / life
