"""Hardware-plane observability: read-margin probes and a device-health ledger.

The serving plane became inspectable in the observability layer
(:mod:`repro.serving.observability`): spans, flight events, metrics.
The *hardware* underneath stayed a black box — yet the aging campaigns
show the failure sequence clearly (``benchmarks/RELIABILITY.md``): the
winning-wordline signal collapses long before a prediction flips, so
by the time a canary disagrees the array has been degraded for
decades of bake time.  This module turns that early signal into a
first-class surface:

* :class:`MarginProbe` derives per-read margin statistics — the
  relative gap between the winning and runner-up wordline currents,
  and the signal ratio against the deploy-time pristine baseline —
  from batch reports the serving path *already produces*.  No extra
  array reads: probing is arithmetic on currents that were sensed
  anyway.
* :class:`DeviceHealthLedger` is a bounded ring of per-replica
  :class:`DeviceHealthSample` rows (wear, bake age, spare-row
  inventory, BIST fault count, margin stats), filled on the
  maintenance cadence — the hardware twin of the serving plane's
  metrics ring.
* :class:`HardwareGauges` folds the latest sample per replica into the
  worst-case scalar gauges the Prometheus exporter publishes.

Everything here is pure bookkeeping over numpy arrays; nothing imports
the serving layer (the serving layer imports us), and nothing touches
a device — the read-path cost of a disabled probe is zero by
construction.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive_int

#: Default device-health ledger capacity (samples retained).
LEDGER_CAPACITY = 2048


def _or_none(value) -> Optional[float]:
    """NaN-safe serialisation: strict JSON has no NaN token."""
    if value is None:
        return None
    value = float(value)
    return None if value != value else value


# ---------------------------------------------------------------- margin math
def margin_signal(currents: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample ``(margins, signals)`` from a batch of read currents.

    ``currents`` is the ``(n, rows)`` result of a batched read (wordline
    currents, or per-tile winner currents for hierarchical engines).
    ``signals`` is each sample's winning current; ``margins`` the
    *relative* winner-vs-runner-up gap ``(win - runner) / win`` — the
    quantity the WTA sense amplifier has to resolve, normalised so one
    threshold works across technologies with different current scales.
    With fewer than two rows there is no runner-up and margins are NaN.
    """
    currents = np.asarray(currents, dtype=float)
    if currents.ndim != 2:
        raise ValueError(
            f"currents must be a (n, rows) batch, got shape {currents.shape}"
        )
    if currents.shape[1] < 2:
        signals = currents.max(axis=1) if currents.shape[1] else np.zeros(
            currents.shape[0]
        )
        return np.full(currents.shape[0], np.nan), signals
    top2 = np.partition(currents, currents.shape[1] - 2, axis=1)[:, -2:]
    runner = top2[:, 0]
    win = top2[:, 1]
    margins = (win - runner) / np.maximum(np.abs(win), 1e-30)
    return margins, win


def sample_margin(currents_row: np.ndarray) -> Tuple[float, float]:
    """``(margin, signal)`` of a single sample's ``(rows,)`` currents.

    The execute-span helper: cheap enough to run per *traced* request
    (one partition over a handful of wordlines), never on the untraced
    hot path.
    """
    margins, signals = margin_signal(
        np.asarray(currents_row, dtype=float)[None, :]
    )
    return float(margins[0]), float(signals[0])


@dataclass(frozen=True)
class MarginReading:
    """Margin statistics of one canary batch against its baseline.

    ``margin_p5`` / ``margin_p50`` are percentiles of the per-sample
    relative winner-vs-runner-up gap (p5 is the early-warning gauge —
    the *weakest* reads fail first); ``signal`` the mean winning
    current; ``signal_ratio`` that signal against the deploy-time
    pristine baseline (1.0 = pristine, falling under retention drift).
    """

    n: int
    margin_p5: float
    margin_p50: float
    signal: float
    signal_ratio: float

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "margin_p5": _or_none(self.margin_p5),
            "margin_p50": _or_none(self.margin_p50),
            "signal": _or_none(self.signal),
            "signal_ratio": _or_none(self.signal_ratio),
        }


class MarginProbe:
    """Derives margin statistics from batch reports, against a baseline.

    Construct with the pristine canary currents at deploy/install time
    (the very report the probe/install path already ran); every later
    :meth:`observe` call scores a fresh currents batch.  Stateless
    beyond the baseline — observing never touches hardware.
    """

    def __init__(self, baseline_currents: np.ndarray):
        margins, signals = margin_signal(baseline_currents)
        self.baseline_signal = float(np.mean(np.abs(signals)))
        finite = margins[margins == margins]
        self.baseline_margin_p50 = (
            float(np.median(finite)) if finite.size else float("nan")
        )

    def observe(self, currents: np.ndarray) -> MarginReading:
        """Score one batch of read currents against the baseline."""
        margins, signals = margin_signal(currents)
        finite = margins[margins == margins]
        if finite.size:
            p5, p50 = np.percentile(finite, [5.0, 50.0])
        else:
            p5 = p50 = float("nan")
        signal = float(np.mean(np.abs(signals)))
        ratio = signal / max(self.baseline_signal, 1e-30)
        return MarginReading(
            n=int(margins.shape[0]),
            margin_p5=float(p5),
            margin_p50=float(p50),
            signal=signal,
            signal_ratio=float(ratio),
        )

    def __repr__(self) -> str:
        return f"MarginProbe(baseline_signal={self.baseline_signal:.3e})"


# -------------------------------------------------------------------- ledger
@dataclass(frozen=True)
class DeviceHealthSample:
    """One per-replica hardware health observation.

    ``spares_free`` / ``faulty_cells`` are ``None`` when the replica's
    backend lacks the matching capability (no spare rows manufactured,
    no BIST result yet) — absence of data, not zero.  Margin fields are
    NaN until the first canary observation lands.
    """

    t_s: float
    replica: str
    state: str
    wear_fraction: float
    age_s: float
    spares_free: Optional[int] = None
    faulty_cells: Optional[int] = None
    margin_p5: float = float("nan")
    margin_p50: float = float("nan")
    signal_ratio: float = float("nan")

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "replica": self.replica,
            "state": self.state,
            "wear_fraction": self.wear_fraction,
            "age_s": self.age_s,
            "spares_free": self.spares_free,
            "faulty_cells": self.faulty_cells,
            "margin_p5": _or_none(self.margin_p5),
            "margin_p50": _or_none(self.margin_p50),
            "signal_ratio": _or_none(self.signal_ratio),
        }


class DeviceHealthLedger:
    """Thread-safe bounded ring of :class:`DeviceHealthSample` rows.

    The hardware plane's flight recorder: the maintenance cadence
    appends one row per replica per sweep, the ring bounds memory for
    long-lived servers, and :meth:`latest` answers the dashboard
    question — the current health of every replica — in one call.
    """

    def __init__(self, capacity: int = LEDGER_CAPACITY):
        check_positive_int(capacity, "capacity")
        self._lock = threading.Lock()
        self._samples: List[DeviceHealthSample] = []
        self._capacity = capacity

    def record(self, sample: DeviceHealthSample) -> DeviceHealthSample:
        """Append one sample (oldest rows evicted past capacity)."""
        with self._lock:
            self._samples.append(sample)
            if len(self._samples) > self._capacity:
                del self._samples[: len(self._samples) - self._capacity]
        return sample

    def sample(
        self,
        replica: str,
        state: str,
        wear_fraction: float,
        age_s: float,
        spares_free: Optional[int] = None,
        faulty_cells: Optional[int] = None,
        margin_p5: float = float("nan"),
        margin_p50: float = float("nan"),
        signal_ratio: float = float("nan"),
        t_s: Optional[float] = None,
    ) -> DeviceHealthSample:
        """Build and :meth:`record` one sample (timestamped now)."""
        return self.record(
            DeviceHealthSample(
                t_s=time.monotonic() if t_s is None else float(t_s),
                replica=str(replica),
                state=str(state),
                wear_fraction=float(wear_fraction),
                age_s=float(age_s),
                spares_free=None if spares_free is None else int(spares_free),
                faulty_cells=(
                    None if faulty_cells is None else int(faulty_cells)
                ),
                margin_p5=float(margin_p5),
                margin_p50=float(margin_p50),
                signal_ratio=float(signal_ratio),
            )
        )

    def samples(
        self, replica: Optional[str] = None
    ) -> List[DeviceHealthSample]:
        """Retained samples in record order, optionally one replica's."""
        with self._lock:
            snapshot = list(self._samples)
        if replica is None:
            return snapshot
        return [s for s in snapshot if s.replica == replica]

    def latest(self) -> Dict[str, DeviceHealthSample]:
        """The most recent sample per replica label."""
        result: Dict[str, DeviceHealthSample] = {}
        for sample in self.samples():
            result[sample.replica] = sample
        return result

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    def to_jsonl(self) -> str:
        """Strict JSONL (NaN margins serialise as ``null``)."""
        return "\n".join(
            json.dumps(s.to_dict(), allow_nan=False) for s in self.samples()
        )

    def dump(self, path: str) -> str:
        """Write :meth:`to_jsonl` to ``path``; returns the path."""
        with open(path, "w") as fh:
            text = self.to_jsonl()
            if text:
                fh.write(text + "\n")
        return path

    def __repr__(self) -> str:
        return f"DeviceHealthLedger({len(self)} samples)"


# -------------------------------------------------------------------- gauges
@dataclass(frozen=True)
class HardwareGauges:
    """Worst-case hardware gauges across a replica set.

    Margin and signal gauges take the *minimum* over replicas (the
    weakest array is the one about to fail), wear the maximum,
    ``spares_free`` the minimum per-replica pool (a deployment is as
    repairable as its driest replica) and ``faulty_cells`` the sum.
    ``per_replica`` keeps the labelled per-replica breakdown for the
    exporters that support labels.
    """

    margin_p5: float = float("nan")
    margin_p50: float = float("nan")
    signal_ratio: float = float("nan")
    wear_fraction: float = float("nan")
    spares_free: Optional[int] = None
    faulty_cells: Optional[int] = None
    per_replica: Dict[str, dict] = None  # type: ignore[assignment]

    @classmethod
    def from_samples(
        cls, samples: Iterable[DeviceHealthSample]
    ) -> "HardwareGauges":
        latest: Dict[str, DeviceHealthSample] = {}
        for sample in samples:
            latest[sample.replica] = sample
        rows = list(latest.values())

        def _nanmin(values: List[float]) -> float:
            finite = [v for v in values if v == v]
            return min(finite) if finite else float("nan")

        def _nanmax(values: List[float]) -> float:
            finite = [v for v in values if v == v]
            return max(finite) if finite else float("nan")

        spares = [s.spares_free for s in rows if s.spares_free is not None]
        faults = [s.faulty_cells for s in rows if s.faulty_cells is not None]
        return cls(
            margin_p5=_nanmin([s.margin_p5 for s in rows]),
            margin_p50=_nanmin([s.margin_p50 for s in rows]),
            signal_ratio=_nanmin([s.signal_ratio for s in rows]),
            wear_fraction=_nanmax([s.wear_fraction for s in rows]),
            spares_free=min(spares) if spares else None,
            faulty_cells=sum(faults) if faults else None,
            per_replica={
                label: {
                    "state": s.state,
                    "wear_fraction": s.wear_fraction,
                    "age_s": s.age_s,
                    "signal_ratio": _or_none(s.signal_ratio),
                    "margin_p50": _or_none(s.margin_p50),
                }
                for label, s in sorted(latest.items())
            },
        )

    def to_dict(self) -> dict:
        return {
            "margin_p5": _or_none(self.margin_p5),
            "margin_p50": _or_none(self.margin_p50),
            "signal_ratio": _or_none(self.signal_ratio),
            "wear_fraction": _or_none(self.wear_fraction),
            "spares_free": self.spares_free,
            "faulty_cells": self.faulty_cells,
            "per_replica": dict(self.per_replica or {}),
        }


# ------------------------------------------------------------------ timeline
def format_health_timeline(samples, events=()) -> str:
    """Human-readable per-replica device-health timeline (``febim health``).

    ``samples`` are :class:`DeviceHealthSample` rows or their
    ``to_dict`` form; ``events`` optional flight-event dicts (only the
    hardware-plane kinds are interleaved).  Rows merge by time so the
    story reads top to bottom: margin falls, a warning fires, the heal
    ladder reprograms, margin recovers.
    """
    hardware_kinds = {
        "bist_scan", "spare_repair", "drift_alarm", "margin_warning",
        "canary_failure", "refresh", "replace", "evict",
    }
    rows = []
    for sample in samples:
        d = sample.to_dict() if hasattr(sample, "to_dict") else dict(sample)
        rows.append((float(d["t_s"]), "sample", d))
    for event in events:
        d = dict(event)
        if d.get("kind") in hardware_kinds:
            rows.append((float(d["t_s"]), "event", d))
    if not rows:
        return "device health: no samples"
    rows.sort(key=lambda r: (r[0], r[1] == "event"))
    t0 = rows[0][0]
    replicas = sorted({d["replica"] for t, kind, d in rows if kind == "sample"})
    lines = [
        f"device health: {sum(1 for r in rows if r[1] == 'sample')} samples, "
        f"{len(replicas)} replica(s)"
    ]

    def _fmt(value, spec="{:.3f}") -> str:
        if value is None or (isinstance(value, float) and value != value):
            return "-"
        return spec.format(value)

    for t, kind, d in rows:
        offset = f"+{t - t0:8.3f}s"
        if kind == "sample":
            lines.append(
                f"  {offset} {d['replica']:<24s} {d['state']:<8s} "
                f"wear={_fmt(d['wear_fraction'])} "
                f"age={_fmt(d['age_s'], '{:.3g}')}s "
                f"spares={_fmt(d['spares_free'], '{:d}')} "
                f"faults={_fmt(d['faulty_cells'], '{:d}')} "
                f"margin={_fmt(d['margin_p50'])} "
                f"signal={_fmt(d['signal_ratio'])}"
            )
        else:
            detail = "  ".join(
                f"{k}={v}"
                for k, v in sorted(d.items())
                if k not in ("seq", "t_s", "kind") and not isinstance(v, dict)
            )
            lines.append(
                f"  {offset} ** {d['kind']:<20s} {detail}".rstrip()
            )
    return "\n".join(lines)
