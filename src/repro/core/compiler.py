"""Compile discrete Bayesian networks onto the FeBiM crossbar.

FeBiM's crossbar computes Eq. 5 for naive-Bayes-*shaped* models: one
class/event node and conditionally independent evidence nodes (Fig. 2).
:func:`compile_network` checks that a :class:`BayesianNetwork` has that
shape, extracts its prior/CPTs, quantises them (Sec. 3.3) and returns a
:class:`CompiledNetwork` wrapping a programmed engine with name-based
evidence access — so diagnostic networks written as graphs deploy to the
in-memory engine in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.bayes.network import BayesianNetwork
from repro.core.engine import FeBiMEngine, InferenceReport
from repro.core.quantization import quantize_model
from repro.crossbar.parameters import CircuitParameters
from repro.devices.fefet import MultiLevelCellSpec
from repro.devices.variation import VariationModel
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int


@dataclass
class CompiledNetwork:
    """A Bayesian network deployed on a FeBiM engine.

    Attributes
    ----------
    engine:
        The programmed crossbar engine.
    class_node:
        Name of the event/class node.
    class_states:
        The class node's state names, in row order.
    evidence_nodes:
        Evidence node names, in block order.
    evidence_states:
        State names per evidence node (defining the level coding).
    """

    engine: FeBiMEngine
    class_node: str
    class_states: List[str]
    evidence_nodes: List[str]
    evidence_states: Dict[str, List[str]]

    def _levels_for(self, evidence: Mapping[str, Union[str, int]]) -> np.ndarray:
        missing = [n for n in self.evidence_nodes if n not in evidence]
        if missing:
            raise ValueError(
                f"evidence missing for nodes {missing}; the crossbar "
                "activates one column per block and needs every node observed"
            )
        levels = np.empty(len(self.evidence_nodes), dtype=int)
        for i, name in enumerate(self.evidence_nodes):
            value = evidence[name]
            states = self.evidence_states[name]
            if isinstance(value, str):
                try:
                    levels[i] = states.index(value)
                except ValueError:
                    raise KeyError(
                        f"node {name!r} has no state {value!r}; states: {states}"
                    ) from None
            else:
                idx = int(value)
                if not 0 <= idx < len(states):
                    raise ValueError(
                        f"state index {idx} out of range for node {name!r}"
                    )
                levels[i] = idx
        return levels

    def infer(self, evidence: Mapping[str, Union[str, int]]) -> str:
        """One-cycle in-memory MAP state of the class node."""
        levels = self._levels_for(evidence)
        winner = int(self.engine.predict(levels)[0])
        return self.class_states[winner]

    def infer_report(self, evidence: Mapping[str, Union[str, int]]) -> InferenceReport:
        """Full circuit-level report for one inference."""
        return self.engine.infer_one(self._levels_for(evidence))

    @property
    def shape(self) -> tuple:
        return self.engine.shape


def compile_network(
    network: BayesianNetwork,
    class_node: str,
    q_l: int = 2,
    clip_decades: float = 1.0,
    spec: Optional[MultiLevelCellSpec] = None,
    variation: Optional[VariationModel] = None,
    params: Optional[CircuitParameters] = None,
    seed: RngLike = None,
) -> CompiledNetwork:
    """Quantise and program a naive-Bayes-shaped network onto a crossbar.

    Parameters
    ----------
    network:
        The source network.  Every node other than ``class_node`` must
        have exactly ``[class_node]`` as parents (the Fig. 2 shape);
        anything else raises with an explanation.
    class_node:
        The event node whose MAP state the WTA resolves.
    q_l:
        Likelihood quantisation bits (``2^q_l`` FeFET states).

    Raises
    ------
    ValueError
        If the network is not naive-Bayes-shaped, names an unknown class
        node, or has no evidence nodes.
    """
    check_positive_int(q_l, "q_l")
    if class_node not in network:
        raise ValueError(f"unknown class node {class_node!r}")
    cls = network.node(class_node)
    if cls.parents:
        raise ValueError(
            f"class node {class_node!r} must be a root, has parents {cls.parents}"
        )

    evidence_nodes = []
    for name in network.node_names:
        if name == class_node:
            continue
        node = network.node(name)
        if node.parents != [class_node]:
            raise ValueError(
                f"node {name!r} has parents {node.parents}; FeBiM's crossbar "
                f"computes Eq. 5 only for evidence conditioned directly (and "
                f"only) on {class_node!r} — marginalise or restructure first"
            )
        evidence_nodes.append(name)
    if not evidence_nodes:
        raise ValueError("network has no evidence nodes to map")

    likelihoods = [network.node(name).cpt for name in evidence_nodes]
    model = quantize_model(
        likelihoods,
        cls.cpt,
        n_levels=2**q_l,
        clip_decades=clip_decades,
    )
    engine = FeBiMEngine(
        model, spec=spec, variation=variation, params=params, seed=seed
    )
    return CompiledNetwork(
        engine=engine,
        class_node=class_node,
        class_states=list(cls.states),
        evidence_nodes=evidence_nodes,
        evidence_states={n: list(network.node(n).states) for n in evidence_nodes},
    )
