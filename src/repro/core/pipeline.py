"""End-to-end FeBiM workflow (Fig. 2): train, quantise, program, infer.

:class:`FeBiMPipeline` wires together the substrate pieces:

1. fit a float64 :class:`GaussianNaiveBayes` (the software baseline);
2. fit a :class:`FeatureDiscretizer` with ``m = 2^Qf`` levels and derive
   the per-feature bin-mass likelihood tables from the Gaussian fit;
3. quantise priors/likelihoods to ``L = 2^Ql`` levels (Sec. 3.3);
4. program a :class:`FeBiMEngine` crossbar.

Prediction modes:

* ``"software"``  — float64 GNBC (the paper's baseline in Figs. 7/8);
* ``"quantized"`` — digital argmax over quantised level sums (isolates
  quantisation loss from circuit effects);
* ``"hardware"``  — full in-memory inference through the crossbar + WTA.

:func:`run_epochs` implements the paper's evaluation protocol: repeated
random 30/70 train/test splits, mean accuracy over epochs.

Batched inference API
---------------------

All request-stream entry points run dense batches end-to-end:
:meth:`FeBiMPipeline.predict` discretises the whole batch and issues a
single batched crossbar read, and :meth:`FeBiMPipeline.infer_batch`
returns the full per-sample circuit report
(:class:`~repro.core.engine.BatchInferenceReport`) the same way.
``average_energy``/``average_delay`` are reductions over that one
batched report — the array is read once per request batch, not once per
sample — and :func:`run_epochs` scores each epoch's test split as a
single batch.  Per-sample helpers (``inference_report``) remain as
wrappers over the batch core and match it bit-for-bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bayes.discretize import FeatureDiscretizer
from repro.bayes.gaussian_nb import GaussianNaiveBayes
from repro.core.engine import FeBiMEngine
from repro.core.quantization import QuantizedBayesianModel, quantize_model
from repro.crossbar.parameters import CircuitParameters
from repro.datasets._base import Dataset
from repro.datasets.splits import train_test_split
from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.devices.variation import VariationModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

_MODES = ("software", "quantized", "hardware")


class FeBiMPipeline:
    """Train-quantise-program-infer pipeline for one model instance.

    Parameters
    ----------
    q_f:
        Feature (evidence) quantisation precision in bits: ``m = 2^q_f``
        discretisation levels.  The paper's iris operating point is 4.
    q_l:
        Likelihood quantisation precision in bits: ``L = 2^q_l`` FeFET
        states.  The paper's iris operating point is 2.
    clip_decades:
        Probability truncation depth (Sec. 3.3); 1.0 decade by default.
    variation:
        FeFET V_TH variation model for the programmed array.
    params, template:
        Circuit parameters and template device forwarded to the engine.
    force_prior_column:
        Materialise the prior column even when the prior is uniform.
    spare_rows:
        Extra physical wordlines manufactured for spare-row repair
        (forwarded to the engine; see :mod:`repro.reliability`).
    seed:
        Seed for variation draws inside the engine.
    backend:
        Array technology the programmed engine runs on (registry name;
        ``"fefet"`` by default — see :mod:`repro.backends`).
    backend_options:
        Extra keyword arguments for the backend constructor (e.g.
        ``{"n_cycles": 255}`` for ``"memristor"``).
    """

    def __init__(
        self,
        q_f: int = 4,
        q_l: int = 2,
        clip_decades: float = 1.0,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        template: Optional[FeFET] = None,
        mirror_gain_sigma: float = 0.0,
        force_prior_column: bool = False,
        normalization: str = "column",
        verify_programming: bool = False,
        spare_rows: int = 0,
        seed: RngLike = None,
        backend: str = "fefet",
        backend_options: Optional[dict] = None,
    ):
        self.q_f = check_positive_int(q_f, "q_f")
        self.q_l = check_positive_int(q_l, "q_l")
        self.clip_decades = float(clip_decades)
        self.normalization = normalization
        self.variation = variation or VariationModel()
        self.params = params or CircuitParameters()
        self.template = template
        self.mirror_gain_sigma = float(mirror_gain_sigma)
        self.force_prior_column = bool(force_prior_column)
        self.verify_programming = bool(verify_programming)
        self.spare_rows = int(spare_rows)
        self.seed = seed
        self.backend = str(backend)
        self.backend_options = dict(backend_options or {})
        if self.verify_programming and self.backend != "fefet":
            raise ValueError(
                "verify_programming runs the FeFET ISPP controller and "
                f"is only available on the 'fefet' backend, not "
                f"{self.backend!r}"
            )

    # -------------------------------------------------------------- fitting
    def fit(self, X: np.ndarray, y: np.ndarray) -> "FeBiMPipeline":
        """Train the software model and program the crossbar."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)

        self.gnb_ = GaussianNaiveBayes().fit(X, y)
        self.discretizer_ = FeatureDiscretizer.from_bits(self.q_f).fit(X)

        likelihood_tables = [
            self.gnb_.bin_likelihoods(f, self.discretizer_.edges_[f])
            for f in range(X.shape[1])
        ]
        self.quantized_model_: QuantizedBayesianModel = quantize_model(
            likelihood_tables,
            self.gnb_.class_prior_,
            n_levels=2**self.q_l,
            clip_decades=self.clip_decades,
            classes=self.gnb_.classes_,
            force_prior_column=self.force_prior_column,
            normalization=self.normalization,
        )
        spec = MultiLevelCellSpec(n_levels=2**self.q_l)
        self.engine_ = FeBiMEngine(
            self.quantized_model_,
            spec=spec,
            variation=self.variation,
            params=self.params,
            template=self.template,
            mirror_gain_sigma=self.mirror_gain_sigma,
            spare_rows=self.spare_rows,
            seed=self.seed,
            backend=self.backend,
            backend_options=self.backend_options,
        )
        if self.verify_programming:
            # Replace the open-loop writes with closed-loop ISPP, which
            # absorbs static V_TH variation into per-cell pulse counts.
            from repro.crossbar.controller import reprogram_engine_verified

            self.programming_stats_ = reprogram_engine_verified(self.engine_)
        return self

    def _check_fitted(self) -> None:
        if not hasattr(self, "engine_"):
            raise RuntimeError("pipeline is not fitted; call fit() first")

    # ------------------------------------------------------------ inference
    def predict(self, X: np.ndarray, mode: str = "hardware") -> np.ndarray:
        """Class predictions under the selected evaluation mode."""
        self._check_fitted()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        X = np.asarray(X, dtype=float)
        if mode == "software":
            return self.gnb_.predict(X)
        levels = self.discretizer_.transform(X)
        if mode == "quantized":
            return self.quantized_model_.predict(levels)
        return self.engine_.predict(levels)

    def score(self, X: np.ndarray, y: np.ndarray, mode: str = "hardware") -> float:
        """Accuracy under the selected evaluation mode."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X, mode=mode) == y))

    # ------------------------------------------------------------- circuit
    def transform_levels(self, X: np.ndarray) -> np.ndarray:
        """Discretised evidence levels for a batch of raw samples."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        return self.discretizer_.transform(X)

    def infer_batch(self, X: np.ndarray):
        """Full circuit-level report for a batch of raw samples.

        Discretises once and runs one batched crossbar read; returns a
        :class:`~repro.core.engine.BatchInferenceReport`.
        """
        levels = self.transform_levels(X)
        return self.engine_.infer_batch(levels)

    def inference_report(self, x: np.ndarray):
        """Circuit-level report (currents/delay/energy) for one sample."""
        self._check_fitted()
        x = np.asarray(x, dtype=float)
        if x.ndim != 1:
            raise ValueError(f"x must be a single 1-D sample, got shape {x.shape}")
        levels = self.discretizer_.transform(x[None, :])[0]
        return self.engine_.infer_one(levels)

    # -------------------------------------------------------------- serving
    def register_into(self, registry, name: str) -> int:
        """Publish the fitted quantised model into a serving registry.

        The natural hand-off from training to serving: persists
        ``quantized_model_`` plus the engine's cell spec under ``name``
        and returns the new version number.  ``registry`` is a
        :class:`repro.serving.registry.ModelRegistry` (duck-typed here
        to keep the core free of a serving import).

        Refuses a registry pinned to a *different* backend than this
        pipeline trained on — the artifact would be stamped with the
        registry's technology and served on hardware the model was
        never validated against (the registration-side twin of the
        registry's load-side mismatch check).
        """
        self._check_fitted()
        registry_backend = getattr(registry, "backend", None)
        if registry_backend is not None and registry_backend != self.backend:
            raise ValueError(
                f"pipeline was trained on backend {self.backend!r} but the "
                f"registry serves {registry_backend!r}; open the registry "
                f"with backend={self.backend!r} or retrain the pipeline"
            )
        return registry.register(name, self.quantized_model_, self.engine_.spec)

    def average_energy(self, X: np.ndarray) -> float:
        """Mean per-inference energy over a set of samples (joules).

        Evaluated from one batched read of the whole sample set.
        """
        return float(np.mean(self.infer_batch(X).energy.total))

    def average_delay(self, X: np.ndarray) -> float:
        """Mean per-inference worst-case delay over samples (seconds).

        Evaluated from one batched read of the whole sample set.
        """
        return float(np.mean(self.infer_batch(X).delay))


def run_epochs(
    dataset: Dataset,
    q_f: int = 4,
    q_l: int = 2,
    mode: str = "quantized",
    epochs: int = 100,
    test_size: float = 0.7,
    clip_decades: float = 1.0,
    variation: Optional[VariationModel] = None,
    normalization: str = "column",
    seed: RngLike = None,
) -> np.ndarray:
    """The paper's evaluation protocol: accuracy over repeated splits.

    Each epoch draws an independent stratified split, retrains the
    pipeline on the small train side and scores the large test side in
    the requested mode.  Returns the per-epoch accuracies (length
    ``epochs``); the paper reports their mean (and, for Fig. 8c, their
    distribution).
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    check_positive_int(epochs, "epochs")
    rng = ensure_rng(seed)
    accuracies = np.empty(epochs)
    for epoch in range(epochs):
        X_tr, X_te, y_tr, y_te = train_test_split(
            dataset.data, dataset.target, test_size=test_size, seed=rng
        )
        if mode == "software":
            accuracies[epoch] = GaussianNaiveBayes().fit(X_tr, y_tr).score(X_te, y_te)
            continue
        pipeline = FeBiMPipeline(
            q_f=q_f,
            q_l=q_l,
            clip_decades=clip_decades,
            variation=variation,
            normalization=normalization,
            seed=rng,
        ).fit(X_tr, y_tr)
        accuracies[epoch] = pipeline.score(X_te, y_te, mode=mode)
    return accuracies
