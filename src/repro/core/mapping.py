"""Linear mapping from quantised levels to FeFET states (Fig. 4a).

The last step of Sec. 3.3: normalised log-probability levels map linearly
onto the discrete FeFET read currents — level 0 (most truncated, P' =
1 - D) to ``i_min`` = 0.1 uA, the top level (P' = 1) to ``i_max`` =
1.0 uA.  :class:`ProbabilityMapper` also assembles the full crossbar
level matrix from a quantised model and a column layout.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.quantization import QuantizedBayesianModel
from repro.crossbar.layout import BayesianArrayLayout
from repro.devices.fefet import MultiLevelCellSpec


def levels_to_currents(levels: np.ndarray, spec: MultiLevelCellSpec) -> np.ndarray:
    """Target read current of each level index (amperes).

    Vectorised linear map; raises on out-of-range levels.
    """
    levels = np.asarray(levels)
    if np.any(levels < 0) or np.any(levels >= spec.n_levels):
        raise ValueError(f"levels must lie in 0..{spec.n_levels - 1}")
    return spec.level_currents()[levels]


class ProbabilityMapper:
    """Assembles the crossbar level matrix from a quantised model.

    Parameters
    ----------
    spec:
        Multi-level cell spec; its ``n_levels`` must equal the quantised
        model's level count (one FeFET state per quantisation level).
    """

    def __init__(self, spec: Optional[MultiLevelCellSpec] = None):
        self.spec = spec or MultiLevelCellSpec()

    def layout_for(self, model: QuantizedBayesianModel) -> BayesianArrayLayout:
        """The column layout implied by the model's shape.

        Per-feature block widths follow the likelihood tables, so mixed
        evidence arities (general Bayesian networks) are supported.
        """
        return BayesianArrayLayout(
            n_features=model.n_features,
            n_levels=[t.shape[1] for t in model.likelihood_levels],
            n_classes=model.n_classes,
            include_prior=model.has_prior_column,
        )

    def level_matrix(
        self, model: QuantizedBayesianModel
    ) -> Tuple[np.ndarray, BayesianArrayLayout]:
        """Crossbar level matrix ``(k, total_cols)`` plus its layout.

        Every cell is programmed (the model defines a level for each
        (class, feature, evidence-value) triple and, when present, each
        prior entry).
        """
        if self.spec.n_levels != model.quantizer.n_levels:
            raise ValueError(
                f"cell spec has {self.spec.n_levels} states but the model was "
                f"quantised to {model.quantizer.n_levels} levels"
            )
        layout = self.layout_for(model)
        matrix = np.full((layout.total_rows, layout.total_cols), -1, dtype=int)
        if model.has_prior_column:
            matrix[:, layout.prior_col] = model.prior_levels
        for f, table in enumerate(model.likelihood_levels):
            matrix[:, layout.block_slice(f)] = table
        return matrix, layout

    def current_matrix(self, model: QuantizedBayesianModel) -> np.ndarray:
        """Ideal programmed I_DS map (amperes) — the Fig. 8(b) picture."""
        matrix, _ = self.level_matrix(model)
        currents = np.zeros(matrix.shape)
        programmed = matrix >= 0
        currents[programmed] = levels_to_currents(matrix[programmed], self.spec)
        return currents

    def fig4_example(
        self, probabilities: np.ndarray, n_levels: int = 10, clip_decades: float = 1.0
    ) -> dict:
        """Reproduce the Fig. 4(a) mapping walk-through for a column.

        Returns the intermediate quantities (truncated P, normalised P',
        quantised levels, mapped currents) for a single probability
        column, so experiments/benchmarks can print the staircase.
        """
        from repro.core.quantization import (
            UniformQuantizer,
            log_normalize_vector,
        )

        probabilities = np.asarray(probabilities, dtype=float)
        spec = MultiLevelCellSpec(
            n_levels=n_levels, i_min=self.spec.i_min, i_max=self.spec.i_max
        )
        p_prime = log_normalize_vector(probabilities, clip_decades)
        quantizer = UniformQuantizer(n_levels, clip_decades)
        levels = quantizer.quantize(p_prime)
        return {
            "p": probabilities,
            "p_truncated": np.maximum(
                probabilities, probabilities.max() * 10.0**(-clip_decades)
            ),
            "p_prime": p_prime,
            "levels": levels,
            "currents": levels_to_currents(levels, spec),
        }
