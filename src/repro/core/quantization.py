"""Probability quantization and normalisation (Sec. 3.3, Eq. 6, Fig. 4a).

The scheme, exactly as the paper describes it:

1. **Truncate** very small probabilities so the dynamic range to encode
   is bounded.  Fig. 4(a) truncates at P = 0.1 (one decade below the
   column maximum of 1.0); we generalise this to a configurable number of
   decades below each column's maximum.
2. **Logarithm**: natural log, so Eq. 3's products become sums (Eq. 5).
   With one decade of truncation and a column max of 1, the normalised
   values span [ln 0.1 + 1, 1] = [-1.303, 1.0] — matching Fig. 4(a)'s
   -1.3..1.0 axis, which confirms the natural-log reading.
3. **Column normalisation** (Eq. 6): add ``1 - max(log p)`` per column,
   scaling each column's maximum to exactly 1.  This enlarges posterior
   differences without changing any argmax.
4. **Uniform quantisation** of the normalised values onto ``L = 2^Ql``
   levels spanning the full representable range ``[1 - D, 1]`` where
   ``D = clip_decades * ln 10``.

Because every inference activates the *same number* of cells on every
wordline, the affine level -> current map preserves argmax: ideal
hardware decisions equal the quantised digital decisions (tested as an
invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.utils.validation import check_positive, check_positive_int

#: ln 10 — the log-domain width of one probability decade.
LOG_DECADE = float(np.log(10.0))


def _clipped_log(p: np.ndarray, clip_decades: float, axis: Optional[int]) -> np.ndarray:
    """Natural log of ``p`` truncated ``clip_decades`` below the max.

    ``axis`` selects the normalisation group (0 = per column); ``None``
    treats the whole array as one group.
    """
    p = np.asarray(p, dtype=float)
    if np.any(~np.isfinite(p)) or np.any(p < 0):
        raise ValueError("probabilities must be finite and non-negative")
    width = clip_decades * LOG_DECADE
    with np.errstate(divide="ignore"):
        logp = np.log(p)
    max_log = np.max(logp, axis=axis, keepdims=axis is not None)
    if np.any(~np.isfinite(max_log)):
        raise ValueError("a normalisation group is entirely zero")
    return np.maximum(logp, max_log - width)


def log_normalize_columns(table: np.ndarray, clip_decades: float = 1.0) -> np.ndarray:
    """Apply truncation + log + Eq. 6 column normalisation to a table.

    Parameters
    ----------
    table:
        Likelihood table ``(n_classes, n_values)``; column ``b`` holds
        ``P(B = b | A_j)`` for every class ``j``.
    clip_decades:
        Truncation depth in decades below each column's maximum (the
        paper's Fig. 4 example corresponds to 1.0).

    Returns
    -------
    Normalised ``P'`` with every column's maximum equal to 1.0 and all
    entries within ``[1 - clip_decades * ln 10, 1]``.
    """
    table = np.asarray(table, dtype=float)
    if table.ndim != 2:
        raise ValueError(f"table must be 2-D, got shape {table.shape}")
    check_positive(clip_decades, "clip_decades")
    logp = _clipped_log(table, clip_decades, axis=0)
    return logp + (1.0 - logp.max(axis=0, keepdims=True))


def log_normalize_vector(prior: np.ndarray, clip_decades: float = 1.0) -> np.ndarray:
    """Eq. 6 normalisation of the prior vector (its own column)."""
    prior = np.asarray(prior, dtype=float)
    if prior.ndim != 1 or prior.size == 0:
        raise ValueError(f"prior must be a non-empty 1-D array, got {prior.shape}")
    check_positive(clip_decades, "clip_decades")
    logp = _clipped_log(prior, clip_decades, axis=None)
    return logp + (1.0 - logp.max())


class UniformQuantizer:
    """Uniform scalar quantiser over the normalised log range.

    Parameters
    ----------
    n_levels:
        Number of quantisation levels ``L`` (``2^Ql`` in the paper).
    clip_decades:
        Sets the representable range ``[1 - clip_decades * ln 10, 1]``.
    """

    def __init__(self, n_levels: int, clip_decades: float = 1.0):
        self.n_levels = check_positive_int(n_levels, "n_levels")
        check_positive(clip_decades, "clip_decades")
        self.lo = 1.0 - clip_decades * LOG_DECADE
        self.hi = 1.0

    @classmethod
    def from_bits(cls, q_l: int, clip_decades: float = 1.0) -> "UniformQuantizer":
        """Construct with ``L = 2^q_l`` levels."""
        check_positive_int(q_l, "q_l")
        return cls(2**q_l, clip_decades)

    @property
    def step(self) -> float:
        """Reconstruction step between adjacent levels."""
        if self.n_levels == 1:
            return 0.0
        return (self.hi - self.lo) / (self.n_levels - 1)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Nearest-level indices in ``0..L-1`` (values clamped to range)."""
        values = np.asarray(values, dtype=float)
        if self.n_levels == 1:
            return np.zeros(values.shape, dtype=int)
        rel = (np.clip(values, self.lo, self.hi) - self.lo) / (self.hi - self.lo)
        return np.rint(rel * (self.n_levels - 1)).astype(int)

    def dequantize(self, levels: np.ndarray) -> np.ndarray:
        """Reconstruction values of level indices."""
        levels = np.asarray(levels)
        if np.any(levels < 0) or np.any(levels >= self.n_levels):
            raise ValueError(f"levels must lie in 0..{self.n_levels - 1}")
        if self.n_levels == 1:
            return np.full(levels.shape, self.hi)
        return self.lo + levels.astype(float) * self.step

    def max_error(self) -> float:
        """Worst-case absolute quantisation error (half a step)."""
        return 0.5 * self.step


@dataclass
class QuantizedBayesianModel:
    """A naive Bayes model after quantisation — ready for mapping.

    Attributes
    ----------
    likelihood_levels:
        One ``(n_classes, n_levels_evidence)`` integer array per feature.
    prior_levels:
        Integer prior levels (length ``n_classes``) or ``None`` when the
        prior is uniform and the prior column is omitted (Fig. 8b).
    quantizer:
        The scalar quantiser used (defines L and the value range).
    classes:
        Class labels in row order.
    """

    likelihood_levels: List[np.ndarray]
    prior_levels: Optional[np.ndarray]
    quantizer: UniformQuantizer
    classes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    def __post_init__(self) -> None:
        if not self.likelihood_levels:
            raise ValueError("need at least one likelihood table")
        shapes = {t.shape[0] for t in self.likelihood_levels}
        if len(shapes) != 1:
            raise ValueError("likelihood tables disagree on class count")
        k = shapes.pop()
        if self.prior_levels is not None and self.prior_levels.shape != (k,):
            raise ValueError(
                f"prior_levels must have shape ({k},), got {self.prior_levels.shape}"
            )
        if self.classes.size == 0:
            self.classes = np.arange(k)

    @property
    def n_classes(self) -> int:
        return self.likelihood_levels[0].shape[0]

    @property
    def n_features(self) -> int:
        return len(self.likelihood_levels)

    @property
    def n_evidence_levels(self) -> int:
        return self.likelihood_levels[0].shape[1]

    @property
    def has_prior_column(self) -> bool:
        return self.prior_levels is not None

    def level_scores(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Summed quantisation levels per class — the digital posterior.

        ``evidence_levels`` has shape ``(n_samples, n_features)``; the
        result ``(n_samples, n_classes)``.  Argmax of these integer
        scores is exactly what the ideal crossbar computes in currents.
        """
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.ndim != 2 or evidence_levels.shape[1] != self.n_features:
            raise ValueError(
                f"evidence_levels must have shape (n, {self.n_features}), "
                f"got {evidence_levels.shape}"
            )
        n = evidence_levels.shape[0]
        scores = np.zeros((n, self.n_classes), dtype=int)
        if self.prior_levels is not None:
            scores += self.prior_levels[None, :]
        for f, table in enumerate(self.likelihood_levels):
            scores += table[:, evidence_levels[:, f]].T
        return scores

    def predict(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Digital MAP prediction from quantised levels."""
        return self.classes[np.argmax(self.level_scores(evidence_levels), axis=1)]


def log_normalize_global(table: np.ndarray, clip_decades: float = 1.0) -> np.ndarray:
    """Ablation variant of Eq. 6: one offset for the *whole* table.

    Truncation and the +``(1 - max log p)`` shift are applied against the
    table-wide maximum instead of per column.  Columns whose own maximum
    is small then sit far below 1.0, wasting quantiser range — exactly
    the effect the paper's column normalisation removes.  Used by the
    normalisation ablation study.
    """
    table = np.asarray(table, dtype=float)
    if table.ndim != 2:
        raise ValueError(f"table must be 2-D, got shape {table.shape}")
    check_positive(clip_decades, "clip_decades")
    logp = _clipped_log(table, clip_decades, axis=None)
    return logp + (1.0 - logp.max())


def quantize_model(
    likelihoods: List[np.ndarray],
    class_prior: np.ndarray,
    n_levels: int,
    clip_decades: float = 1.0,
    classes: Optional[np.ndarray] = None,
    force_prior_column: bool = False,
    uniform_tol: float = 1e-9,
    normalization: str = "column",
) -> QuantizedBayesianModel:
    """Full Sec. 3.3 quantisation of a naive Bayes model.

    Parameters
    ----------
    likelihoods:
        Per-feature tables ``(n_classes, m)`` of ``P(B_i = b | A)``.
    class_prior:
        Prior ``P(A)``, length ``n_classes``.
    n_levels:
        Likelihood quantisation levels ``L = 2^Ql``.
    force_prior_column:
        Materialise the prior column even for a uniform prior (the paper
        omits it in that case, which is the default here).
    normalization:
        ``"column"`` — the paper's Eq. 6 (default); ``"global"`` — one
        offset per table, the ablation variant showing why Eq. 6 matters.
    """
    if normalization not in ("column", "global"):
        raise ValueError(
            f"normalization must be 'column' or 'global', got {normalization!r}"
        )
    normalize = (
        log_normalize_columns if normalization == "column" else log_normalize_global
    )
    quantizer = UniformQuantizer(n_levels, clip_decades)
    level_tables = [
        quantizer.quantize(normalize(t, clip_decades)) for t in likelihoods
    ]
    class_prior = np.asarray(class_prior, dtype=float)
    uniform = np.allclose(
        class_prior, class_prior.mean(), atol=uniform_tol * max(class_prior.mean(), 1e-300)
    )
    if uniform and not force_prior_column:
        prior_levels = None
    else:
        prior_levels = quantizer.quantize(
            log_normalize_vector(class_prior, clip_decades)
        )
    return QuantizedBayesianModel(
        likelihood_levels=level_tables,
        prior_levels=prior_levels,
        quantizer=quantizer,
        classes=np.arange(len(class_prior)) if classes is None else np.asarray(classes),
    )
