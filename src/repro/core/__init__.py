"""FeBiM's core contribution: probability quantization, mapping, engine.

* :mod:`repro.core.quantization` — logarithmic conversion, truncation and
  column normalisation (Eq. 6), uniform quantisation to ``2^Ql`` levels.
* :mod:`repro.core.mapping` — linear level -> FeFET I_DS mapping
  (Fig. 4a) and assembly of the full crossbar level matrix.
* :mod:`repro.core.engine` — the in-memory Bayesian inference engine:
  programmed crossbar + sensing, one-cycle MAP decisions, delay/energy
  accounting.
* :mod:`repro.core.pipeline` — end-to-end workflow (Fig. 2): train a
  Gaussian NB in software, discretise evidence, quantise likelihoods,
  program the array, infer in memory.
"""

from repro.core.quantization import (
    LOG_DECADE,
    QuantizedBayesianModel,
    UniformQuantizer,
    log_normalize_columns,
    log_normalize_global,
    log_normalize_vector,
    quantize_model,
)
from repro.core.mapping import ProbabilityMapper, levels_to_currents
from repro.core.engine import BatchInferenceReport, FeBiMEngine, InferenceReport
from repro.core.pipeline import FeBiMPipeline, run_epochs
from repro.core.compiler import CompiledNetwork, compile_network

__all__ = [
    "LOG_DECADE",
    "QuantizedBayesianModel",
    "UniformQuantizer",
    "log_normalize_columns",
    "log_normalize_global",
    "log_normalize_vector",
    "quantize_model",
    "ProbabilityMapper",
    "levels_to_currents",
    "FeBiMEngine",
    "InferenceReport",
    "BatchInferenceReport",
    "FeBiMPipeline",
    "run_epochs",
    "CompiledNetwork",
    "compile_network",
]
