"""The FeBiM in-memory Bayesian inference engine (Sec. 3, Fig. 3).

:class:`FeBiMEngine` owns a programmed :class:`FeFETCrossbar`, its column
layout and its sensing module.  Inference is one "cycle": activate one
bitline per evidence node (plus the prior column when present), read the
accumulated wordline currents — which *are* the quantised log-posteriors
— and let the WTA pick the winner.

The engine also reports per-inference delay/energy through the calibrated
circuit models and exposes the programmed state map (Fig. 8b).

Batched inference API
---------------------

The macro performs one inference per read cycle, and the simulator
serves whole request streams the same way: densely batched.
:meth:`FeBiMEngine.infer_batch` takes ``(n_samples, n_features)``
evidence levels and pushes the entire batch through every layer in one
vectorised pass — activation masks
(:meth:`~repro.crossbar.layout.BayesianArrayLayout.active_columns_batch`),
wordline reads
(:meth:`~repro.crossbar.array.FeFETCrossbar.wordline_currents_batch`
over the array's cached per-cell current matrices), WTA decisions
(:meth:`~repro.crossbar.sensing.SensingModule.decide_batch`), and the
delay/energy models' ``*_batch`` forms — returning a
:class:`BatchInferenceReport` with per-sample predictions, currents,
delays and an energy breakdown.

The batch path is *bit-identical* to per-sample inference under a fixed
seed (enforced by ``tests/property/test_batch_equivalence.py``):
:meth:`FeBiMEngine.predict` and :meth:`FeBiMEngine.infer_one` are thin
wrappers over the same batch core, and per-read noise is drawn once per
batch in the exact order the per-sample loop would consume it.

Hardware backends
-----------------

The engine is technology-agnostic: it owns the layout, the sensing
module and the quantised model, and addresses the array itself only
through the :class:`~repro.backends.base.ArrayBackend` protocol —
programming, (batched) wordline reads and the per-technology
delay/energy cost model all live behind ``self.backend``, constructed
by name through :func:`repro.backends.create`.  The default
``"fefet"`` backend wraps the paper's
:class:`~repro.crossbar.array.FeFETCrossbar` bit-identically (the iris
goldens pin this); ``"ideal"``, ``"cmos"`` and ``"memristor"`` swap in
alternative technologies under the same engine, serving and
reliability stack.  For the FeFET backend, :attr:`FeBiMEngine.crossbar`
still exposes the underlying array; other backends raise a clear error
there — address ``engine.backend`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.backends.base import CapabilityError
from repro.backends.registry import create as create_backend
from repro.core.mapping import ProbabilityMapper, levels_to_currents
from repro.core.quantization import QuantizedBayesianModel
from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.sensing import SensingModule
from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.devices.variation import VariationModel
from repro.kernels import (
    KERNEL_CHOICES,
    KernelAutotuner,
    KernelContext,
    default_pool,
    get_kernel,
)
from repro.utils.rng import RngLike, spawn_rngs


@dataclass(frozen=True)
class InferenceReport:
    """Per-inference circuit-level summary.

    Attributes
    ----------
    prediction:
        Winning class label.
    wordline_currents:
        The accumulated I_WL vector (amperes) — the analog posterior.
    delay:
        Worst-case inference latency (seconds).
    energy:
        Energy breakdown (array vs sensing), joules.
    """

    prediction: int
    wordline_currents: np.ndarray
    delay: float
    energy: object  # EnergyBreakdown (fefet) or SimpleEnergy (other backends)


@dataclass(frozen=True)
class BatchInferenceReport:
    """Circuit-level summary of a batch of inferences (one read cycle each).

    Attributes
    ----------
    predictions:
        Winning class label per sample, shape ``(n_samples,)``.
    winners:
        Winning wordline index per sample (row into the array).
    wordline_currents:
        Accumulated I_WL per sample, shape ``(n_samples, rows)`` (amperes).
    delay:
        Worst-case inference latency per sample (seconds).
    energy:
        Per-sample energy report: a
        :class:`~repro.crossbar.energy.BatchEnergyBreakdown` from the
        FeFET backend, a total-only
        :class:`~repro.backends.base.SimpleBatchEnergy` from the
        others — both expose ``total`` and ``sample(i)``.
    """

    predictions: np.ndarray
    winners: np.ndarray
    wordline_currents: np.ndarray
    delay: np.ndarray
    energy: object

    def __len__(self) -> int:
        return self.predictions.shape[0]

    def sample(self, i: int) -> InferenceReport:
        """The ``i``-th sample's result as a scalar :class:`InferenceReport`."""
        return InferenceReport(
            prediction=int(self.predictions[i]),
            wordline_currents=self.wordline_currents[i],
            delay=float(self.delay[i]),
            energy=self.energy.sample(i),
        )


class FeBiMEngine:
    """A programmed FeBiM macro ready for in-memory inference.

    Parameters
    ----------
    model:
        The quantised Bayesian model to program.
    spec:
        Multi-level cell spec (defaults to 4 levels over 0.1-1.0 uA; must
        match the model's quantisation level count).
    variation:
        FeFET V_TH variation for robustness studies; ideal by default.
    params:
        Circuit operating point / calibration constants.
    template:
        Template FeFET device (physics).
    mirror_gain_sigma:
        Current-mirror mismatch in the sensing module.
    spare_rows:
        Extra physical wordlines manufactured for spare-row repair
        (:meth:`~repro.crossbar.array.FeFETCrossbar.remap_row`); zero by
        default, which reproduces the plain engine bit-for-bit.  Only
        valid on backends declaring the ``spare-rows`` capability.
    seed:
        Seed for the stochastic draws.  It is split into independent
        child streams (:func:`~repro.utils.rng.spawn_rngs`) for the
        backend's variation/read-noise draws and the sensing module's
        mirror-mismatch draw, so the two noise sources are never
        correlated by a shared seed.
    backend:
        Array technology, by registry name (``"fefet"`` — the
        default, bit-identical reference — ``"ideal"``, ``"cmos"``,
        ``"memristor"``, or any :func:`repro.backends.register_backend`
        registration).
    backend_options:
        Extra keyword arguments forwarded to the backend constructor
        (e.g. ``{"n_cycles": 255}`` for ``"memristor"``).  A
        ``"kernel"`` entry is consumed by the engine itself (see
        ``kernel``), so serving deployments can select a kernel purely
        through their per-replica backend options.
    kernel:
        Read-kernel selection (:mod:`repro.kernels`):
        ``"reference"`` (default — the backend's own elementwise read,
        bit-identical to every golden), ``"gemm"`` (one BLAS matmul
        over the backend's affine read tables), ``"fused"`` (blocked
        read+decide, never materialising per-row currents on the
        winners-only path), or ``"auto"`` (per-shape autotuner).  The
        fast modes need the backend's ``fused-read`` capability and
        are contractually argmax-parity-equal, not bit-identical, in
        their reported currents; ``"auto"`` degrades to the reference
        kernel where tables are unavailable (e.g. configured per-read
        noise), explicit fast modes raise.
    """

    def __init__(
        self,
        model: QuantizedBayesianModel,
        spec: Optional[MultiLevelCellSpec] = None,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        template: Optional[FeFET] = None,
        mirror_gain_sigma: float = 0.0,
        spare_rows: int = 0,
        seed: RngLike = None,
        backend: str = "fefet",
        backend_options: Optional[dict] = None,
        kernel: Optional[str] = None,
    ):
        self.model = model
        self.spec = spec or MultiLevelCellSpec(n_levels=model.quantizer.n_levels)
        self.params = params or CircuitParameters()
        self.backend_name = str(backend)
        mapper = ProbabilityMapper(self.spec)
        self.level_matrix, self.layout = mapper.level_matrix(model)

        # The spawn order predates the backend abstraction: stream 0
        # feeds the array (the FeFET backend's variation draw happens
        # inside its constructor, exactly where the crossbar's used
        # to), stream 1 the sensing module — bit-identical to the
        # pre-backend engine.
        backend_rng, sensing_rng = spawn_rngs(seed, 2)
        # backend_options may carry its own spare_rows (a deployment's
        # ReplicaSpec provisioning spares on one replica) — it wins
        # over the constructor default rather than colliding with it.
        options = dict(backend_options or {})
        # The kernel knob travels either as the explicit constructor
        # argument or inside backend_options (the serving layer's
        # per-replica channel); the explicit argument wins.  Popped
        # before construction — it configures the engine's read path,
        # not the backend.
        options_kernel = options.pop("kernel", None)
        if kernel is None:
            kernel = options_kernel if options_kernel is not None else "reference"
        kernel = str(kernel)
        if kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown kernel {kernel!r}; choose from "
                f"{', '.join(KERNEL_CHOICES)}"
            )
        options.setdefault("spare_rows", spare_rows)
        self.backend = create_backend(
            self.backend_name,
            rows=self.layout.total_rows,
            cols=self.layout.total_cols,
            spec=self.spec,
            params=self.params,
            template=template,
            variation=variation,
            seed=backend_rng,
            **options,
        )
        self.backend.program(self.level_matrix)
        self.sensing = SensingModule(
            self.layout.total_rows,
            params=self.params,
            mirror_gain_sigma=mirror_gain_sigma,
            seed=sensing_rng,
        )
        # Resolve the kernel against the backend's capabilities now:
        # an engine must fail (or degrade) at construction, not on the
        # first read of a serving deployment.  The probe builds the
        # read tables once and draws no randomness.
        self._scratch_pool = default_pool()
        self._autotuner: Optional[KernelAutotuner] = None
        if kernel != "reference":
            try:
                self.backend.read_tables()
            except CapabilityError:
                if kernel != "auto":
                    raise
                kernel = "reference"
        self.kernel_name = kernel
        if kernel == "auto":
            self._autotuner = KernelAutotuner()

    @property
    def crossbar(self):
        """The underlying :class:`~repro.crossbar.array.FeFETCrossbar`.

        Only the FeFET reference backend has one; technology-agnostic
        code should address :attr:`backend` instead.
        """
        xbar = getattr(self.backend, "crossbar", None)
        if xbar is None:
            raise AttributeError(
                f"backend {self.backend_name!r} has no FeFET crossbar; "
                f"address engine.backend through the ArrayBackend "
                f"protocol instead"
            )
        return xbar

    # ---------------------------------------------------------------- reads
    def wordline_currents(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Measured I_WL for one discretised sample (amperes)."""
        mask = self.layout.active_columns(evidence_levels)
        return self.backend.wordline_currents(mask)

    def ideal_wordline_currents(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Theoretical I_WL from the spec's target currents (Fig. 5a).

        Sums the *ideal* level currents of the activated cells — no
        device physics, variation or leakage.
        """
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        scores = self.model.level_scores(evidence_levels[None, :])[0]
        n_active = self.layout.activated_per_inference
        # n_active cells per row, each i_min + level * step: the sum is
        # affine in the level sum.
        return n_active * self.spec.i_min + scores * self.spec.level_separation()

    # ------------------------------------------------------------ inference
    def _batch_levels(self, evidence_levels: np.ndarray) -> np.ndarray:
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.ndim == 1:
            evidence_levels = evidence_levels[None, :]
        return evidence_levels

    def _kernel_context(self) -> KernelContext:
        return KernelContext(
            tables=self.backend.read_tables(),
            pool=self._scratch_pool,
            native_read=self.backend.wordline_currents_batch,
        )

    def _resolve_kernel(self, masks: np.ndarray) -> str:
        """The concrete kernel for this batch (``auto`` -> tuned choice)."""
        if self.kernel_name != "auto":
            return self.kernel_name
        return self._autotuner.choose(
            self._kernel_context(), masks, self.sensing.mirrors.gains
        )

    def read_batch(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Measured I_WL for a batch of samples, shape ``(n, rows)``.

        The batch form of :meth:`wordline_currents`: masks for the whole
        batch are derived in one shot and the array is read through the
        selected kernel — the backend's own cached elementwise read on
        the default ``reference`` kernel, the affine GEMM on the opt-in
        fast modes.
        """
        masks = self.layout.active_columns_batch(self._batch_levels(evidence_levels))
        kernel = self._resolve_kernel(masks)
        if kernel == "reference":
            return self.backend.wordline_currents_batch(masks)
        return get_kernel(kernel).currents(self._kernel_context(), masks)

    def winners_batch(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Winning wordline index per sample — the winners-only entry.

        The fused read+decide path: masks are derived once and the
        selected kernel returns the argmax directly, so callers that
        only need decisions (:meth:`predict`, :meth:`score`) never
        materialise per-row currents on the fast kernels.  On the
        reference kernel this is exactly read + sensing decision,
        bit-identical to the historical path.
        """
        masks = self.layout.active_columns_batch(self._batch_levels(evidence_levels))
        kernel = self._resolve_kernel(masks)
        if kernel == "reference":
            return self.sensing.decide_batch(
                self.backend.wordline_currents_batch(masks)
            )
        return get_kernel(kernel).winners(
            self._kernel_context(), masks, row_scale=self.sensing.mirrors.gains
        )

    def predict(self, evidence_levels: np.ndarray) -> np.ndarray:
        """In-memory MAP predictions for a batch of discretised samples.

        Fully vectorised through :meth:`winners_batch`: one batched
        (possibly fused) wordline read plus one batched WTA decision,
        with no per-sample Python iteration.
        """
        return self.model.classes[self.winners_batch(evidence_levels)]

    def kernel_report(self) -> dict:
        """The active kernel and the autotuner's per-shape decisions.

        ``kernel`` is the resolved selection mode; ``choices`` lists
        one record per tuned shape class (empty unless ``auto``).
        """
        return {
            "kernel": self.kernel_name,
            "choices": self._autotuner.report() if self._autotuner else [],
        }

    def infer_batch(self, evidence_levels: np.ndarray) -> BatchInferenceReport:
        """Batched inference with full circuit-level reporting.

        Accepts ``(n_samples, n_features)`` evidence levels (a single
        1-D sample is treated as a batch of one; an empty batch returns
        empty per-sample arrays) and evaluates predictions, wordline
        currents, worst-case delays and energy breakdowns for the whole
        batch in one vectorised pass per layer.  Results are
        bit-identical to looping :meth:`infer_one` over the samples.
        """
        evidence_levels = self._batch_levels(evidence_levels)
        currents = self.read_batch(evidence_levels)
        winners = self.sensing.decide_batch(currents)
        # Delay/energy are the technology's own circuit model: the
        # FeFET backend reproduces the calibrated Fig. 6 models
        # bit-for-bit, the others charge their own physics (bitstream
        # cycles, DRAM fetches, ...).
        delay, energy = self.backend.inference_cost_batch(
            currents, self.layout.activated_per_inference
        )
        return BatchInferenceReport(
            predictions=self.model.classes[winners],
            winners=winners,
            wordline_currents=currents,
            delay=delay,
            energy=energy,
        )

    def infer_one(self, evidence_levels: np.ndarray) -> InferenceReport:
        """Single inference with full circuit-level reporting.

        Thin wrapper over :meth:`infer_batch` with a batch of one — the
        batch path *is* the implementation.
        """
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.shape != (self.layout.n_features,):
            raise ValueError(
                f"evidence_levels must have shape ({self.layout.n_features},), "
                f"got {evidence_levels.shape}"
            )
        return self.infer_batch(evidence_levels[None, :]).sample(0)

    def score(self, evidence_levels: np.ndarray, y: np.ndarray) -> float:
        """In-memory classification accuracy."""
        y = np.asarray(y)
        return float(np.mean(self.predict(evidence_levels) == y))

    # ------------------------------------------------------------- reporting
    def state_map(self) -> np.ndarray:
        """Programmed ideal I_DS per cell (amperes) — Fig. 8(b)."""
        currents = np.zeros(self.level_matrix.shape)
        programmed = self.level_matrix >= 0
        currents[programmed] = levels_to_currents(
            self.level_matrix[programmed], self.spec
        )
        return currents

    def measured_state_map(self) -> np.ndarray:
        """Measured I_DS per cell with all columns activated (amperes)."""
        return self.backend.current_matrix()

    @property
    def shape(self) -> tuple:
        """(rows, cols) of the programmed array."""
        return (self.backend.rows, self.backend.cols)

    @property
    def n_features(self) -> int:
        """Evidence width a request must have (serving-layer contract)."""
        return self.layout.n_features

    def __repr__(self) -> str:
        rows, cols = self.shape
        return (
            f"FeBiMEngine({rows}x{cols} {self.backend_name} array, "
            f"{self.spec.n_levels} levels, "
            f"prior_column={self.layout.include_prior})"
        )
