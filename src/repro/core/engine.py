"""The FeBiM in-memory Bayesian inference engine (Sec. 3, Fig. 3).

:class:`FeBiMEngine` owns a programmed :class:`FeFETCrossbar`, its column
layout and its sensing module.  Inference is one "cycle": activate one
bitline per evidence node (plus the prior column when present), read the
accumulated wordline currents — which *are* the quantised log-posteriors
— and let the WTA pick the winner.

The engine also reports per-inference delay/energy through the calibrated
circuit models and exposes the programmed state map (Fig. 8b).

Batched inference API
---------------------

The macro performs one inference per read cycle, and the simulator
serves whole request streams the same way: densely batched.
:meth:`FeBiMEngine.infer_batch` takes ``(n_samples, n_features)``
evidence levels and pushes the entire batch through every layer in one
vectorised pass — activation masks
(:meth:`~repro.crossbar.layout.BayesianArrayLayout.active_columns_batch`),
wordline reads
(:meth:`~repro.crossbar.array.FeFETCrossbar.wordline_currents_batch`
over the array's cached per-cell current matrices), WTA decisions
(:meth:`~repro.crossbar.sensing.SensingModule.decide_batch`), and the
delay/energy models' ``*_batch`` forms — returning a
:class:`BatchInferenceReport` with per-sample predictions, currents,
delays and an energy breakdown.

The batch path is *bit-identical* to per-sample inference under a fixed
seed (enforced by ``tests/property/test_batch_equivalence.py``):
:meth:`FeBiMEngine.predict` and :meth:`FeBiMEngine.infer_one` are thin
wrappers over the same batch core, and per-read noise is drawn once per
batch in the exact order the per-sample loop would consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.mapping import ProbabilityMapper, levels_to_currents
from repro.core.quantization import QuantizedBayesianModel
from repro.crossbar.array import FeFETCrossbar
from repro.crossbar.energy import BatchEnergyBreakdown, EnergyBreakdown, EnergyModel
from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.sensing import SensingModule
from repro.crossbar.timing import DelayModel
from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.devices.variation import VariationModel
from repro.utils.rng import RngLike, spawn_rngs


@dataclass(frozen=True)
class InferenceReport:
    """Per-inference circuit-level summary.

    Attributes
    ----------
    prediction:
        Winning class label.
    wordline_currents:
        The accumulated I_WL vector (amperes) — the analog posterior.
    delay:
        Worst-case inference latency (seconds).
    energy:
        Energy breakdown (array vs sensing), joules.
    """

    prediction: int
    wordline_currents: np.ndarray
    delay: float
    energy: EnergyBreakdown


@dataclass(frozen=True)
class BatchInferenceReport:
    """Circuit-level summary of a batch of inferences (one read cycle each).

    Attributes
    ----------
    predictions:
        Winning class label per sample, shape ``(n_samples,)``.
    winners:
        Winning wordline index per sample (row into the array).
    wordline_currents:
        Accumulated I_WL per sample, shape ``(n_samples, rows)`` (amperes).
    delay:
        Worst-case inference latency per sample (seconds).
    energy:
        Per-sample energy breakdown (:class:`BatchEnergyBreakdown`).
    """

    predictions: np.ndarray
    winners: np.ndarray
    wordline_currents: np.ndarray
    delay: np.ndarray
    energy: BatchEnergyBreakdown

    def __len__(self) -> int:
        return self.predictions.shape[0]

    def sample(self, i: int) -> InferenceReport:
        """The ``i``-th sample's result as a scalar :class:`InferenceReport`."""
        return InferenceReport(
            prediction=int(self.predictions[i]),
            wordline_currents=self.wordline_currents[i],
            delay=float(self.delay[i]),
            energy=self.energy.sample(i),
        )


class FeBiMEngine:
    """A programmed FeBiM macro ready for in-memory inference.

    Parameters
    ----------
    model:
        The quantised Bayesian model to program.
    spec:
        Multi-level cell spec (defaults to 4 levels over 0.1-1.0 uA; must
        match the model's quantisation level count).
    variation:
        FeFET V_TH variation for robustness studies; ideal by default.
    params:
        Circuit operating point / calibration constants.
    template:
        Template FeFET device (physics).
    mirror_gain_sigma:
        Current-mirror mismatch in the sensing module.
    spare_rows:
        Extra physical wordlines manufactured for spare-row repair
        (:meth:`~repro.crossbar.array.FeFETCrossbar.remap_row`); zero by
        default, which reproduces the plain engine bit-for-bit.
    seed:
        Seed for the stochastic draws.  It is split into independent
        child streams (:func:`~repro.utils.rng.spawn_rngs`) for the
        crossbar's variation/read-noise draws and the sensing module's
        mirror-mismatch draw, so the two noise sources are never
        correlated by a shared seed.
    """

    def __init__(
        self,
        model: QuantizedBayesianModel,
        spec: Optional[MultiLevelCellSpec] = None,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        template: Optional[FeFET] = None,
        mirror_gain_sigma: float = 0.0,
        spare_rows: int = 0,
        seed: RngLike = None,
    ):
        self.model = model
        self.spec = spec or MultiLevelCellSpec(n_levels=model.quantizer.n_levels)
        self.params = params or CircuitParameters()
        mapper = ProbabilityMapper(self.spec)
        self.level_matrix, self.layout = mapper.level_matrix(model)

        crossbar_rng, sensing_rng = spawn_rngs(seed, 2)
        self.crossbar = FeFETCrossbar(
            rows=self.layout.total_rows,
            cols=self.layout.total_cols,
            spec=self.spec,
            template=template,
            variation=variation,
            params=self.params,
            seed=crossbar_rng,
            spare_rows=spare_rows,
        )
        self.crossbar.program_matrix(self.level_matrix)
        self.sensing = SensingModule(
            self.layout.total_rows,
            params=self.params,
            mirror_gain_sigma=mirror_gain_sigma,
            seed=sensing_rng,
        )
        self.delay_model = DelayModel(self.params)
        self.energy_model = EnergyModel(self.params)

    # ---------------------------------------------------------------- reads
    def wordline_currents(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Measured I_WL for one discretised sample (amperes)."""
        mask = self.layout.active_columns(evidence_levels)
        return self.crossbar.wordline_currents(mask)

    def ideal_wordline_currents(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Theoretical I_WL from the spec's target currents (Fig. 5a).

        Sums the *ideal* level currents of the activated cells — no
        device physics, variation or leakage.
        """
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        scores = self.model.level_scores(evidence_levels[None, :])[0]
        n_active = self.layout.activated_per_inference
        # n_active cells per row, each i_min + level * step: the sum is
        # affine in the level sum.
        return n_active * self.spec.i_min + scores * self.spec.level_separation()

    # ------------------------------------------------------------ inference
    def _batch_levels(self, evidence_levels: np.ndarray) -> np.ndarray:
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.ndim == 1:
            evidence_levels = evidence_levels[None, :]
        return evidence_levels

    def read_batch(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Measured I_WL for a batch of samples, shape ``(n, rows)``.

        The batch form of :meth:`wordline_currents`: masks for the whole
        batch are derived in one shot and the array is read once through
        its cached per-cell current matrices.
        """
        masks = self.layout.active_columns_batch(self._batch_levels(evidence_levels))
        return self.crossbar.wordline_currents_batch(masks)

    def predict(self, evidence_levels: np.ndarray) -> np.ndarray:
        """In-memory MAP predictions for a batch of discretised samples.

        Fully vectorised: one batched wordline read plus one batched WTA
        decision, with no per-sample Python iteration.
        """
        currents = self.read_batch(evidence_levels)
        return self.model.classes[self.sensing.decide_batch(currents)]

    def infer_batch(self, evidence_levels: np.ndarray) -> BatchInferenceReport:
        """Batched inference with full circuit-level reporting.

        Accepts ``(n_samples, n_features)`` evidence levels (a single
        1-D sample is treated as a batch of one; an empty batch returns
        empty per-sample arrays) and evaluates predictions, wordline
        currents, worst-case delays and energy breakdowns for the whole
        batch in one vectorised pass per layer.  Results are
        bit-identical to looping :meth:`infer_one` over the samples.
        """
        evidence_levels = self._batch_levels(evidence_levels)
        currents = self.read_batch(evidence_levels)
        winners = self.sensing.decide_batch(currents)

        rows, cols = self.crossbar.rows, self.crossbar.cols
        n = currents.shape[0]
        separation = self.spec.level_separation()
        if rows > 1:
            # Top-two currents per sample; `gap or separation` semantics
            # of the scalar path (an exact tie falls back to one LSB).
            top_two = np.partition(currents, rows - 2, axis=1)[:, rows - 2:]
            gaps = top_two[:, 1] - top_two[:, 0]
            gaps = np.where(gaps == 0.0, separation, gaps)
        else:
            gaps = np.full(n, separation)
        min_gaps = np.maximum(gaps, 1e-9 * self.spec.i_min)
        delay = self.delay_model.inference_delay_batch(
            rows=rows,
            cols=cols,
            i_total=np.maximum(currents.sum(axis=1), 1e-12),
            delta_i=min_gaps,
        )
        energy = self.energy_model.inference_energy_batch(
            rows=rows,
            cols=cols,
            n_active_bls=self.layout.activated_per_inference,
            wordline_currents=currents,
            delay=delay,
        )
        return BatchInferenceReport(
            predictions=self.model.classes[winners],
            winners=winners,
            wordline_currents=currents,
            delay=delay,
            energy=energy,
        )

    def infer_one(self, evidence_levels: np.ndarray) -> InferenceReport:
        """Single inference with full circuit-level reporting.

        Thin wrapper over :meth:`infer_batch` with a batch of one — the
        batch path *is* the implementation.
        """
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.shape != (self.layout.n_features,):
            raise ValueError(
                f"evidence_levels must have shape ({self.layout.n_features},), "
                f"got {evidence_levels.shape}"
            )
        return self.infer_batch(evidence_levels[None, :]).sample(0)

    def score(self, evidence_levels: np.ndarray, y: np.ndarray) -> float:
        """In-memory classification accuracy."""
        y = np.asarray(y)
        return float(np.mean(self.predict(evidence_levels) == y))

    # ------------------------------------------------------------- reporting
    def state_map(self) -> np.ndarray:
        """Programmed ideal I_DS per cell (amperes) — Fig. 8(b)."""
        currents = np.zeros(self.level_matrix.shape)
        programmed = self.level_matrix >= 0
        currents[programmed] = levels_to_currents(
            self.level_matrix[programmed], self.spec
        )
        return currents

    def measured_state_map(self) -> np.ndarray:
        """Measured I_DS per cell with all columns activated (amperes)."""
        return self.crossbar.current_matrix()

    @property
    def shape(self) -> tuple:
        """(rows, cols) of the programmed array."""
        return (self.crossbar.rows, self.crossbar.cols)

    @property
    def n_features(self) -> int:
        """Evidence width a request must have (serving-layer contract)."""
        return self.layout.n_features

    def __repr__(self) -> str:
        rows, cols = self.shape
        return (
            f"FeBiMEngine({rows}x{cols} crossbar, {self.spec.n_levels} levels, "
            f"prior_column={self.layout.include_prior})"
        )
