"""The FeBiM in-memory Bayesian inference engine (Sec. 3, Fig. 3).

:class:`FeBiMEngine` owns a programmed :class:`FeFETCrossbar`, its column
layout and its sensing module.  Inference is one "cycle": activate one
bitline per evidence node (plus the prior column when present), read the
accumulated wordline currents — which *are* the quantised log-posteriors
— and let the WTA pick the winner.

The engine also reports per-inference delay/energy through the calibrated
circuit models and exposes the programmed state map (Fig. 8b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.mapping import ProbabilityMapper, levels_to_currents
from repro.core.quantization import QuantizedBayesianModel
from repro.crossbar.array import FeFETCrossbar
from repro.crossbar.energy import EnergyBreakdown, EnergyModel
from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.sensing import SensingModule
from repro.crossbar.timing import DelayModel
from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.devices.variation import VariationModel
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class InferenceReport:
    """Per-inference circuit-level summary.

    Attributes
    ----------
    prediction:
        Winning class label.
    wordline_currents:
        The accumulated I_WL vector (amperes) — the analog posterior.
    delay:
        Worst-case inference latency (seconds).
    energy:
        Energy breakdown (array vs sensing), joules.
    """

    prediction: int
    wordline_currents: np.ndarray
    delay: float
    energy: EnergyBreakdown


class FeBiMEngine:
    """A programmed FeBiM macro ready for in-memory inference.

    Parameters
    ----------
    model:
        The quantised Bayesian model to program.
    spec:
        Multi-level cell spec (defaults to 4 levels over 0.1-1.0 uA; must
        match the model's quantisation level count).
    variation:
        FeFET V_TH variation for robustness studies; ideal by default.
    params:
        Circuit operating point / calibration constants.
    template:
        Template FeFET device (physics).
    mirror_gain_sigma:
        Current-mirror mismatch in the sensing module.
    seed:
        Seed for the variation draws.
    """

    def __init__(
        self,
        model: QuantizedBayesianModel,
        spec: Optional[MultiLevelCellSpec] = None,
        variation: Optional[VariationModel] = None,
        params: Optional[CircuitParameters] = None,
        template: Optional[FeFET] = None,
        mirror_gain_sigma: float = 0.0,
        seed: RngLike = None,
    ):
        self.model = model
        self.spec = spec or MultiLevelCellSpec(n_levels=model.quantizer.n_levels)
        self.params = params or CircuitParameters()
        mapper = ProbabilityMapper(self.spec)
        self.level_matrix, self.layout = mapper.level_matrix(model)

        self.crossbar = FeFETCrossbar(
            rows=self.layout.total_rows,
            cols=self.layout.total_cols,
            spec=self.spec,
            template=template,
            variation=variation,
            params=self.params,
            seed=seed,
        )
        self.crossbar.program_matrix(self.level_matrix)
        self.sensing = SensingModule(
            self.layout.total_rows,
            params=self.params,
            mirror_gain_sigma=mirror_gain_sigma,
            seed=seed,
        )
        self.delay_model = DelayModel(self.params)
        self.energy_model = EnergyModel(self.params)

    # ---------------------------------------------------------------- reads
    def wordline_currents(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Measured I_WL for one discretised sample (amperes)."""
        mask = self.layout.active_columns(evidence_levels)
        return self.crossbar.wordline_currents(mask)

    def ideal_wordline_currents(self, evidence_levels: np.ndarray) -> np.ndarray:
        """Theoretical I_WL from the spec's target currents (Fig. 5a).

        Sums the *ideal* level currents of the activated cells — no
        device physics, variation or leakage.
        """
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        scores = self.model.level_scores(evidence_levels[None, :])[0]
        n_active = self.layout.activated_per_inference
        # n_active cells per row, each i_min + level * step: the sum is
        # affine in the level sum.
        return n_active * self.spec.i_min + scores * self.spec.level_separation()

    # ------------------------------------------------------------ inference
    def predict(self, evidence_levels: np.ndarray) -> np.ndarray:
        """In-memory MAP predictions for a batch of discretised samples."""
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.ndim == 1:
            evidence_levels = evidence_levels[None, :]
        masks = self.layout.active_columns_batch(evidence_levels)
        out = np.empty(evidence_levels.shape[0], dtype=self.model.classes.dtype)
        for i, mask in enumerate(masks):
            currents = self.crossbar.wordline_currents(mask)
            out[i] = self.model.classes[self.sensing.decide(currents)]
        return out

    def infer_one(self, evidence_levels: np.ndarray) -> InferenceReport:
        """Single inference with full circuit-level reporting."""
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        mask = self.layout.active_columns(evidence_levels)
        currents = self.crossbar.wordline_currents(mask)
        winner = self.sensing.decide(currents)

        ordered = np.sort(currents)
        gap = float(ordered[-1] - ordered[-2]) if currents.size > 1 else None
        min_gap = max(gap or self.spec.level_separation(), 1e-9 * self.spec.i_min)
        delay = self.delay_model.inference_delay(
            rows=self.crossbar.rows,
            cols=self.crossbar.cols,
            i_total=max(float(currents.sum()), 1e-12),
            delta_i=min_gap,
        )
        energy = self.energy_model.inference_energy(
            rows=self.crossbar.rows,
            cols=self.crossbar.cols,
            n_active_bls=self.layout.activated_per_inference,
            wordline_currents=currents,
            delay=delay,
        )
        return InferenceReport(
            prediction=int(self.model.classes[winner]),
            wordline_currents=currents,
            delay=delay,
            energy=energy,
        )

    def score(self, evidence_levels: np.ndarray, y: np.ndarray) -> float:
        """In-memory classification accuracy."""
        y = np.asarray(y)
        return float(np.mean(self.predict(evidence_levels) == y))

    # ------------------------------------------------------------- reporting
    def state_map(self) -> np.ndarray:
        """Programmed ideal I_DS per cell (amperes) — Fig. 8(b)."""
        currents = np.zeros(self.level_matrix.shape)
        programmed = self.level_matrix >= 0
        currents[programmed] = levels_to_currents(
            self.level_matrix[programmed], self.spec
        )
        return currents

    def measured_state_map(self) -> np.ndarray:
        """Measured I_DS per cell with all columns activated (amperes)."""
        return self.crossbar.current_matrix()

    @property
    def shape(self) -> tuple:
        """(rows, cols) of the programmed array."""
        return (self.crossbar.rows, self.crossbar.cols)

    def __repr__(self) -> str:
        rows, cols = self.shape
        return (
            f"FeBiMEngine({rows}x{cols} crossbar, {self.spec.n_levels} levels, "
            f"prior_column={self.layout.include_prior})"
        )
