"""Shared utilities: physical units, random-number helpers, validation."""

from repro.utils.units import (
    FEMTO,
    GIGA,
    KILO,
    MEGA,
    MICRO,
    MILLI,
    NANO,
    PICO,
    TERA,
    from_si,
    to_si,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability_matrix,
)

__all__ = [
    "FEMTO",
    "GIGA",
    "KILO",
    "MEGA",
    "MICRO",
    "MILLI",
    "NANO",
    "PICO",
    "TERA",
    "from_si",
    "to_si",
    "ensure_rng",
    "check_array_1d",
    "check_array_2d",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "check_probability_matrix",
]
