"""Random-number-generator plumbing.

Every stochastic component in the library accepts either ``None`` (fresh
entropy), an integer seed, or an existing :class:`numpy.random.Generator`.
``ensure_rng`` normalises all three into a Generator so call sites never
branch on the type themselves.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged (so a caller can
        thread one RNG through a whole experiment).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed: RngLike, n: int) -> List[np.random.Generator]:
    """Split one seed into ``n`` statistically independent Generators.

    Components that each need their own noise source (e.g. a crossbar's
    variation draw and a sensing module's mirror-mismatch draw) must not
    be handed the *same* integer seed: both would then replay an
    identical stream and their draws would be perfectly correlated.
    This helper derives ``n`` independent child streams instead:

    * an ``int`` or ``None`` seed is expanded through
      :class:`numpy.random.SeedSequence` spawning;
    * an existing :class:`~numpy.random.Generator` is split with
      :meth:`~numpy.random.Generator.spawn`, leaving the parent's own
      stream position untouched (successive calls yield fresh children,
      so one Generator can be threaded through a whole experiment).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(n))
    if seed is None or isinstance(seed, (int, np.integer)):
        children = np.random.SeedSequence(seed).spawn(n)
        return [np.random.default_rng(child) for child in children]
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )
