"""Random-number-generator plumbing.

Every stochastic component in the library accepts either ``None`` (fresh
entropy), an integer seed, or an existing :class:`numpy.random.Generator`.
``ensure_rng`` normalises all three into a Generator so call sites never
branch on the type themselves.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged (so a caller can
        thread one RNG through a whole experiment).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )
