"""SI unit prefixes and conversion helpers.

All internal computations in :mod:`repro` use base SI units (amperes,
volts, seconds, joules, square metres).  The paper reports values in
micro-amps, picoseconds, femtojoules and Mb/mm^2, so these constants keep
conversions explicit and greppable instead of scattering bare ``1e-6``
literals through the code.
"""

from __future__ import annotations

#: SI prefix multipliers (value of one prefixed unit in base units).
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

_PREFIXES = {
    "m": MILLI,
    "u": MICRO,
    "µ": MICRO,
    "n": NANO,
    "p": PICO,
    "f": FEMTO,
    "k": KILO,
    "M": MEGA,
    "G": GIGA,
    "T": TERA,
    "": 1.0,
}


def to_si(value: float, prefix: str) -> float:
    """Convert ``value`` expressed with an SI ``prefix`` into base units.

    >>> to_si(1.0, "u")   # 1 uA -> 1e-6 A
    1e-06
    """
    try:
        return value * _PREFIXES[prefix]
    except KeyError:
        raise ValueError(f"unknown SI prefix {prefix!r}") from None


def from_si(value: float, prefix: str) -> float:
    """Convert ``value`` in base SI units into the prefixed unit.

    >>> from_si(1e-6, "u")   # 1e-6 A -> 1 uA
    1.0
    """
    try:
        return value / _PREFIXES[prefix]
    except KeyError:
        raise ValueError(f"unknown SI prefix {prefix!r}") from None
