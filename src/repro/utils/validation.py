"""Input validation helpers shared across the library.

These raise early, with messages naming the offending argument, instead of
letting numpy broadcast errors surface deep inside device or array code.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it unchanged."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Require an integer ``value >= 1``; return it as a built-in int."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_in_range(
    value: float, name: str, low: float, high: float, inclusive: bool = True
) -> float:
    """Require ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return float(value)


def check_array_1d(arr: np.ndarray, name: str) -> np.ndarray:
    """Coerce to a 1-D float array, rejecting other shapes."""
    out = np.asarray(arr, dtype=float)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    return out


def check_array_2d(
    arr: np.ndarray, name: str, shape: Tuple[int, int] = None
) -> np.ndarray:
    """Coerce to a 2-D float array, optionally enforcing an exact shape."""
    out = np.asarray(arr, dtype=float)
    if out.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {out.shape}")
    if shape is not None and out.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {out.shape}")
    return out


def check_probability_matrix(arr: np.ndarray, name: str) -> np.ndarray:
    """Coerce to a 2-D array of probabilities in (0, 1]."""
    out = check_array_2d(arr, name)
    if np.any(~np.isfinite(out)):
        raise ValueError(f"{name} contains non-finite entries")
    if np.any(out <= 0) or np.any(out > 1):
        raise ValueError(f"{name} entries must lie in (0, 1]")
    return out
