"""Fig. 6: delay/energy scalability sweeps.

(a, b) 2 rows, columns 2 -> 256 (all bitlines activated): inference
delay ~200 -> ~800 ps, energy a few -> tens of fJ, array-dominated at
large column counts.

(c, d) 32 columns, rows 2 -> 32: delay ~200 -> ~1000 ps, energy up to
~250 fJ, sensing-dominated at large row counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crossbar.energy import EnergyModel
from repro.crossbar.parameters import CircuitParameters
from repro.crossbar.timing import DelayModel


@dataclass(frozen=True)
class Fig6Result:
    """Both sweeps: delay and energy series (SI units)."""

    col_counts: np.ndarray
    col_delays: np.ndarray
    col_energy_array: np.ndarray
    col_energy_sensing: np.ndarray
    row_counts: np.ndarray
    row_delays: np.ndarray
    row_energy_array: np.ndarray
    row_energy_sensing: np.ndarray

    @property
    def col_energy_total(self) -> np.ndarray:
        return self.col_energy_array + self.col_energy_sensing

    @property
    def row_energy_total(self) -> np.ndarray:
        return self.row_energy_array + self.row_energy_sensing


def run_fig6(
    col_counts: Sequence[int] = (2, 4, 8, 16, 32, 64, 128, 256),
    col_rows: int = 2,
    row_counts: Sequence[int] = (2, 4, 8, 16, 32),
    row_cols: int = 32,
    params: CircuitParameters = None,
) -> Fig6Result:
    """Run both Fig. 6 sweeps with all bitlines activated."""
    params = params or CircuitParameters()
    delay_model = DelayModel(params)
    energy_model = EnergyModel(params)

    col_delays, col_e_array, col_e_sense = [], [], []
    for cols in col_counts:
        col_delays.append(delay_model.inference_delay(col_rows, int(cols)))
        e = energy_model.stress_energy(col_rows, int(cols))
        col_e_array.append(e.array)
        col_e_sense.append(e.sensing)

    row_delays, row_e_array, row_e_sense = [], [], []
    for rows in row_counts:
        row_delays.append(delay_model.inference_delay(int(rows), row_cols))
        e = energy_model.stress_energy(int(rows), row_cols)
        row_e_array.append(e.array)
        row_e_sense.append(e.sensing)

    return Fig6Result(
        col_counts=np.asarray(col_counts, dtype=int),
        col_delays=np.asarray(col_delays),
        col_energy_array=np.asarray(col_e_array),
        col_energy_sensing=np.asarray(col_e_sense),
        row_counts=np.asarray(row_counts, dtype=int),
        row_delays=np.asarray(row_delays),
        row_energy_array=np.asarray(row_e_array),
        row_energy_sensing=np.asarray(row_e_sense),
    )


def format_fig6(result: Fig6Result) -> str:
    """Both sweeps as paper-style series."""
    lines = [
        "Fig. 6(a,b) — 2 rows, growing columns (all BLs active)",
        "cols   delay (ps)   E_array (fJ)   E_sensing (fJ)   E_total (fJ)",
    ]
    for i, cols in enumerate(result.col_counts):
        lines.append(
            f"{cols:4d}   {result.col_delays[i] * 1e12:10.0f}   "
            f"{result.col_energy_array[i] * 1e15:12.2f}   "
            f"{result.col_energy_sensing[i] * 1e15:14.2f}   "
            f"{result.col_energy_total[i] * 1e15:12.2f}"
        )
    lines.append("")
    lines.append("Fig. 6(c,d) — 32 columns, growing rows (all BLs active)")
    lines.append("rows   delay (ps)   E_array (fJ)   E_sensing (fJ)   E_total (fJ)")
    for i, rows in enumerate(result.row_counts):
        lines.append(
            f"{rows:4d}   {result.row_delays[i] * 1e12:10.0f}   "
            f"{result.row_energy_array[i] * 1e15:12.2f}   "
            f"{result.row_energy_sensing[i] * 1e15:14.2f}   "
            f"{result.row_energy_total[i] * 1e15:12.2f}"
        )
    return "\n".join(lines)
