"""One-shot evaluation report: every figure/table in a single run.

:func:`generate_report` regenerates the paper's full evaluation (at a
configurable epoch budget) and returns it as one text document — the
programmatic counterpart of EXPERIMENTS.md, exposed on the CLI as
``febim report``.
"""

from __future__ import annotations

from typing import Optional

from repro.utils.validation import check_positive_int

_RULE = "=" * 72


def generate_report(epochs: int = 20, seed: int = 0, fast: bool = False) -> str:
    """Regenerate every evaluation artefact and format it as text.

    Parameters
    ----------
    epochs:
        Epoch budget for the statistical experiments (the paper uses
        100; 20 keeps a full report under ~2 minutes).
    fast:
        Skip the two slowest grids (Fig. 7 over all datasets and the
        full Fig. 8a precision grid), replacing them with iris-only /
        operating-point summaries.
    """
    check_positive_int(epochs, "epochs")
    from repro.experiments import (
        format_fig1,
        format_fig4,
        format_fig5,
        format_fig6,
        format_fig8,
        format_table1_experiment,
        run_fig1,
        run_fig4a,
        run_fig4b,
        run_fig5_currents,
        run_fig5_wta,
        run_fig6,
        run_fig8a,
        run_fig8b,
        run_fig8c,
        run_table1,
    )
    from repro.experiments.fig7_quantization import format_fig7, run_fig7

    sections = [
        "FeBiM evaluation report (regenerated)",
        _RULE,
        format_fig1(run_fig1()),
        _RULE,
        format_fig4(run_fig4a(), run_fig4b()),
        _RULE,
        format_fig5(run_fig5_currents(), run_fig5_wta()),
        _RULE,
        format_fig6(run_fig6()),
        _RULE,
    ]

    fig7_datasets = ("iris",) if fast else ("iris", "wine", "cancer")
    sections.append(
        format_fig7(run_fig7(datasets=fig7_datasets, epochs=epochs, seed=seed))
    )
    sections.append(_RULE)

    grid_bits = (2, 4) if fast else (1, 2, 3, 4, 5, 6, 7, 8)
    fig8a = run_fig8a(qf_bits=grid_bits, ql_bits=grid_bits, epochs=epochs, seed=seed)
    fig8b = run_fig8b(seed=seed)
    fig8c = run_fig8c(epochs=epochs, seed=seed)
    sections.append(format_fig8(fig8a, fig8b, fig8c))
    sections.append(_RULE)
    sections.append(format_table1_experiment(run_table1(seed=seed)))
    return "\n".join(sections)


def write_report(
    path: str, epochs: int = 20, seed: int = 0, fast: bool = False
) -> Optional[str]:
    """Generate and write the report; returns the path written."""
    from pathlib import Path

    text = generate_report(epochs=epochs, seed=seed, fast=fast)
    out = Path(path)
    out.write_text(text + "\n")
    return str(out)
