"""Fig. 8: the iris-GNBC implemented on the FeBiM crossbar.

(a) mean accuracy over the full Q_f x Q_l grid (1-8 bit each), with the
paper's chosen operating point Q_f = 4, Q_l = 2 achieving ~94.6 %;
(b) the programmed 3 x 64 crossbar's I_DS state map (uniform prior
column omitted);
(c) hardware accuracy distributions under V_TH variation sigma in
{0, 15, 30, 45} mV — mean drop ~5 % at 45 mV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.montecarlo import variation_sweep
from repro.core.pipeline import FeBiMPipeline, run_epochs
from repro.datasets import load_iris, train_test_split
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class Fig8aResult:
    """Accuracy heat-map over quantisation precisions."""

    qf_bits: np.ndarray
    ql_bits: np.ndarray
    accuracy: np.ndarray  # (len(qf), len(ql))
    baseline: float

    def delta_acc(self) -> np.ndarray:
        """Accuracy loss vs the software baseline (positive = worse)."""
        return self.baseline - self.accuracy

    def within_one_percent(self) -> np.ndarray:
        """The paper's highlighted region: delta_acc < 1 %."""
        return self.delta_acc() < 0.01

    def at(self, q_f: int, q_l: int) -> float:
        i = int(np.flatnonzero(self.qf_bits == q_f)[0])
        j = int(np.flatnonzero(self.ql_bits == q_l)[0])
        return float(self.accuracy[i, j])


def run_fig8a(
    qf_bits: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    ql_bits: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    epochs: int = 100,
    seed: RngLike = 0,
) -> Fig8aResult:
    """Quantisation grid on iris (quantised-digital mode; the ideal
    crossbar computes the identical argmax)."""
    data = load_iris()
    rng = ensure_rng(seed)
    baseline = float(run_epochs(data, mode="software", epochs=epochs, seed=rng).mean())
    grid = np.zeros((len(qf_bits), len(ql_bits)))
    for i, qf in enumerate(qf_bits):
        for j, ql in enumerate(ql_bits):
            grid[i, j] = run_epochs(
                data, q_f=qf, q_l=ql, mode="quantized", epochs=epochs, seed=rng
            ).mean()
    return Fig8aResult(
        qf_bits=np.asarray(qf_bits, dtype=int),
        ql_bits=np.asarray(ql_bits, dtype=int),
        accuracy=grid,
        baseline=baseline,
    )


@dataclass(frozen=True)
class Fig8bResult:
    """The programmed crossbar state map."""

    state_map: np.ndarray  # (rows, cols) amperes
    rows: int
    cols: int
    include_prior: bool

    def current_histogram(self) -> Dict[float, int]:
        """Count of cells per discrete current level (uA, rounded)."""
        values, counts = np.unique(np.round(self.state_map * 1e6, 3), return_counts=True)
        return dict(zip(values.tolist(), counts.tolist()))


def run_fig8b(q_f: int = 4, q_l: int = 2, seed: int = 0) -> Fig8bResult:
    """Program the iris-GNBC crossbar at the paper's operating point."""
    data = load_iris()
    X_tr, _, y_tr, _ = train_test_split(data.data, data.target, seed=seed)
    pipeline = FeBiMPipeline(q_f=q_f, q_l=q_l, seed=seed).fit(X_tr, y_tr)
    state_map = pipeline.engine_.state_map()
    rows, cols = pipeline.engine_.shape
    return Fig8bResult(
        state_map=state_map,
        rows=rows,
        cols=cols,
        include_prior=pipeline.engine_.layout.include_prior,
    )


def run_fig8c(
    sigmas_mv: Sequence[float] = (0.0, 15.0, 30.0, 45.0),
    epochs: int = 100,
    seed: RngLike = 0,
) -> Dict[float, np.ndarray]:
    """Variation robustness sweep (accuracy distributions per sigma)."""
    return variation_sweep(load_iris(), sigmas_mv=sigmas_mv, epochs=epochs, seed=seed)


def format_fig8(
    a: Fig8aResult, b: Fig8bResult, c: Dict[float, np.ndarray]
) -> str:
    """All three panels as text."""
    lines = [
        "Fig. 8(a) — iris accuracy (%) over Q_f (rows) x Q_l (cols)",
        "       " + "  ".join(f"Ql={q}" for q in a.ql_bits),
    ]
    for i, qf in enumerate(a.qf_bits):
        row = f"Qf={qf}  " + "  ".join(f"{v * 100:5.1f}" for v in a.accuracy[i])
        lines.append(row)
    lines.append(f"software baseline: {a.baseline * 100:.2f} %")
    lines.append(
        f"operating point Qf=4, Ql=2: {a.at(4, 2) * 100:.2f} % (paper: 94.64 %)"
    )
    lines.append("")
    lines.append(
        f"Fig. 8(b) — programmed crossbar: {b.rows} x {b.cols} "
        f"(prior column: {'yes' if b.include_prior else 'omitted — uniform prior'})"
    )
    lines.append(f"I_DS level histogram (uA: cells): {b.current_histogram()}")
    lines.append("")
    lines.append("Fig. 8(c) — accuracy vs V_TH variation")
    lines.append("sigma (mV)   mean      std      min")
    for sigma in sorted(c):
        acc = c[sigma]
        lines.append(
            f"{sigma:10.0f}   {acc.mean() * 100:6.2f}%  {acc.std() * 100:6.2f}%  "
            f"{acc.min() * 100:6.2f}%"
        )
    return "\n".join(lines)
