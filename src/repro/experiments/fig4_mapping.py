"""Fig. 4: the probability -> FeFET-state mapping walk-through.

(a) A probability column is truncated at one decade, log-converted,
column-normalised to P' in [-1.3, 1.0] (natural log, confirming the
paper's axis), uniformly quantised to 10 levels and linearly mapped to
I_DS in 0.1-1.0 uA.

(b) The write configuration for each state: gate pulse number vs the
achieved I_DS (the programmer's staircase, ~40-70 pulses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.mapping import ProbabilityMapper
from repro.devices.fefet import FeFET, MultiLevelCellSpec
from repro.devices.programming import PulseProgrammer, WriteConfiguration


@dataclass(frozen=True)
class Fig4aResult:
    """The mapping staircase of one probability column."""

    p: np.ndarray
    p_truncated: np.ndarray
    p_prime: np.ndarray
    levels: np.ndarray
    currents: np.ndarray

    @property
    def p_prime_range(self) -> tuple:
        return float(self.p_prime.min()), float(self.p_prime.max())


@dataclass(frozen=True)
class Fig4bResult:
    """Pulse-count staircase over the discrete states."""

    configurations: List[WriteConfiguration]

    @property
    def pulse_counts(self) -> np.ndarray:
        return np.array([c.n_pulses for c in self.configurations])

    @property
    def achieved_currents(self) -> np.ndarray:
        return np.array([c.achieved_current for c in self.configurations])

    def max_error(self) -> float:
        return max(c.current_error for c in self.configurations)


def run_fig4a(n_levels: int = 10, n_points: int = 16, seed: int = 7) -> Fig4aResult:
    """The Fig. 4(a) example: map a spread of probabilities."""
    rng = np.random.default_rng(seed)
    # A representative probability column spanning the truncation range,
    # including values below the 0.1 truncation point and a maximum of 1.
    p = np.sort(np.concatenate([[1.0, 0.1, 0.03], rng.uniform(0.02, 1.0, n_points - 3)]))
    mapper = ProbabilityMapper(MultiLevelCellSpec(n_levels=n_levels))
    example = mapper.fig4_example(p, n_levels=n_levels)
    return Fig4aResult(
        p=example["p"],
        p_truncated=example["p_truncated"],
        p_prime=example["p_prime"],
        levels=example["levels"],
        currents=example["currents"],
    )


def run_fig4b(n_levels: int = 10) -> Fig4bResult:
    """The Fig. 4(b) staircase: pulse count per state."""
    programmer = PulseProgrammer(FeFET(), MultiLevelCellSpec(n_levels=n_levels))
    return Fig4bResult(configurations=programmer.build_table())


def format_fig4(a: Fig4aResult, b: Fig4bResult) -> str:
    """Both panels as text."""
    lo, hi = a.p_prime_range
    lines = [
        "Fig. 4(a) — probability mapping staircase",
        f"P' range: [{lo:.3f}, {hi:.3f}]  (paper: [-1.3, 1.0])",
        "P        P_trunc   P'       level  I_DS (uA)",
    ]
    for i in range(len(a.p)):
        lines.append(
            f"{a.p[i]:.4f}   {a.p_truncated[i]:.4f}   {a.p_prime[i]:+.3f}   "
            f"{a.levels[i]:5d}  {a.currents[i] * 1e6:9.2f}"
        )
    lines.append("")
    lines.append("Fig. 4(b) — write configurations (pulse number per state)")
    lines.append("state  pulses  target I_DS (uA)  achieved (uA)")
    for cfg in b.configurations:
        lines.append(
            f"{cfg.level:5d}  {cfg.n_pulses:6d}  {cfg.target_current * 1e6:16.3f}  "
            f"{cfg.achieved_current * 1e6:13.3f}"
        )
    lines.append(f"max programming error: {b.max_error() * 1e6:.4f} uA")
    return "\n".join(lines)
