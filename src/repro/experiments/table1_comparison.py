"""Table 1: FeBiM vs published NVM Bayesian inference implementations.

FeBiM's row is *measured* from this repo's models (iris-GNBC at the
paper's operating point); the comparison rows carry the published
figures.  The experiment also reports the headline improvement factors
(paper: 10.7x density, 43.4x efficiency vs the memristor machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.comparison import (
    ImplementationRow,
    build_table1,
    format_table1,
    improvement_factors,
)
from repro.analysis.efficiency import PerformanceSummary, summarize_pipeline
from repro.core.pipeline import FeBiMPipeline
from repro.datasets import load_iris, train_test_split


@dataclass(frozen=True)
class Table1Result:
    """The rendered table plus the measured FeBiM summary."""

    rows: List[ImplementationRow]
    summary: PerformanceSummary
    improvements: Tuple[float, float]  # (density, efficiency) vs [16]


def run_table1(
    q_f: int = 4, q_l: int = 2, seed: int = 0, n_eval: int = 40
) -> Table1Result:
    """Measure FeBiM on iris and assemble the comparison table."""
    data = load_iris()
    X_tr, X_te, y_tr, y_te = train_test_split(data.data, data.target, seed=seed)
    pipeline = FeBiMPipeline(q_f=q_f, q_l=q_l, seed=seed).fit(X_tr, y_tr)
    summary = summarize_pipeline(pipeline, X_te[:n_eval], y_te[:n_eval])
    rows = build_table1(summary)
    return Table1Result(
        rows=rows,
        summary=summary,
        improvements=improvement_factors(rows[-1]),
    )


def format_table1_experiment(result: Table1Result) -> str:
    """The table plus headline factors and FeBiM details."""
    density_x, efficiency_x = result.improvements
    lines = [
        "Table 1 — comparison with NVM-based Bayesian inference hardware",
        format_table1(result.rows),
        "",
        "Measured FeBiM (iris-GNBC, Qf=4 bit, Ql=2 bit):",
        result.summary.format_lines(),
        "",
        f"improvement vs memristor Bayesian machine [16]: "
        f"{density_x:.1f}x storage density (paper: 10.7x), "
        f"{efficiency_x:.1f}x efficiency (paper: 43.4x)",
    ]
    return "\n".join(lines)
