"""Fig. 1(c): multi-level I_D-V_G characteristics of the FeFET.

The paper programs 4 distinct V_TH states (2-bit storage) with a write
pulse train and sweeps V_G from -0.4 to 1.2 V, showing well-separated
current curves.  We regenerate the same sweep from the device model: for
each of the 4 states the programmer finds the pulse count, the
ferroelectric layer yields the V_TH, and the I-V model produces the
curve.  The formatted output reports each state's V_TH, read current at
``V_on`` and the on/off ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.devices.fefet import FeFET, MultiLevelCellSpec, V_OFF, V_ON
from repro.devices.programming import PulseProgrammer


@dataclass(frozen=True)
class Fig1Result:
    """One I_D-V_G sweep per programmed state."""

    v_gate: np.ndarray
    currents: np.ndarray  # (n_states, len(v_gate))
    vth_states: np.ndarray
    read_currents: np.ndarray  # at V_on
    off_currents: np.ndarray  # at V_off
    pulse_counts: List[int]

    @property
    def n_states(self) -> int:
        return self.currents.shape[0]

    def on_off_ratio(self) -> np.ndarray:
        """Per-state I(V_on)/I(V_off)."""
        return self.read_currents / np.maximum(self.off_currents, 1e-30)

    def min_state_separation(self) -> float:
        """Smallest gap between adjacent read currents (amperes)."""
        ordered = np.sort(self.read_currents)
        return float(np.min(np.diff(ordered)))


def run_fig1(
    n_states: int = 4,
    v_start: float = -0.4,
    v_stop: float = 1.2,
    points: int = 161,
) -> Fig1Result:
    """Regenerate the Fig. 1(c) multi-level curves."""
    device = FeFET()
    spec = MultiLevelCellSpec(n_levels=n_states)
    programmer = PulseProgrammer(device, spec)

    v_gate = np.linspace(v_start, v_stop, points)
    curves = []
    vths = []
    pulses = []
    for level in range(n_states):
        cfg = programmer.configuration_for_level(level)
        pol = device.layer.switched_fraction_after(cfg.n_pulses)
        vth = device.vth_for_polarization(pol)
        vths.append(vth)
        pulses.append(cfg.n_pulses)
        curves.append(device.idvg.current(v_gate, vth))
    currents = np.stack(curves)
    vths = np.array(vths)
    return Fig1Result(
        v_gate=v_gate,
        currents=currents,
        vth_states=vths,
        read_currents=device.idvg.current(V_ON, vths),
        off_currents=device.idvg.current(V_OFF, vths),
        pulse_counts=pulses,
    )


def format_fig1(result: Fig1Result) -> str:
    """Paper-style state table for the Fig. 1(c) curves."""
    lines = [
        "Fig. 1(c) — multi-level FeFET states (V_G sweep "
        f"{result.v_gate[0]:.1f}..{result.v_gate[-1]:.1f} V)",
        "state  pulses   V_TH (V)   I_DS@Von (uA)   on/off",
    ]
    ratios = result.on_off_ratio()
    for s in range(result.n_states):
        lines.append(
            f"{s:5d}  {result.pulse_counts[s]:6d}   {result.vth_states[s]:8.3f}   "
            f"{result.read_currents[s] * 1e6:13.3f}   {ratios[s]:.1e}"
        )
    lines.append(
        f"min adjacent-state separation: "
        f"{result.min_state_separation() * 1e6:.3f} uA"
    )
    return "\n".join(lines)
