"""Fig. 5: functional validation of posterior accumulation and WTA.

(a, b) Two FeFETs F_a, F_b on one wordline are programmed with every
combination of P'_a, P'_b; the *theoretical* I_WL (sum of the two target
level currents) is compared with the *simulated* I_WL (currents computed
through the device physics after pulse programming).  The paper reports
an exact match; our behavioural match is within the programming
tolerance.

(c) The WTA transient: two wordlines with currents over [0.2, 2.0] uA
drive the competition ODE; the winner's output rises to the bias current
and the loser collapses, resolving in < ~300 ps at paper-like gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantization import UniformQuantizer
from repro.crossbar.array import FeFETCrossbar
from repro.crossbar.wta import WTATransientResult, wta_transient
from repro.devices.fefet import MultiLevelCellSpec


@dataclass(frozen=True)
class Fig5CurrentsResult:
    """Theoretical vs simulated I_WL over the (P'_a, P'_b) grid."""

    p_prime_axis: np.ndarray
    theoretical: np.ndarray  # (L, L) amperes
    simulated: np.ndarray  # (L, L) amperes

    def max_abs_error(self) -> float:
        return float(np.max(np.abs(self.simulated - self.theoretical)))

    def max_rel_error(self) -> float:
        return float(
            np.max(np.abs(self.simulated - self.theoretical) / self.theoretical)
        )


def run_fig5_currents(n_levels: int = 10) -> Fig5CurrentsResult:
    """Sweep P'_a and P'_b over all quantised values (Fig. 5a/5b)."""
    spec = MultiLevelCellSpec(n_levels=n_levels)
    quantizer = UniformQuantizer(n_levels)
    p_prime_axis = quantizer.dequantize(np.arange(n_levels))
    level_currents = spec.level_currents()

    theoretical = level_currents[:, None] + level_currents[None, :]

    # Simulate: a 1x2 crossbar programmed to each (a, b) level pair.
    simulated = np.zeros((n_levels, n_levels))
    crossbar = FeFETCrossbar(rows=1, cols=2, spec=spec)
    for a in range(n_levels):
        for b in range(n_levels):
            crossbar.erase_all()
            crossbar.program_cell(0, 0, a)
            crossbar.program_cell(0, 1, b)
            simulated[a, b] = crossbar.wordline_currents()[0]
    return Fig5CurrentsResult(
        p_prime_axis=p_prime_axis, theoretical=theoretical, simulated=simulated
    )


@dataclass(frozen=True)
class Fig5WtaResult:
    """WTA transients over a grid of (I_WL1, I_WL2) pairs."""

    currents_1: np.ndarray
    currents_2: np.ndarray
    winners: np.ndarray  # (n1, n2) int
    resolution_times: np.ndarray  # (n1, n2) seconds
    example: WTATransientResult  # one full transient trace

    def all_correct(self) -> bool:
        expected = (self.currents_2[None, :] > self.currents_1[:, None]).astype(int)
        # Equal currents are excluded from correctness (true ties).
        distinct = self.currents_1[:, None] != self.currents_2[None, :]
        return bool(np.all(self.winners[distinct] == expected[distinct]))

    def worst_resolution(self) -> float:
        finite = self.resolution_times[np.isfinite(self.resolution_times)]
        return float(finite.max()) if finite.size else float("inf")


def run_fig5_wta(
    i_min: float = 0.2e-6, i_max: float = 2.0e-6, steps: int = 7
) -> Fig5WtaResult:
    """Sweep two wordline currents over [0.2, 2.0] uA (Fig. 5c)."""
    axis = np.linspace(i_min, i_max, steps)
    winners = np.zeros((steps, steps), dtype=int)
    times = np.zeros((steps, steps))
    for i, i1 in enumerate(axis):
        for j, i2 in enumerate(axis):
            result = wta_transient(np.array([i1, i2]))
            winners[i, j] = result.winner
            times[i, j] = result.resolution_time
    example = wta_transient(np.array([2.0e-6, 0.2e-6]))
    return Fig5WtaResult(
        currents_1=axis,
        currents_2=axis,
        winners=winners,
        resolution_times=times,
        example=example,
    )


def format_fig5(currents: Fig5CurrentsResult, wta: Fig5WtaResult) -> str:
    """Both panels as text."""
    lines = [
        "Fig. 5(a,b) — theoretical vs simulated I_WL (two cells)",
        f"grid: {len(currents.p_prime_axis)}x{len(currents.p_prime_axis)} "
        f"P' values in [{currents.p_prime_axis[0]:.2f}, {currents.p_prime_axis[-1]:.2f}]",
        f"I_WL range: {currents.theoretical.min() * 1e6:.2f}.."
        f"{currents.theoretical.max() * 1e6:.2f} uA (paper: 0.2..2.0 uA)",
        f"max |simulated - theoretical|: {currents.max_abs_error() * 1e6:.4f} uA "
        f"({currents.max_rel_error() * 100:.2f} % relative)",
        "",
        "Fig. 5(c) — WTA transient",
        f"winner always correct: {wta.all_correct()}",
        f"worst finite resolution time: {wta.worst_resolution() * 1e12:.0f} ps",
        f"example (2.0 vs 0.2 uA): winner WL{wta.example.winner + 1}, "
        f"resolved in {wta.example.resolution_time * 1e12:.0f} ps "
        f"(paper: < 300 ps)",
    ]
    return "\n".join(lines)
