"""Experiment drivers: one module per paper figure/table.

Each ``run_*`` function regenerates the corresponding figure's data
series (or table rows) and each ``format_*`` renders it as the text the
benchmark harness prints.  The mapping to the paper:

=====================  ==============================================
Module                 Paper content
=====================  ==============================================
fig1_device            Fig. 1(c): multi-level I_D-V_G characteristics
fig4_mapping           Fig. 4(a): mapping staircase; 4(b): pulse counts
fig5_validation        Fig. 5(a,b): theoretical vs simulated I_WL;
                       5(c): WTA transient
fig6_scalability       Fig. 6(a-d): delay/energy vs columns and rows
fig7_quantization      Fig. 7(a,b): accuracy vs Q_f / Q_l per dataset
fig8_iris              Fig. 8(a): Q_f x Q_l accuracy map; (b) state
                       map; (c) variation robustness
table1_comparison      Table 1: cross-implementation comparison
=====================  ==============================================
"""

from repro.experiments.fig1_device import run_fig1, format_fig1
from repro.experiments.fig4_mapping import run_fig4a, run_fig4b, format_fig4
from repro.experiments.fig5_validation import (
    run_fig5_currents,
    run_fig5_wta,
    format_fig5,
)
from repro.experiments.fig6_scalability import run_fig6, format_fig6
from repro.experiments.fig7_quantization import run_fig7, format_fig7
from repro.experiments.fig8_iris import (
    run_fig8a,
    run_fig8b,
    run_fig8c,
    format_fig8,
)
from repro.experiments.table1_comparison import run_table1, format_table1_experiment

__all__ = [
    "run_fig1",
    "format_fig1",
    "run_fig4a",
    "run_fig4b",
    "format_fig4",
    "run_fig5_currents",
    "run_fig5_wta",
    "format_fig5",
    "run_fig6",
    "format_fig6",
    "run_fig7",
    "format_fig7",
    "run_fig8a",
    "run_fig8b",
    "run_fig8c",
    "format_fig8",
    "run_table1",
    "format_table1_experiment",
]
