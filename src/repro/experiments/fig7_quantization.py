"""Fig. 7: quantisation-precision sweeps over the three datasets.

(a) accuracy vs feature precision Q_f (likelihoods at 8 bit);
(b) accuracy vs likelihood precision Q_l (features at 8 bit);
each compared against the float64 software baseline, 100 epochs of 30/70
splits per point (configurable down for quick runs).

The paper's observation to reproduce: even at 2-bit precision the drop
vs the baseline is negligible, and the curves saturate quickly with
precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.pipeline import run_epochs
from repro.datasets import load_dataset
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class Fig7Result:
    """Mean accuracies per dataset for both sweeps."""

    bits: np.ndarray
    baseline: Dict[str, float]  # dataset -> software accuracy
    vs_qf: Dict[str, np.ndarray]  # dataset -> accuracy per Q_f (Q_l = 8)
    vs_ql: Dict[str, np.ndarray]  # dataset -> accuracy per Q_l (Q_f = 8)

    def max_drop_at(self, bit_index: int) -> float:
        """Largest accuracy drop vs baseline at one precision point."""
        drops = []
        for name, base in self.baseline.items():
            drops.append(base - self.vs_qf[name][bit_index])
            drops.append(base - self.vs_ql[name][bit_index])
        return float(max(drops))


def run_fig7(
    datasets: Sequence[str] = ("iris", "wine", "cancer"),
    bits: Sequence[int] = (1, 2, 4, 8),
    epochs: int = 100,
    fixed_bits: int = 8,
    seed: RngLike = 0,
) -> Fig7Result:
    """Regenerate both Fig. 7 panels.

    ``epochs`` follows the paper at 100; the benchmark uses a reduced
    count to keep runtimes reasonable and records the delta.
    """
    rng = ensure_rng(seed)
    baseline: Dict[str, float] = {}
    vs_qf: Dict[str, np.ndarray] = {}
    vs_ql: Dict[str, np.ndarray] = {}
    for name in datasets:
        data = load_dataset(name)
        baseline[name] = float(
            run_epochs(data, mode="software", epochs=epochs, seed=rng).mean()
        )
        vs_qf[name] = np.array(
            [
                run_epochs(
                    data, q_f=b, q_l=fixed_bits, mode="quantized", epochs=epochs, seed=rng
                ).mean()
                for b in bits
            ]
        )
        vs_ql[name] = np.array(
            [
                run_epochs(
                    data, q_f=fixed_bits, q_l=b, mode="quantized", epochs=epochs, seed=rng
                ).mean()
                for b in bits
            ]
        )
    return Fig7Result(
        bits=np.asarray(bits, dtype=int), baseline=baseline, vs_qf=vs_qf, vs_ql=vs_ql
    )


def format_fig7(result: Fig7Result) -> str:
    """Both panels as accuracy tables."""
    bits = result.bits
    lines = ["Fig. 7(a) — accuracy vs Q_f (Q_l = 8 bit)"]
    header = "dataset   baseline  " + "  ".join(f"Qf={b}bit" for b in bits)
    lines.append(header)
    for name, accs in result.vs_qf.items():
        row = f"{name:9s} {result.baseline[name] * 100:7.2f}%  "
        row += "  ".join(f"{a * 100:6.2f}%" for a in accs)
        lines.append(row)
    lines.append("")
    lines.append("Fig. 7(b) — accuracy vs Q_l (Q_f = 8 bit)")
    lines.append("dataset   baseline  " + "  ".join(f"Ql={b}bit" for b in bits))
    for name, accs in result.vs_ql.items():
        row = f"{name:9s} {result.baseline[name] * 100:7.2f}%  "
        row += "  ".join(f"{a * 100:6.2f}%" for a in accs)
        lines.append(row)
    return "\n".join(lines)
