"""Baseline Bayesian inference implementations FeBiM is compared against.

* :mod:`repro.baselines.memristor_machine` — a functional simulator of
  the memristor-based Bayesian machine [16]: digital 8-bit likelihood
  storage, LFSR-driven stochastic bitstreams, AND-gate products and
  per-class counters, taking 1-255 cycles per inference.
* :mod:`repro.baselines.rng_prototypes` — behavioural models of the
  binary-evidence RNG prototypes built from MTJs [13] and
  memtransistors [14]: sigmoid-biased Bernoulli sources combined with
  stochastic logic over thousands of cycles.
* :mod:`repro.baselines.cmos_reference` — the float64 von Neumann
  software reference, with a simple memory-traffic cost model showing
  why separate probability storage is the bottleneck (Sec. 1).
"""

from repro.baselines.memristor_machine import (
    LinearFeedbackShiftRegister,
    MemristorBayesianMachine,
)
from repro.baselines.rng_prototypes import (
    StochasticRngSource,
    BinaryRngBayesianPrototype,
)
from repro.baselines.cmos_reference import (
    SoftwareBayesianReference,
    VonNeumannCostModel,
)

__all__ = [
    "LinearFeedbackShiftRegister",
    "MemristorBayesianMachine",
    "StochasticRngSource",
    "BinaryRngBayesianPrototype",
    "SoftwareBayesianReference",
    "VonNeumannCostModel",
]
