"""Software (von Neumann) reference and its memory-traffic cost model.

:class:`SoftwareBayesianReference` is the float64 log-domain GNBC — the
"software baseline" of Figs. 7/8 — thinly wrapping
:class:`~repro.bayes.gaussian_nb.GaussianNaiveBayes` with the discretised
evaluation path so it can score the same discrete inputs the hardware
sees.

:class:`VonNeumannCostModel` quantifies the Sec. 1 motivation: on a CPU,
every posterior evaluation fetches each likelihood parameter from a
separate memory, so energy is dominated by data movement; FeBiM removes
that traffic entirely by computing *in* the storage array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.bayes.categorical_nb import CategoricalNaiveBayes
from repro.bayes.gaussian_nb import GaussianNaiveBayes
from repro.utils.validation import check_positive, check_positive_int


class SoftwareBayesianReference:
    """Float64 GNBC reference, with an optional discrete-evidence path."""

    def __init__(self):
        self.gnb = GaussianNaiveBayes()

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SoftwareBayesianReference":
        self.gnb.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Exact continuous-evidence MAP predictions."""
        return self.gnb.predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return self.gnb.score(X, y)

    def discrete_model(
        self, edges: List[np.ndarray]
    ) -> CategoricalNaiveBayes:
        """Exact bin-mass categorical model over the given feature bins.

        This is the *unquantised* discrete reference: the same evidence
        discretisation the hardware uses, but float64 likelihoods — so
        comparing it against the quantised model isolates likelihood
        quantisation loss from evidence discretisation loss.
        """
        tables = [
            self.gnb.bin_likelihoods(f, feature_edges)
            for f, feature_edges in enumerate(edges)
        ]
        return CategoricalNaiveBayes.from_tables(
            tables, self.gnb.class_prior_, classes=self.gnb.classes_
        )


@dataclass(frozen=True)
class VonNeumannCostModel:
    """First-order energy/latency model of CPU-style Bayesian inference.

    Attributes
    ----------
    e_dram_access:
        Energy per parameter fetch from off-chip memory (joules);
        ~20 pJ/word is a standard 45 nm figure.
    e_alu_op:
        Energy per floating-point add (joules); ~1 pJ at 45 nm.
    t_cycle:
        Clock period (seconds).
    cycles_per_fetch, cycles_per_op:
        Latency accounting per memory access / ALU op.
    """

    e_dram_access: float = 20e-12
    e_alu_op: float = 1e-12
    t_cycle: float = 1e-9
    cycles_per_fetch: int = 4
    cycles_per_op: int = 1

    def __post_init__(self) -> None:
        check_positive(self.e_dram_access, "e_dram_access")
        check_positive(self.e_alu_op, "e_alu_op")
        check_positive(self.t_cycle, "t_cycle")
        check_positive_int(self.cycles_per_fetch, "cycles_per_fetch")
        check_positive_int(self.cycles_per_op, "cycles_per_op")

    def inference_cost(self, n_classes: int, n_features: int) -> dict:
        """Energy/latency of one naive-Bayes posterior evaluation.

        Each class fetches ``n_features`` likelihoods + 1 prior and sums
        them; the argmax adds ``n_classes - 1`` compares.
        """
        check_positive_int(n_classes, "n_classes")
        check_positive_int(n_features, "n_features")
        fetches = n_classes * (n_features + 1)
        ops = n_classes * n_features + (n_classes - 1)
        energy = fetches * self.e_dram_access + ops * self.e_alu_op
        cycles = fetches * self.cycles_per_fetch + ops * self.cycles_per_op
        return {
            "fetches": fetches,
            "ops": ops,
            "energy": energy,
            "cycles": cycles,
            "latency": cycles * self.t_cycle,
        }

    def energy_ratio_vs(self, febim_energy: float, n_classes: int, n_features: int) -> float:
        """How many times more energy the CPU model burns than FeBiM."""
        check_positive(febim_energy, "febim_energy")
        return self.inference_cost(n_classes, n_features)["energy"] / febim_energy
