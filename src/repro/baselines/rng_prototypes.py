"""Behavioural models of the binary-evidence RNG prototypes [13, 14].

The MTJ prototype (Vodenicarevic et al.) and the memtransistor prototype
(Zheng et al.) implement Bayesian inference over *binary* evidence by
generating probability-encoded random bitstreams on demand — a
superparamagnetic junction (or memtransistor noise source) biased so its
'1' rate equals the desired probability — and combining streams with
logic gates (AND for products, Muller C-elements for re-decorrelation).
They store no probabilities: every inference regenerates them over
hundreds to thousands of clock cycles, which is exactly the efficiency
gap Table 1 quantifies.

The model here captures the algorithmic behaviour: sigmoid-biased
Bernoulli sources, stochastic product estimation and its cycle-count /
accuracy trade-off for two-hypothesis problems.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


class StochasticRngSource:
    """A tunable Bernoulli bitstream source (superparamagnetic MTJ model).

    The junction's '1' dwell fraction follows a sigmoid of the control
    input (spin-torque bias current / gate voltage):

        p(u) = 1 / (1 + exp(-(u - u0) / u_scale))

    Parameters
    ----------
    u0, u_scale:
        Sigmoid centre and slope of the control-to-probability transfer.
    """

    def __init__(self, u0: float = 0.0, u_scale: float = 1.0, seed: RngLike = None):
        if u_scale <= 0:
            raise ValueError(f"u_scale must be positive, got {u_scale}")
        self.u0 = float(u0)
        self.u_scale = float(u_scale)
        self._rng = ensure_rng(seed)

    def probability(self, control: float) -> float:
        """The '1' rate produced by a control input."""
        return float(1.0 / (1.0 + np.exp(-(control - self.u0) / self.u_scale)))

    def control_for(self, probability: float) -> float:
        """Inverse transfer: control input for a target '1' rate."""
        if not 0.0 < probability < 1.0:
            raise ValueError(
                f"probability must lie strictly in (0, 1), got {probability}"
            )
        return self.u0 + self.u_scale * float(np.log(probability / (1.0 - probability)))

    def bitstream(self, probability: float, n_bits: int) -> np.ndarray:
        """``n_bits`` Bernoulli(probability) samples (the RNG output)."""
        check_positive_int(n_bits, "n_bits")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {probability}")
        return (self._rng.random(n_bits) < probability).astype(np.uint8)


class BinaryRngBayesianPrototype:
    """Binary-evidence Bayesian inference via stochastic bitstreams.

    Supports ``k`` hypotheses with binary evidence nodes: for each
    hypothesis the per-feature likelihoods P(B_i = b_i | A_j) are
    generated as bitstreams and ANDed; the hypothesis whose product
    stream has the most 1s after ``n_cycles`` wins.  The published
    prototypes run 2000 [13] / 200 [14] cycles per inference.

    Parameters
    ----------
    likelihoods:
        Per-feature arrays ``(n_classes, 2)`` over binary evidence.
    class_prior:
        Hypothesis prior, length ``n_classes``.
    n_cycles:
        Bitstream length per inference.
    """

    def __init__(
        self,
        likelihoods: Sequence[np.ndarray],
        class_prior: np.ndarray,
        n_cycles: int = 2000,
        seed: RngLike = None,
    ):
        if not likelihoods:
            raise ValueError("need at least one likelihood table")
        self.class_prior = np.asarray(class_prior, dtype=float)
        self.class_prior = self.class_prior / self.class_prior.sum()
        self.n_classes = self.class_prior.shape[0]
        self.tables: List[np.ndarray] = []
        for f, table in enumerate(likelihoods):
            table = np.asarray(table, dtype=float)
            if table.shape != (self.n_classes, 2):
                raise ValueError(
                    f"table {f} must have shape ({self.n_classes}, 2) for "
                    f"binary evidence, got {table.shape}"
                )
            if np.any(table < 0) or np.any(table > 1):
                raise ValueError(f"table {f} entries must lie in [0, 1]")
            self.tables.append(table)
        self.n_features = len(self.tables)
        self.n_cycles = check_positive_int(n_cycles, "n_cycles")
        self.source = StochasticRngSource(seed=seed)

    def infer_counts(self, evidence: np.ndarray) -> np.ndarray:
        """Per-hypothesis surviving-1 counts for one binary sample."""
        evidence = np.asarray(evidence, dtype=int)
        if evidence.shape != (self.n_features,):
            raise ValueError(
                f"evidence must have shape ({self.n_features},), got {evidence.shape}"
            )
        if np.any((evidence != 0) & (evidence != 1)):
            raise ValueError("evidence must be binary (0/1)")
        counts = np.zeros(self.n_classes, dtype=int)
        for cls in range(self.n_classes):
            stream = self.source.bitstream(self.class_prior[cls], self.n_cycles)
            for f in range(self.n_features):
                p = float(self.tables[f][cls, evidence[f]])
                stream = stream & self.source.bitstream(p, self.n_cycles)
            counts[cls] = int(stream.sum())
        return counts

    def predict_one(self, evidence: np.ndarray) -> int:
        """MAP hypothesis index."""
        return int(np.argmax(self.infer_counts(evidence)))

    def predict(self, evidence: np.ndarray) -> np.ndarray:
        """Batch MAP prediction."""
        evidence = np.asarray(evidence, dtype=int)
        if evidence.ndim != 2:
            raise ValueError("evidence must be 2-D (batch)")
        return np.array([self.predict_one(row) for row in evidence])

    def exact_posterior(self, evidence: np.ndarray) -> np.ndarray:
        """Closed-form posterior the stochastic estimate converges to."""
        evidence = np.asarray(evidence, dtype=int)
        post = self.class_prior.copy()
        for f in range(self.n_features):
            post = post * self.tables[f][:, evidence[f]]
        norm = post.sum()
        if norm <= 0:
            raise ValueError("evidence has zero probability under the model")
        return post / norm

    def score(self, evidence: np.ndarray, y: np.ndarray) -> float:
        """Accuracy over a batch."""
        y = np.asarray(y)
        return float(np.mean(self.predict(evidence) == y))
