"""Functional simulator of the memristor-based Bayesian machine [16].

Harabi et al. (Nature Electronics 2023) store 8-bit quantised likelihoods
in 2T2R memristor arrays and compute posteriors with near-memory
*stochastic computing*: each cycle, a linear-feedback shift register
(LFSR) produces a pseudo-random byte per evidence node; a comparator
turns the stored byte into a Bernoulli bit (1 with probability p); AND
gates multiply the per-feature bits; and a counter per class accumulates
the surviving 1s.  After ``T`` cycles the counter ratios estimate the
posterior products, and the class with the highest count wins.

This is the paper's key comparison point: the machine needs 1-255 clock
cycles per inference (bitstream length trades accuracy for speed) plus
CMOS logic, whereas FeBiM resolves in a single cycle with no calculation
circuitry.  The simulator exposes exactly that trade-off.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.validation import check_positive_int

#: Maximal-length 16-bit Fibonacci LFSR taps (x^16 + x^14 + x^13 + x^11 + 1).
_TAPS16 = (15, 13, 12, 10)


class LinearFeedbackShiftRegister:
    """16-bit Fibonacci LFSR producing pseudo-random bytes.

    Parameters
    ----------
    seed:
        Non-zero initial register state (< 2^16).
    """

    PERIOD = 2**16 - 1

    def __init__(self, seed: int = 0xACE1):
        if not 0 < seed < 2**16:
            raise ValueError(f"seed must lie in 1..{2**16 - 1}, got {seed}")
        self.state = int(seed)

    def step(self) -> int:
        """Advance one bit; returns the new state."""
        bit = 0
        for tap in _TAPS16:
            bit ^= (self.state >> tap) & 1
        self.state = ((self.state << 1) | bit) & 0xFFFF
        return self.state

    def next_byte(self) -> int:
        """Advance 8 bits and return the low byte of the state."""
        for _ in range(8):
            self.step()
        return self.state & 0xFF

    def byte_stream(self, n: int) -> np.ndarray:
        """``n`` successive bytes as an array."""
        check_positive_int(n, "n")
        return np.array([self.next_byte() for _ in range(n)], dtype=np.uint8)


class MemristorBayesianMachine:
    """Stochastic-computing Bayesian machine over 8-bit likelihood bytes.

    Parameters
    ----------
    likelihood_tables:
        Per-feature arrays ``(n_classes, n_levels)`` of ``P(B_i = b|A)``.
    class_prior:
        Prior ``P(A)``; quantised into a prior byte column like [16]'s
        prior memory.
    quant_bits:
        Storage quantisation (8 in the published machine).
    """

    def __init__(
        self,
        likelihood_tables: List[np.ndarray],
        class_prior: np.ndarray,
        quant_bits: int = 8,
    ):
        if not likelihood_tables:
            raise ValueError("need at least one likelihood table")
        check_positive_int(quant_bits, "quant_bits")
        if quant_bits > 8:
            raise ValueError("quant_bits must be <= 8 (byte-wide storage)")
        self.quant_bits = quant_bits
        self._scale = 2**quant_bits - 1

        prior = np.asarray(class_prior, dtype=float)
        self.n_classes = prior.shape[0]
        # Probabilities are stored relative to the per-column maximum so
        # the full byte range is used (the machine's normalisation step).
        self.prior_bytes = self._to_bytes(prior[:, None])[:, 0]
        self.likelihood_bytes = []
        for f, table in enumerate(likelihood_tables):
            table = np.asarray(table, dtype=float)
            if table.shape[0] != self.n_classes:
                raise ValueError(
                    f"table {f} class count {table.shape[0]} != {self.n_classes}"
                )
            self.likelihood_bytes.append(self._to_bytes(table))
        self.n_features = len(self.likelihood_bytes)

    def _to_bytes(self, table: np.ndarray) -> np.ndarray:
        if np.any(table < 0):
            raise ValueError("probabilities must be non-negative")
        maxima = table.max(axis=0, keepdims=True)
        maxima[maxima == 0] = 1.0
        return np.rint(table / maxima * self._scale).astype(np.int32)

    # ------------------------------------------------------------ inference
    def stored_bytes_for(self, evidence_levels: np.ndarray) -> np.ndarray:
        """The byte column addressed by one sample, shape (classes, f+1)."""
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.shape != (self.n_features,):
            raise ValueError(
                f"evidence_levels must have shape ({self.n_features},), "
                f"got {evidence_levels.shape}"
            )
        cols = [self.prior_bytes[:, None]]
        for f, table in enumerate(self.likelihood_bytes):
            cols.append(table[:, evidence_levels[f]][:, None])
        return np.concatenate(cols, axis=1)

    def infer_counts(
        self,
        evidence_levels: np.ndarray,
        n_cycles: int = 255,
        lfsr_seed: int = 0xACE1,
    ) -> np.ndarray:
        """Per-class counter values after ``n_cycles`` stochastic cycles.

        Each (feature + prior) position gets an independent LFSR (offset
        seeds), as in the machine's per-column random sources; identical
        comparisons across classes share the random byte, which is the
        correlation-friendly arrangement [16] uses to sharpen argmax.
        """
        check_positive_int(n_cycles, "n_cycles")
        bytes_matrix = self.stored_bytes_for(evidence_levels)  # (k, f+1)
        n_sources = bytes_matrix.shape[1]
        lfsrs = [
            LinearFeedbackShiftRegister(((lfsr_seed + 7919 * i) % self.PERIOD_SPACE) or 1)
            for i in range(n_sources)
        ]
        shift = 8 - self.quant_bits
        counts = np.zeros(self.n_classes, dtype=int)
        for _ in range(n_cycles):
            random_values = np.array(
                [lf.next_byte() >> shift for lf in lfsrs], dtype=np.int32
            )
            bits = bytes_matrix > random_values[None, :]
            counts += np.all(bits, axis=1)
        return counts

    PERIOD_SPACE = 2**16 - 1

    def predict_one(
        self, evidence_levels: np.ndarray, n_cycles: int = 255, lfsr_seed: int = 0xACE1
    ) -> int:
        """MAP class from the stochastic counters (ties -> lowest)."""
        counts = self.infer_counts(evidence_levels, n_cycles, lfsr_seed)
        return int(np.argmax(counts))

    def predict(
        self, evidence_levels: np.ndarray, n_cycles: int = 255, lfsr_seed: int = 0xACE1
    ) -> np.ndarray:
        """Batch prediction; one independent seed offset per sample."""
        evidence_levels = np.asarray(evidence_levels, dtype=int)
        if evidence_levels.ndim != 2:
            raise ValueError("evidence_levels must be 2-D (batch)")
        return np.array(
            [
                self.predict_one(
                    row, n_cycles, ((lfsr_seed + 31 * i) % self.PERIOD_SPACE) or 1
                )
                for i, row in enumerate(evidence_levels)
            ]
        )

    def exact_log_posterior(self, evidence_levels: np.ndarray) -> np.ndarray:
        """The digital reference the counters converge to (log domain)."""
        bytes_matrix = self.stored_bytes_for(evidence_levels).astype(float)
        probs = np.maximum(bytes_matrix / self._scale, 1e-12)
        return np.log(probs).sum(axis=1)

    def score(
        self, evidence_levels: np.ndarray, y: np.ndarray, n_cycles: int = 255
    ) -> float:
        """Accuracy at a given bitstream length."""
        y = np.asarray(y)
        return float(np.mean(self.predict(evidence_levels, n_cycles) == y))
