"""FeBiM: FeFET in-memory Bayesian inference engine (DAC 2024) — reproduction.

A behavioural, laptop-scale reimplementation of Li et al., "FeBiM:
Efficient and Compact Bayesian Inference Engine Empowered with
Ferroelectric In-Memory Computing" (DAC 2024, arXiv:2410.19356), covering
the quantisation/mapping scheme, the multi-level FeFET crossbar, the WTA
sensing path, the circuit-level delay/energy/density models and every
figure/table of the paper's evaluation.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart
----------
>>> from repro import FeBiMPipeline, load_iris, train_test_split
>>> data = load_iris()
>>> X_tr, X_te, y_tr, y_te = train_test_split(data.data, data.target, seed=0)
>>> pipe = FeBiMPipeline(q_f=4, q_l=2, seed=0).fit(X_tr, y_tr)
>>> acc = pipe.score(X_te, y_te, mode="hardware")
"""

from repro.backends import (
    ArrayBackend,
    Capability,
    CapabilityError,
    backend_names,
    create as create_backend,
    register_backend,
)
from repro.bayes import (
    BayesianNetwork,
    CategoricalNaiveBayes,
    DiscreteNode,
    FeatureDiscretizer,
    GaussianNaiveBayes,
    naive_bayes_network,
)
from repro.core import (
    FeBiMEngine,
    FeBiMPipeline,
    ProbabilityMapper,
    QuantizedBayesianModel,
    UniformQuantizer,
    quantize_model,
    run_epochs,
)
from repro.crossbar import (
    BayesianArrayLayout,
    CircuitParameters,
    DelayModel,
    EnergyModel,
    FeFETCrossbar,
    SensingModule,
    WinnerTakeAll,
    wta_transient,
)
from repro.crossbar.tiling import TiledFeBiM
from repro.datasets import (
    Dataset,
    load_cancer,
    load_dataset,
    load_iris,
    load_wine,
    make_gaussian_blobs,
    train_test_split,
)
from repro.devices import (
    FeFET,
    FerroelectricLayer,
    IdVgCharacteristic,
    MultiLevelCellSpec,
    PulseProgrammer,
    VariationModel,
)
from repro.reliability import (
    AgeClock,
    FaultInjector,
    FaultSpec,
    WearState,
    run_campaign,
)
from repro.serving import (
    BatchPolicy,
    FeBiMServer,
    HealthMonitor,
    MicroBatchScheduler,
    ModelRegistry,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # backends
    "ArrayBackend",
    "Capability",
    "CapabilityError",
    "backend_names",
    "create_backend",
    "register_backend",
    # bayes
    "BayesianNetwork",
    "CategoricalNaiveBayes",
    "DiscreteNode",
    "FeatureDiscretizer",
    "GaussianNaiveBayes",
    "naive_bayes_network",
    # core
    "FeBiMEngine",
    "FeBiMPipeline",
    "ProbabilityMapper",
    "QuantizedBayesianModel",
    "UniformQuantizer",
    "quantize_model",
    "run_epochs",
    # crossbar
    "BayesianArrayLayout",
    "CircuitParameters",
    "DelayModel",
    "EnergyModel",
    "FeFETCrossbar",
    "SensingModule",
    "TiledFeBiM",
    "WinnerTakeAll",
    "wta_transient",
    # datasets
    "Dataset",
    "load_cancer",
    "load_dataset",
    "load_iris",
    "load_wine",
    "make_gaussian_blobs",
    "train_test_split",
    # devices
    "FeFET",
    "FerroelectricLayer",
    "IdVgCharacteristic",
    "MultiLevelCellSpec",
    "PulseProgrammer",
    "VariationModel",
    # reliability
    "AgeClock",
    "FaultInjector",
    "FaultSpec",
    "WearState",
    "run_campaign",
    # serving
    "BatchPolicy",
    "FeBiMServer",
    "HealthMonitor",
    "MicroBatchScheduler",
    "ModelRegistry",
]
