"""Area and density metrics (Table 1).

The paper lays out a 2x2 array of the 1-FeFET cell at the 45 nm node and
estimates 0.076 um^2 per cell.  At 2 bits/cell (4 states) the storage
density is 2 / 0.076 um^2 = 26.32 Mb/mm^2 — reproduced here exactly from
the same inputs.
"""

from __future__ import annotations

from typing import Optional

from repro.crossbar.parameters import CircuitParameters
from repro.devices.fefet import MultiLevelCellSpec
from repro.utils.units import MEGA
from repro.utils.validation import check_positive, check_positive_int

#: 1 mm^2 in m^2.
MM2 = 1e-6


def array_area(
    rows: int, cols: int, params: Optional[CircuitParameters] = None
) -> float:
    """Cell-array silicon area (m^2)."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    params = params or CircuitParameters()
    return rows * cols * params.cell_area


def storage_density(
    spec: Optional[MultiLevelCellSpec] = None,
    params: Optional[CircuitParameters] = None,
) -> float:
    """Storage density in Mb/mm^2 for a cell spec.

    ``bits_per_cell / cell_area``; the paper's 2-bit cell at 0.076 um^2
    gives 26.32 Mb/mm^2.
    """
    spec = spec or MultiLevelCellSpec()
    params = params or CircuitParameters()
    bits_per_mm2 = spec.bits / (params.cell_area / MM2)
    return bits_per_mm2 / MEGA


def computing_density(ops: float, area: float) -> float:
    """Computing density in MO/mm^2 (million operations per mm^2).

    ``ops`` is the operation count of one inference; ``area`` the macro
    area in m^2.  The paper's iris macro: 10 ops on 192 cells x
    0.076 um^2 -> 0.69 MO/mm^2.
    """
    check_positive(ops, "ops")
    check_positive(area, "area")
    return (ops / (area / MM2)) / MEGA
