"""Operation counting and energy efficiency (Table 1).

The paper's op accounting for the crossbar: each wordline performs
``n_active - 1`` analog current additions (summing ``n_active`` activated
cells), and the WTA contributes one global max operation:

    ops/inference = k * (n_active - 1) + 1

For the iris GNBC (k = 3 classes, n_active = 4 features, uniform prior
omitted) this gives 3*3 + 1 = 10 ops; with the reported 17.20 fJ per
inference, 10 / 17.20 fJ = 581.40 TOPS/W — both reproduced exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.density import computing_density
from repro.utils.units import FEMTO, MEGA, PICO, TERA
from repro.utils.validation import check_positive, check_positive_int


def ops_per_inference(n_classes: int, n_active_cells_per_row: int) -> int:
    """Operations per inference under the paper's counting scheme."""
    check_positive_int(n_classes, "n_classes")
    check_positive_int(n_active_cells_per_row, "n_active_cells_per_row")
    return n_classes * (n_active_cells_per_row - 1) + 1


def tops_per_watt(ops: float, energy_per_inference: float) -> float:
    """Computing efficiency in TOPS/W (= ops / joule / 1e12)."""
    check_positive(ops, "ops")
    check_positive(energy_per_inference, "energy_per_inference")
    return (ops / energy_per_inference) / TERA


@dataclass(frozen=True)
class PerformanceSummary:
    """FeBiM macro performance for one application (Table 1 row inputs).

    All quantities in base SI units except the derived report fields.
    """

    rows: int
    cols: int
    bits_per_cell: float
    ops: int
    energy_per_inference: float
    delay_per_inference: float
    accuracy: float

    @property
    def area(self) -> float:
        """Macro cell-array area (m^2)."""
        from repro.crossbar.parameters import CircuitParameters

        return self.rows * self.cols * CircuitParameters().cell_area

    @property
    def storage_density_mb_mm2(self) -> float:
        """Mb/mm^2."""
        from repro.crossbar.parameters import CircuitParameters

        return (self.bits_per_cell / (CircuitParameters().cell_area / 1e-6)) / MEGA

    @property
    def computing_density_mo_mm2(self) -> float:
        """MO/mm^2."""
        return computing_density(self.ops, self.area)

    @property
    def efficiency_tops_w(self) -> float:
        """TOPS/W."""
        return tops_per_watt(self.ops, self.energy_per_inference)

    @property
    def clocks_per_inference(self) -> int:
        """FeBiM resolves in a single cycle."""
        return 1

    def format_lines(self) -> str:
        """Human-readable multi-line report."""
        return "\n".join(
            [
                f"array                {self.rows} x {self.cols} "
                f"({self.bits_per_cell:g} bit/cell)",
                f"accuracy             {self.accuracy * 100:.2f} %",
                f"ops/inference        {self.ops}",
                f"energy/inference     {self.energy_per_inference / FEMTO:.2f} fJ",
                f"delay/inference      {self.delay_per_inference / PICO:.0f} ps",
                f"storage density      {self.storage_density_mb_mm2:.2f} Mb/mm^2",
                f"computing density    {self.computing_density_mo_mm2:.2f} MO/mm^2",
                f"efficiency           {self.efficiency_tops_w:.2f} TOPS/W",
            ]
        )


def summarize_pipeline(pipeline, X_test: np.ndarray, y_test: np.ndarray) -> PerformanceSummary:
    """Measure a fitted :class:`FeBiMPipeline` into a performance summary.

    Energy/delay are averaged over the test samples; ops use the paper's
    counting with the pipeline's activated-cells-per-row.
    """
    pipeline._check_fitted()
    layout = pipeline.engine_.layout
    ops = ops_per_inference(layout.total_rows, layout.activated_per_inference)
    # One batched read yields energy, delay and predictions together.
    report = pipeline.infer_batch(X_test)
    energy = float(np.mean(report.energy.total))
    delay = float(np.mean(report.delay))
    accuracy = float(np.mean(report.predictions == np.asarray(y_test)))
    return PerformanceSummary(
        rows=layout.total_rows,
        cols=layout.total_cols,
        bits_per_cell=pipeline.engine_.spec.bits,
        ops=ops,
        energy_per_inference=energy,
        delay_per_inference=delay,
        accuracy=accuracy,
    )
